//! # whoisml
//!
//! A production-quality Rust reproduction of
//! *"Who is .com? Learning to Parse WHOIS Records"* (Liu, Foster, Savage,
//! Voelker, Saul — IMC 2015): a statistical WHOIS parser built on a
//! from-scratch linear-chain conditional random field, together with every
//! substrate the paper's evaluation needs — a synthetic WHOIS corpus
//! generator, rule-based and template-based baseline parsers, an RFC 3912
//! client/server/crawler stack with rate-limit inference, and the `.com`
//! survey analytics of the paper's §6.
//!
//! ## Quick start
//!
//! ```
//! use whoisml::gen::corpus::{generate_corpus, GenConfig};
//! use whoisml::parser::{ParserConfig, TrainExample, WhoisParser};
//! use whoisml::model::{BlockLabel, RegistrantLabel};
//!
//! // 1. Get labeled records (here: generated; in practice: hand-labeled).
//! let corpus = generate_corpus(GenConfig::new(7, 120));
//! let (train, test) = corpus.split_at(100);
//!
//! let first: Vec<TrainExample<BlockLabel>> = train
//!     .iter()
//!     .map(|d| TrainExample { text: d.rendered.text(), labels: d.block_labels().labels() })
//!     .collect();
//! let second: Vec<TrainExample<RegistrantLabel>> = train
//!     .iter()
//!     .map(|d| {
//!         let reg = d.registrant_labels();
//!         TrainExample { text: reg.texts().join("\n"), labels: reg.labels() }
//!     })
//!     .filter(|e| !e.labels.is_empty())
//!     .collect();
//!
//! // 2. Train the two-level CRF parser.
//! let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
//!
//! // 3. Parse unseen records into structured form.
//! let parsed = parser.parse(&test[0].raw());
//! assert!(parsed.registrar.is_some());
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `whois-model` | labels, records, contacts, errors |
//! | [`tokenize`] | `whois-tokenize` | §3.3 feature extraction |
//! | [`crf`] | `whois-crf` | linear-chain CRF, L-BFGS/SGD, Viterbi |
//! | [`parser`] | `whois-parser` | the two-level statistical parser |
//! | [`rules`] | `whois-rules` | §4.2 rule-based baseline + rollback |
//! | [`templates`] | `whois-templates` | §2.3 template baseline |
//! | [`gen`] | `whois-gen` | calibrated synthetic corpus generator |
//! | [`net`] | `whois-net` | RFC 3912 stack + §4.1 crawler |
//! | [`serve`] | `whois-serve` | long-running parse service: cache, hot-reload, admission control |
//! | [`store`] | `whois-store` | disk-backed tiered record store: crash-safe segments, compaction |
//! | [`survey`] | `whois-survey` | §6 tables and figures |

pub use whois_crf as crf;
pub use whois_gen as gen;
pub use whois_model as model;
pub use whois_net as net;
pub use whois_parser as parser;
pub use whois_rules as rules;
pub use whois_serve as serve;
pub use whois_store as store;
pub use whois_survey as survey;
pub use whois_templates as templates;
pub use whois_tokenize as tokenize;
