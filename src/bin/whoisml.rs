//! The `whoisml` command-line tool.
//!
//! ```text
//! whoisml gen         --count 500 --seed 7 --out corpus.jsonl
//! whoisml train       --corpus corpus.jsonl --out model.json
//! whoisml parse       --model model.json --domain example.com [--input record.txt]
//! whoisml parse-batch --model model.json --input records.jsonl [--workers N] [--out parsed.jsonl]
//! whoisml label       --model model.json [--input record.txt]
//! whoisml inspect     --model model.json
//! whoisml serve       --model model.json [--model-dir models/ --poll-ms 1000]
//!                     [--port P] [--workers N] [--cache N] [--line-cache N] [--queue N]
//!                     [--upstream host:port] [--timeout MS]
//!                     [--mode event|blocking] [--conns-per-ip N]
//!                     [--decode-tier fast|exact] [--no-cache-bypass]
//!                     [--retrain dir/ [--retrain-window N] [--retrain-threshold F]
//!                      [--retrain-interval-ms MS] [--retrain-golden N] [--retrain-seed S]]
//! whoisml query       --addr 127.0.0.1:PORT [--timeout MS]
//!                     (--domain d [--input record.txt] | --stats 1 | --health 1 | --retrain 1)
//! whoisml retrain     status --addr 127.0.0.1:PORT [--timeout MS]
//! ```
//!
//! * `gen` writes a labeled JSONL corpus (one [`CorpusLine`] per record)
//!   from the calibrated synthetic generator — the starting point when
//!   you have no hand-labeled data yet.
//! * `train` fits the two-level CRF parser on a JSONL corpus and saves
//!   the model as JSON.
//! * `parse` reads one raw WHOIS record (stdin or `--input`) and prints
//!   the structured parse as JSON.
//! * `parse-batch` streams a JSONL file of raw records (objects with
//!   `domain` and `text` fields — a `gen` corpus works as-is) through the
//!   parallel [`ParseEngine`](whoisml::parser::ParseEngine), writing one
//!   `ParsedRecord` JSON per line and a throughput report to stderr.
//! * `label` prints one `label<TAB>confidence<TAB>line` row per record
//!   line — the triage view for finding records worth labeling.
//! * `inspect` dumps the model's heaviest features (Table 1 / Figure 1).
//! * `serve` runs the long-lived parse daemon (`whois-serve`): sharded
//!   result cache, line-memoization cache (`--line-cache N`, 0 turns it
//!   off), bounded admission queue, and — with `--model-dir` — hot
//!   reload of new model versions dropped into the directory.
//!   `--mode` selects the serving core: `event` (default) multiplexes
//!   every connection through one epoll event-loop thread; `blocking`
//!   is the legacy thread-per-connection path. `--conns-per-ip N` caps
//!   concurrent connections per source IP at accept time.
//!   `--decode-tier` picks the engine for records that miss (or bypass)
//!   the line cache: `fast` (default) decodes on the compiled
//!   pruned/quantized tier with an exact re-decode under the margin
//!   guard, `exact` always uses the f64 reference engine; output is
//!   byte-identical either way. The line cache's adaptive bypass (steer
//!   cache-hostile uniform traffic straight to the decode tier) is on by
//!   default; `--no-cache-bypass` disables it.
//!   `--retrain dir/` switches on the closed continual-learning loop:
//!   per-record confidence feeds a drift monitor, sustained
//!   low-confidence records queue crash-safely under `dir/`, and a
//!   background loop relabels them with the rule/template baselines,
//!   refits from the incumbent's weights, gates the candidate on a
//!   synthetic golden set (`--retrain-golden N` records from seed
//!   `--retrain-seed`), hot-swaps survivors, and rolls back if
//!   post-swap confidence collapses.
//! * `query` is the matching client: `--domain` alone issues a `FETCH`
//!   through the server's upstream WHOIS, `--domain` plus `--input`
//!   sends the record body for a `PARSE`, `--stats 1` prints serving
//!   statistics (including the `retrain` section), `--health 1` prints
//!   the liveness snapshot, `--retrain 1` prints the drift/retrain
//!   snapshot alone.
//! * `retrain status` asks a running daemon for the same snapshot the
//!   `RETRAIN` verb returns (`enabled: false` on a loop-less server).
//!
//! Both `serve` and `query` take `--timeout MS`: for `query` it bounds
//! connect/read/write on the client socket; for `serve` it is the
//! per-connection read timeout and the upstream WHOIS client's
//! connect/read timeout.

use serde::{Deserialize, Serialize};
use std::io::Read;
use whoisml::gen::corpus::{generate_corpus, GenConfig};
use whoisml::model::{BlockLabel, Label, RawRecord, RegistrantLabel};
use whoisml::parser::{inspect, ParseEngine, ParserConfig, TrainExample, WhoisParser};

/// One labeled record in the JSONL corpus format.
#[derive(Serialize, Deserialize)]
struct CorpusLine {
    /// The domain the record describes.
    domain: String,
    /// Verbatim record text (blank lines included).
    text: String,
    /// First-level labels, one per non-empty line.
    labels: Vec<BlockLabel>,
    /// The registrant block's lines joined by `\n` (absent when the
    /// record has no registrant block).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    registrant_text: Option<String>,
    /// Second-level labels for the registrant block.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    registrant_labels: Option<Vec<RegistrantLabel>>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let flags = Flags::parse(&args[1..]);
    let result = match command.as_str() {
        "gen" => cmd_gen(&flags),
        "train" => cmd_train(&flags),
        "parse" => cmd_parse(&flags),
        "parse-batch" => cmd_parse_batch(&flags),
        "label" => cmd_label(&flags),
        "inspect" => cmd_inspect(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "store" => cmd_store(&args[1..], &flags),
        "retrain" => cmd_retrain(&args[1..], &flags),
        "--help" | "-h" | "help" => usage_and_exit(),
        other => Err(format!("unknown command: {other}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "whoisml — statistical WHOIS parsing (IMC 2015 reproduction)\n\n\
         usage:\n\
         \x20 whoisml gen         --count N [--seed S] [--drift F] --out corpus.jsonl\n\
         \x20 whoisml train       --corpus corpus.jsonl --out model.json\n\
         \x20 whoisml parse       --model model.json --domain example.com [--input record.txt]\n\
         \x20 whoisml parse-batch --model model.json --input records.jsonl [--workers N] [--out parsed.jsonl]\n\
         \x20 whoisml label       --model model.json [--input record.txt]\n\
         \x20 whoisml inspect     --model model.json [--topk K]\n\
         \x20 whoisml serve       --model model.json [--model-dir models/ --poll-ms 1000]\n\
         \x20                     [--port P] [--workers N] [--cache N] [--line-cache N] [--queue N]\n\
         \x20                     [--upstream host:port] [--timeout MS]\n\
         \x20                     [--mode event|blocking] [--conns-per-ip N]\n\
         \x20                     [--decode-tier fast|exact] [--no-cache-bypass]\n\
         \x20                     [--store dir/ [--store-cap BYTES]]\n\
         \x20                     [--retrain dir/ [--retrain-window N] [--retrain-threshold F]\n\
         \x20                      [--retrain-interval-ms MS] [--retrain-golden N] [--retrain-seed S]]\n\
         \x20 whoisml query       --addr 127.0.0.1:PORT [--timeout MS]\n\
         \x20                     (--domain d [--input record.txt] | --stats 1 | --health 1 | --retrain 1)\n\
         \x20 whoisml retrain     status --addr 127.0.0.1:PORT [--timeout MS]\n\
         \x20 whoisml store       stat|verify|compact --dir store/ [--cap BYTES]"
    );
    std::process::exit(2);
}

/// Minimal `--key value` flag parser.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(k) = args[i].strip_prefix("--") {
                // A following `--token` is the next flag, not this one's
                // value: bare boolean flags (`--no-cache-bypass`) parse
                // with an empty value instead of swallowing their
                // neighbor.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        pairs.push((k.to_string(), v.clone()));
                        i += 2;
                    }
                    _ => {
                        pairs.push((k.to_string(), String::new()));
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        Flags(pairs)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let count: usize = flags.get_or("count", 500);
    let seed: u64 = flags.get_or("seed", 42);
    let drift: f64 = flags.get_or("drift", 0.0);
    let out = flags.require("out")?;
    let corpus = generate_corpus(GenConfig {
        drift_fraction: drift,
        ..GenConfig::new(seed, count)
    });
    let mut body = String::new();
    for d in &corpus {
        let reg = d.registrant_labels();
        let line = CorpusLine {
            domain: d.facts.domain.clone(),
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
            registrant_text: (!reg.is_empty()).then(|| reg.texts().join("\n")),
            registrant_labels: (!reg.is_empty()).then(|| reg.labels()),
        };
        body.push_str(&serde_json::to_string(&line).map_err(|e| e.to_string())?);
        body.push('\n');
    }
    std::fs::write(out, body).map_err(|e| e.to_string())?;
    eprintln!("wrote {count} labeled records to {out}");
    Ok(())
}

fn read_corpus(path: &str) -> Result<Vec<CorpusLine>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    body.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad corpus line: {e}")))
        .collect()
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let corpus_path = flags.require("corpus")?;
    let out = flags.require("out")?;
    let records = read_corpus(corpus_path)?;
    if records.is_empty() {
        return Err("corpus is empty".into());
    }
    let first: Vec<TrainExample<BlockLabel>> = records
        .iter()
        .map(|r| TrainExample {
            text: r.text.clone(),
            labels: r.labels.clone(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = records
        .iter()
        .filter_map(|r| {
            Some(TrainExample {
                text: r.registrant_text.clone()?,
                labels: r.registrant_labels.clone()?,
            })
        })
        .collect();
    if second.is_empty() {
        return Err("corpus has no registrant blocks for the second level".into());
    }
    eprintln!(
        "training on {} records ({} registrant blocks)...",
        first.len(),
        second.len()
    );
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
    std::fs::write(out, parser.to_json().map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    eprintln!("model written to {out}");
    Ok(())
}

fn load_model(flags: &Flags) -> Result<WhoisParser, String> {
    let path = flags.require("model")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    WhoisParser::from_json(&json).map_err(|e| e.to_string())
}

fn read_record_text(flags: &Flags) -> Result<String, String> {
    match flags.get("input") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| e.to_string())?;
            Ok(buf)
        }
    }
}

fn cmd_parse(flags: &Flags) -> Result<(), String> {
    let parser = load_model(flags)?;
    let domain = flags.get("domain").unwrap_or("unknown.invalid");
    let text = read_record_text(flags)?;
    let parsed = parser.parse(&RawRecord::new(domain, text));
    println!(
        "{}",
        serde_json::to_string_pretty(&parsed).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// One raw record in the `parse-batch` JSONL input. Extra fields (e.g.
/// the labels in a `gen` corpus) are ignored.
#[derive(Deserialize)]
struct BatchLine {
    domain: String,
    text: String,
}

fn cmd_parse_batch(flags: &Flags) -> Result<(), String> {
    let parser = load_model(flags)?;
    let input = flags.require("input")?;
    let workers: usize = flags.get_or("workers", 0); // 0 = all cores
    let body = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let records: Vec<RawRecord> = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str::<BatchLine>(l)
                .map(|r| RawRecord::new(r.domain, r.text))
                .map_err(|e| format!("bad input line: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if records.is_empty() {
        return Err("input has no records".into());
    }

    let engine = ParseEngine::with_workers(parser, workers);
    let (parsed, stats) = engine.parse_batch_with_stats(&records);

    let mut out = String::new();
    for p in &parsed {
        out.push_str(&serde_json::to_string(p).map_err(|e| e.to_string())?);
        out.push('\n');
    }
    match flags.get("out") {
        Some(path) => std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{out}"),
    }
    eprintln!(
        "parsed {} records in {:.2}s with {} workers ({:.0} records/s); \
         {} lines labeled, {} registrant blocks",
        stats.records,
        stats.elapsed.as_secs_f64(),
        stats.workers,
        stats.records_per_sec(),
        stats.lines_labeled,
        stats.registrant_blocks
    );
    Ok(())
}

fn cmd_label(flags: &Flags) -> Result<(), String> {
    let parser = load_model(flags)?;
    let text = read_record_text(flags)?;
    let scored = parser.first_level().predict_with_confidence(&text);
    for (line, (label, confidence)) in whoisml::model::non_empty_lines(&text).iter().zip(&scored) {
        println!("{}\t{:.3}\t{}", label.name(), confidence, line);
    }
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use whoisml::serve::{ModelRegistry, ModelWatcher, ParseService, ServeConfig, UpstreamConfig};

    let model_dir = flags.get("model-dir").map(std::path::PathBuf::from);
    // Initial model: --model wins; otherwise the newest file in --model-dir.
    let model_path = match (flags.get("model"), &model_dir) {
        (Some(path), _) => std::path::PathBuf::from(path),
        (None, Some(dir)) => whoisml::serve::newest_model_file(dir)
            .ok_or_else(|| format!("no *.json model in {}", dir.display()))?,
        (None, None) => return Err("--model or --model-dir is required".into()),
    };
    let json = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("{}: {e}", model_path.display()))?;
    let parser = WhoisParser::from_json(&json).map_err(|e| e.to_string())?;
    let version = model_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "model".into());

    // Line-memoization cache shared by every installed model's engine
    // (0 disables it); hot swaps invalidate it by generation bump. The
    // adaptive bypass steers uniform (cache-hostile) traffic straight to
    // the decode tier; --no-cache-bypass pins every record through the
    // cache.
    let line_cache_capacity: usize =
        flags.get_or("line-cache", whoisml::parser::DEFAULT_LINE_CACHE_CAPACITY);
    let cache_bypass = flags.get("no-cache-bypass").is_none();
    let mut line_cache = whoisml::parser::LineCache::new(
        line_cache_capacity,
        whoisml::parser::DEFAULT_LINE_CACHE_SHARDS,
    );
    if cache_bypass {
        line_cache = line_cache.with_bypass_floor(whoisml::parser::DEFAULT_BYPASS_FLOOR);
    }
    let line_cache = std::sync::Arc::new(line_cache);
    // --decode-tier picks the engine for uncached records: the compiled
    // fast tier (default; byte-identical, low-margin records re-decode
    // exactly) or the f64 exact engine.
    let decode_tier = match flags.get("decode-tier") {
        None | Some("fast") => whoisml::parser::DecodeTier::Fast,
        Some("exact") => whoisml::parser::DecodeTier::Exact,
        Some(other) => {
            return Err(format!("bad --decode-tier {other} (expected fast|exact)"));
        }
    };
    let registry = std::sync::Arc::new(ModelRegistry::with_decode_tier(
        parser,
        version,
        1,
        line_cache,
        decode_tier,
    ));
    let watcher = model_dir.map(|dir| {
        let poll_ms: u64 = flags.get_or("poll-ms", 1000);
        ModelWatcher::start(
            registry.clone(),
            dir,
            std::time::Duration::from_millis(poll_ms.max(1)),
        )
    });

    // --timeout MS bounds both the per-connection read timeout and the
    // upstream WHOIS client (a wedged registrar must not pin a worker).
    let timeout = flags
        .get("timeout")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|e| format!("bad --timeout {v}: {e}"))
                .map(std::time::Duration::from_millis)
        })
        .transpose()?;
    let upstream = match flags.get("upstream") {
        Some(addr) => {
            let mut client = whoisml::net::WhoisClient::default();
            if let Some(t) = timeout {
                client.connect_timeout = t;
                client.read_timeout = t;
            }
            Some(UpstreamConfig {
                registry: addr
                    .parse()
                    .map_err(|e| format!("bad --upstream address {addr}: {e}"))?,
                resolver: std::collections::HashMap::new(),
                client,
            })
        }
        None => None,
    };
    // --mode picks the serving core: the nonblocking epoll event loop
    // (default) or the legacy blocking thread-per-connection path.
    let mode = match flags.get("mode") {
        None | Some("event") => whoisml::net::ServingMode::EventLoop,
        Some("blocking") => whoisml::net::ServingMode::Blocking,
        Some(other) => return Err(format!("bad --mode {other} (expected event|blocking)")),
    };
    let max_conns_per_ip = flags
        .get("conns-per-ip")
        .map(|v| {
            v.parse::<u32>()
                .map_err(|e| format!("bad --conns-per-ip {v}: {e}"))
        })
        .transpose()?;
    // --store enables the disk tier under the LRU: evictions spill down,
    // misses fill up, and a restart reopens the segments warm.
    let store = flags
        .get("store")
        .map(|dir| {
            let mut tier = whoisml::serve::StoreTierConfig::new(dir);
            if let Some(cap) = flags.get("store-cap") {
                tier.cap_bytes = cap
                    .parse::<u64>()
                    .map_err(|e| format!("bad --store-cap {cap}: {e}"))?;
            }
            Ok::<_, String>(tier)
        })
        .transpose()?;
    let store_enabled = store.is_some();
    // --retrain enables the closed continual-learning loop. The gate's
    // golden set and the labeler cross-check templates come from the
    // calibrated synthetic generator, so the loop runs without any
    // hand-labeled data.
    let retrain_dir = match flags.get("retrain") {
        Some("") => return Err("--retrain needs a queue/quarantine directory".into()),
        other => other,
    };
    let retrain = retrain_dir.map(|dir| {
        let mut rc = whoisml::serve::RetrainConfig::new(dir);
        rc.window = flags.get_or("retrain-window", rc.window);
        rc.low_confidence = flags.get_or("retrain-threshold", rc.low_confidence);
        let interval_ms: u64 = flags.get_or("retrain-interval-ms", rc.interval.as_millis() as u64);
        rc.interval = std::time::Duration::from_millis(interval_ms.max(1));
        let golden_count: usize = flags.get_or("retrain-golden", 200);
        let golden_seed: u64 = flags.get_or("retrain-seed", 0x90_1d);
        let mut templates = whoisml::templates::TemplateParser::new();
        for d in &generate_corpus(GenConfig::new(golden_seed, golden_count)) {
            let text = d.rendered.text();
            let labels = d.block_labels().labels();
            let lines = whoisml::model::non_empty_lines(&text);
            templates.add_example(d.registrar.name, &lines, &labels);
            rc.golden_first.push(TrainExample { text, labels });
        }
        rc.templates = templates;
        rc
    });
    let retrain_enabled = retrain.is_some();
    let mut cfg = ServeConfig {
        mode,
        max_conns_per_ip,
        workers: flags.get_or("workers", 0),
        queue_capacity: flags.get_or("queue", 64),
        cache_capacity: flags.get_or("cache", 4096),
        upstream,
        store,
        retrain,
        ..Default::default()
    };
    if let Some(t) = timeout {
        cfg.read_timeout = t;
    }
    let port: u16 = flags.get_or("port", 0);
    let service = ParseService::start(registry.clone(), cfg, port).map_err(|e| e.to_string())?;
    // The bound address goes to stdout so scripts (and the walkthrough
    // example) can discover an ephemeral port.
    println!("listening on {}", service.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    eprintln!(
        "whois-serve: model {} | {} workers | cache {} | line-cache {} (bypass {}) | queue {} | mode {} | decode-tier {} | kernel {} | store {} | retrain {}",
        registry.current().version,
        service.stats().workers,
        flags.get_or::<usize>("cache", 4096),
        line_cache_capacity,
        if cache_bypass { "on" } else { "off" },
        flags.get_or::<usize>("queue", 64),
        match mode {
            whoisml::net::ServingMode::EventLoop => "event",
            whoisml::net::ServingMode::Blocking => "blocking",
        },
        registry.decode_tier().name(),
        registry.kernel_level().name(),
        if store_enabled { "on" } else { "off" },
        if retrain_enabled { "on" } else { "off" },
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
        // Keep the watcher alive for the lifetime of the daemon.
        let _ = &watcher;
    }
}

fn cmd_query(flags: &Flags) -> Result<(), String> {
    use whoisml::serve::ServeClient;

    let addr: std::net::SocketAddr = flags
        .require("addr")?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let timeout = match flags.get("timeout") {
        Some(v) => std::time::Duration::from_millis(
            v.parse::<u64>()
                .map_err(|e| format!("bad --timeout {v}: {e}"))?,
        ),
        None => whoisml::serve::DEFAULT_TIMEOUT,
    };
    let mut client = ServeClient::connect_timeout(addr, timeout).map_err(|e| e.to_string())?;
    if flags.get("health").is_some() {
        let health = client.health().map_err(|e| e.to_string())?;
        println!(
            "{}",
            serde_json::to_string_pretty(&health).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if flags.get("stats").is_some() {
        let stats = client.stats().map_err(|e| e.to_string())?;
        println!(
            "{}",
            serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if flags.get("retrain").is_some() {
        let status = client.retrain_status().map_err(|e| e.to_string())?;
        println!(
            "{}",
            serde_json::to_string_pretty(&status).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let domain = flags.require("domain")?;
    let reply = if flags.get("input").is_some() {
        let text = read_record_text(flags)?;
        client.parse(domain, &text)
    } else {
        client.fetch(domain)
    }
    .map_err(|e| e.to_string())?;
    let record = reply.record.ok_or("reply carried no record")?;
    eprintln!("model: {}", reply.model.as_deref().unwrap_or("?"));
    println!(
        "{}",
        serde_json::to_string_pretty(&record).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// `whoisml store stat|verify|compact --dir store/ [--cap BYTES]`:
/// offline inspection and maintenance of a record-store directory.
///
/// `stat` and `verify` open the store strictly read-only — they never
/// truncate, sweep, or rewrite anything in the directory — so they are
/// safe to run against a live daemon. `compact` opens for writing
/// under the store's single-writer lock (without touching the
/// persistent generation) and fails fast if a daemon holds the lock.
fn cmd_store(args: &[String], flags: &Flags) -> Result<(), String> {
    let action = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or("store needs an action: stat|verify|compact")?;
    let dir = std::path::PathBuf::from(flags.require("dir")?);
    match action {
        "stat" => {
            let store = whoisml::store::RecordStore::open_readonly(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            println!(
                "{}",
                serde_json::to_string_pretty(&store.stats()).map_err(|e| e.to_string())?
            );
        }
        "verify" => {
            let store = whoisml::store::RecordStore::open_readonly(&dir)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            let report = store.verify();
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
            if !report.ok() {
                return Err("store verification failed".into());
            }
        }
        "compact" => {
            let cap: u64 = flags.get_or("cap", 0);
            let store = whoisml::store::RecordStore::open_existing(&dir, cap, true)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
            let report = store.compact().map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        }
        other => {
            return Err(format!(
                "bad store action {other} (expected stat|verify|compact)"
            ))
        }
    }
    Ok(())
}

/// `whoisml retrain status --addr 127.0.0.1:PORT [--timeout MS]`: ask a
/// running daemon for its drift-monitor and retrain-loop snapshot (the
/// `RETRAIN` verb). A loop-less server answers with `enabled: false`.
fn cmd_retrain(args: &[String], flags: &Flags) -> Result<(), String> {
    use whoisml::serve::ServeClient;

    let action = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or("retrain needs an action: status")?;
    if action != "status" {
        return Err(format!("bad retrain action {action} (expected status)"));
    }
    let addr: std::net::SocketAddr = flags
        .require("addr")?
        .parse()
        .map_err(|e| format!("bad --addr: {e}"))?;
    let timeout = match flags.get("timeout") {
        Some(v) => std::time::Duration::from_millis(
            v.parse::<u64>()
                .map_err(|e| format!("bad --timeout {v}: {e}"))?,
        ),
        None => whoisml::serve::DEFAULT_TIMEOUT,
    };
    let mut client = ServeClient::connect_timeout(addr, timeout).map_err(|e| e.to_string())?;
    let status = client.retrain_status().map_err(|e| e.to_string())?;
    println!(
        "{}",
        serde_json::to_string_pretty(&status).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let parser = load_model(flags)?;
    let topk: usize = flags.get_or("topk", 8);
    println!("== heaviest emission features per label (Table 1) ==");
    print!(
        "{}",
        inspect::render_emission_table(parser.first_level(), topk)
    );
    println!("\n== transition-detecting features (Figure 1) ==");
    print!(
        "{}",
        inspect::render_transition_graph(parser.first_level(), 3)
    );
    Ok(())
}
