//! CRC-framed append-only encoding, shared by the crawl journal (WCJ1)
//! and the record store's segments (WSS1).
//!
//! One frame is:
//!
//! ```text
//! len:  u32 LE   payload byte count
//! crc:  u32 LE   CRC-32 (IEEE) of the payload
//! payload
//! ```
//!
//! Decoding stops at the first incomplete or corrupt frame — both mean
//! "torn tail, truncate here". A corrupt length field is bounded by
//! [`MAX_FRAME`] so it can never trigger a giant allocation.

/// Cap on one frame's payload (defensive: a corrupt length field must
/// not trigger a giant allocation).
pub const MAX_FRAME: u32 = 64 << 20;

/// Bytes of framing overhead per payload (len + crc).
pub const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3), bitwise; fast enough for KiB-scale records.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

/// Append one framed payload to `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    out.reserve(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode one frame from the front of `bytes`, returning the payload
/// and the total bytes consumed; `None` if the frame is incomplete or
/// corrupt (both mean: torn tail, stop here).
pub fn decode_frame(bytes: &[u8]) -> Option<(&[u8], usize)> {
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if len > MAX_FRAME {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let end = FRAME_HEADER.checked_add(len as usize)?;
    let payload = bytes.get(FRAME_HEADER..end)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"hello");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"world!");
        let (p0, c0) = decode_frame(&buf).unwrap();
        assert_eq!(p0, b"hello");
        let (p1, c1) = decode_frame(&buf[c0..]).unwrap();
        assert_eq!(p1, b"");
        let (p2, c2) = decode_frame(&buf[c0 + c1..]).unwrap();
        assert_eq!(p2, b"world!");
        assert_eq!(c0 + c1 + c2, buf.len());
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"payload bytes");
        for cut in 0..buf.len() {
            assert!(decode_frame(&buf[..cut]).is_none(), "cut at {cut}");
        }
        assert!(decode_frame(&buf).is_some());
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"some payload");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            // Either the frame fails to decode, or (a flipped length
            // bit) it no longer consumes the same payload.
            if let Some((p, _)) = decode_frame(&bad) {
                assert_ne!(p, b"some payload".as_slice(), "flip at {i}");
            }
        }
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        assert!(decode_frame(&buf).is_none());
    }
}
