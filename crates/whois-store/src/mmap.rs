//! Read-only file mapping for sealed segments.
//!
//! Sealed segments are immutable once written, so mapping them keeps
//! the resident set proportional to the *hot* fraction of the store —
//! the kernel pages record bytes in on demand and can drop them under
//! pressure — instead of the store's full size. On non-unix targets
//! (or if `mmap` fails) the segment is read into an owned buffer
//! instead; everything downstream sees the same `&[u8]`.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::unix::io::RawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut core::ffi::c_void = usize::MAX as *mut core::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

/// A file's contents, memory-mapped when possible.
pub enum MappedFile {
    /// A live `mmap(2)` mapping; unmapped on drop.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Fallback: the file read into memory.
    Owned(Vec<u8>),
}

// The mapping is read-only and private; the pointer never aliases
// mutable state, so sharing it across threads is sound.
#[cfg(unix)]
unsafe impl Send for MappedFile {}
#[cfg(unix)]
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Map (or read) the file at `path` read-only.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // Zero-length mmap is EINVAL; an empty segment is just empty.
            if len > 0 {
                let ptr = unsafe {
                    sys::mmap(
                        core::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != sys::MAP_FAILED {
                    return Ok(MappedFile::Mapped {
                        ptr: ptr as *const u8,
                        len,
                    });
                }
            } else {
                return Ok(MappedFile::Owned(Vec::new()));
            }
        }
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)?;
        Ok(MappedFile::Owned(bytes))
    }

    /// The file's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            MappedFile::Mapped { ptr, len } => unsafe { core::slice::from_raw_parts(*ptr, *len) },
            MappedFile::Owned(v) => v,
        }
    }
}

impl Deref for MappedFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MappedFile::Mapped { ptr, len } = *self {
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_reads_back() {
        let path = std::env::temp_dir().join(format!("whois-store-mmap-{}", std::process::id()));
        std::fs::write(&path, b"segment bytes here").unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(&*map, b"segment bytes here");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path =
            std::env::temp_dir().join(format!("whois-store-mmap-empty-{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
