//! Store keying: 64-bit FNV-1a over (model generation, domain,
//! normalized record body).
//!
//! This is the *same* key the serve-layer result cache uses (it moved
//! here so both tiers share one definition): the record body is
//! normalized line-by-line without allocating — `\r\n` vs `\n` unified,
//! trailing whitespace dropped, leading/trailing blank lines ignored,
//! interior blank runs kept (block separators are structure) — the
//! domain is lower-cased, and the generation is mixed in first so a
//! model swap makes every prior key unreachable without coordination.
//!
//! The disk tier composes its index key in two steps so entries can be
//! spilled without re-hashing the (long-gone) body: [`cache_key`] with
//! generation 0 yields a *generation-free* body key, and
//! [`parsed_key`] folds the store's own persistent generation over it.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a.
#[derive(Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// Start a fresh hash.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Fold bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Cache key for one (model generation, domain, record body) triple —
/// the serve result cache's key function (see module docs for the
/// normalization rules).
pub fn cache_key(generation: u64, domain: &str, body: &str) -> u64 {
    let mut h = Fnv::new();
    h.write(&generation.to_le_bytes());
    for b in domain.bytes() {
        h.write(&[b.to_ascii_lowercase()]);
    }
    h.write(&[0xff]); // domain/body separator outside both alphabets
    let mut pending_blank = 0usize;
    let mut seen_content = false;
    for line in body.lines() {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            pending_blank += 1;
            continue;
        }
        if seen_content {
            // Interior blank runs are structure (block separators): keep
            // their count, normalized to the run length.
            for _ in 0..pending_blank {
                h.write(b"\n");
            }
        }
        pending_blank = 0;
        seen_content = true;
        h.write(trimmed.as_bytes());
        h.write(b"\n");
    }
    h.finish()
}

/// Disk-index key for a parsed entry: the store's persistent model
/// generation folded over a generation-free body key
/// (`cache_key(0, domain, body)`). Spills carry only the body key, so
/// the store can key them under whatever generation is current at
/// spill time.
pub fn parsed_key(generation: u64, body_key: u64) -> u64 {
    let mut h = Fnv::new();
    h.write(&generation.to_le_bytes());
    h.write(&body_key.to_le_bytes());
    h.finish()
}

/// Disk-index key for a raw record: FNV over the lower-cased domain.
/// Raw lookups verify the stored domain byte-for-byte, so a collision
/// reads as a miss, never as the wrong record.
pub fn raw_key(domain: &str) -> u64 {
    let mut h = Fnv::new();
    for b in domain.bytes() {
        h.write(&[b.to_ascii_lowercase()]);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_normalizes_transport_noise() {
        let a = cache_key(0, "example.com", "Domain Name: X\r\nRegistrar: Y\r\n");
        let b = cache_key(0, "example.com", "Domain Name: X\nRegistrar: Y");
        let c = cache_key(0, "EXAMPLE.COM", "Domain Name: X   \nRegistrar: Y\n\n\n");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn cache_key_keeps_meaningful_differences() {
        let base = cache_key(0, "example.com", "Domain Name: X\nRegistrar: Y\n");
        assert_ne!(
            base,
            cache_key(0, "example.com", "Domain Name: X\nRegistrar: Z\n")
        );
        assert_ne!(
            base,
            cache_key(0, "other.com", "Domain Name: X\nRegistrar: Y\n")
        );
        assert_ne!(
            base,
            cache_key(1, "example.com", "Domain Name: X\nRegistrar: Y\n")
        );
        assert_ne!(
            base,
            cache_key(0, "example.com", "Domain Name: X\n\nRegistrar: Y\n"),
            "interior blank line is structure"
        );
    }

    #[test]
    fn parsed_key_varies_with_generation_and_body() {
        let k0 = cache_key(0, "a.com", "Domain Name: A\n");
        assert_ne!(parsed_key(1, k0), parsed_key(2, k0));
        let other = cache_key(0, "a.com", "Domain Name: B\n");
        assert_ne!(parsed_key(1, k0), parsed_key(1, other));
    }

    #[test]
    fn raw_key_is_case_insensitive() {
        assert_eq!(raw_key("Example.COM"), raw_key("example.com"));
        assert_ne!(raw_key("example.com"), raw_key("example.org"));
    }
}
