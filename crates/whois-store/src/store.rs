//! The record store: a single-writer, log-structured collection of
//! CRC-framed segments under one directory, with an in-memory FNV
//! index, crash-safe recovery, and background compaction.
//!
//! ## Directory layout
//!
//! ```text
//! MANIFEST        JSON: generation, model version, segment list
//! seg-NNNNNNNN.wss  CRC-framed entry runs (see segment.rs)
//! ```
//!
//! ## Invariants
//!
//! - One writer at a time: every writable open takes an exclusive
//!   advisory lock on a `LOCK` file for the store's lifetime, so a
//!   daemon and an offline `whoisml store compact` can never interleave
//!   appends, sweeps, or truncations. Read-only opens
//!   ([`RecordStore::open_readonly`]) take no lock and never mutate the
//!   directory — not even recovery — so they are safe against a live
//!   writer.
//! - The manifest is the source of truth: segment files it does not
//!   list are compaction leftovers and are deleted on (writable) open.
//! - Sealed segments are immutable and memory-mapped; at most one
//!   *active* segment (created lazily, re-created after each seal)
//!   accepts appends, mirrored in an in-memory tail so reads never
//!   touch the file being written. The active segment is sealed — and
//!   its tail mirror dropped — once it reaches a size threshold, so the
//!   writer's heap holds at most one segment's worth of the cold tier
//!   no matter how large the store grows.
//! - A crash mid-append tears at most the final frame of the active
//!   segment; open truncates back to the last whole frame, so every
//!   acknowledged (`put_*` returned `Ok`) entry survives.
//! - Compaction rewrites live entries into a fresh segment, fsyncs it,
//!   then atomically swaps the manifest (temp file + rename + dir
//!   sync). A crash at any point leaves either the old or the new
//!   manifest — never a mix — and stray files from the losing side are
//!   swept on the next open.
//! - The store keeps its own persistent model generation (the serve
//!   registry's resets every restart): parsed entries are keyed under
//!   it, [`RecordStore::bump_generation`] advances it on model swaps
//!   (old parses become dead weight for the compactor), and raw
//!   records are generation-free and survive every swap.

use crate::frame::{FRAME_HEADER, MAX_FRAME};
use crate::key::parsed_key;
use crate::key::raw_key;
use crate::segment::{self, EntryKind, Segment, MAGIC};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions, TryLockError};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const MANIFEST_FORMAT: &str = "wss-manifest-v1";
/// Single-writer advisory lock file (exclusively locked, never read).
const LOCK_FILE: &str = "LOCK";
/// Fixed per-entry overhead: frame header + kind + generation + key +
/// two length fields.
const ENTRY_OVERHEAD: u64 = (FRAME_HEADER + 1 + 8 + 8 + 4 + 4) as u64;
/// Compact when at least this many dead bytes have accumulated...
const COMPACT_DEAD_FLOOR: u64 = 256 << 10;
/// ...and they are at least this fraction of the store (1/2).
const COMPACT_DEAD_RATIO: u64 = 2;
/// Seal the active segment (drop its heap mirror, remap read-only)
/// once it reaches this size, bounding writer RAM on spill-heavy
/// workloads that never trigger compaction.
const DEFAULT_SEAL_BYTES: u64 = 16 << 20;

/// On-disk manifest (JSON, swapped atomically).
#[derive(Serialize, Deserialize, Clone)]
struct Manifest {
    format: String,
    generation: u64,
    model_version: String,
    segments: Vec<u64>,
    next_segment: u64,
    compactions: u64,
}

impl Manifest {
    fn fresh(model_version: &str) -> Self {
        Manifest {
            format: MANIFEST_FORMAT.to_string(),
            generation: 1,
            model_version: model_version.to_string(),
            segments: Vec::new(),
            next_segment: 0,
            compactions: 0,
        }
    }
}

/// Where one live entry's frame starts.
#[derive(Clone, Copy)]
struct Loc {
    seg: u64,
    off: u64,
    frame_len: u64,
}

/// The active (append-only) segment of this process run.
struct Active {
    id: u64,
    file: File,
    /// In-memory mirror of the file (magic + frames) so reads of
    /// just-written entries never touch the file mid-append.
    tail: Vec<u8>,
}

struct Inner {
    manifest: Manifest,
    sealed: Vec<Arc<Segment>>,
    active: Option<Active>,
    /// parsed_key(generation, body_key) -> live parsed entry.
    parsed: HashMap<u64, Loc>,
    /// raw_key(domain) -> live raw entry.
    raw: HashMap<u64, Loc>,
    /// Sum of all segment file sizes (magic + frames, live and dead).
    total_bytes: u64,
    /// Sum of the framed sizes of currently indexed entries.
    live_bytes: u64,
    /// Bytes dropped by torn-tail truncation at the last open.
    last_recovery_truncated: u64,
}

impl Inner {
    /// Reclaimable bytes: everything that is neither a live frame nor
    /// per-segment magic.
    fn dead_bytes(&self) -> u64 {
        let overhead = (self.manifest.segments.len() * MAGIC.len()) as u64;
        self.total_bytes.saturating_sub(self.live_bytes + overhead)
    }

    fn segment_bytes(&self, id: u64) -> Option<&[u8]> {
        if let Some(active) = &self.active {
            if active.id == id {
                return Some(&active.tail);
            }
        }
        self.sealed.iter().find(|s| s.id == id).map(|s| s.bytes())
    }

    fn read_loc(&self, loc: Loc) -> Option<segment::EntryRef<'_>> {
        let bytes = self.segment_bytes(loc.seg)?;
        let (payload, _) = crate::frame::decode_frame(bytes.get(loc.off as usize..)?)?;
        segment::decode_entry(payload)
    }
}

/// Point-in-time store statistics (serialized by `whoisml store stat`
/// and embedded in the serve STATS snapshot).
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub segments: u64,
    pub total_bytes: u64,
    pub live_bytes: u64,
    pub dead_bytes: u64,
    pub parsed_entries: u64,
    pub raw_entries: u64,
    pub generation: u64,
    pub compactions: u64,
    pub last_recovery_truncated: u64,
}

/// What one compaction pass did.
#[derive(Serialize, Clone, Debug)]
pub struct CompactionReport {
    pub segments_before: u64,
    pub segments_after: u64,
    pub bytes_before: u64,
    pub bytes_after: u64,
    pub evicted_parsed: u64,
    pub evicted_raw: u64,
}

/// Full-scan verification result (`whoisml store verify`).
#[derive(Serialize, Clone, Debug)]
pub struct VerifyReport {
    pub segments: u64,
    pub entries: u64,
    pub bytes_scanned: u64,
    pub torn_bytes: u64,
    pub index_parsed: u64,
    pub index_raw: u64,
    /// Indexed entries whose frame failed to decode or whose key
    /// disagrees with the stored entry — always 0 for a healthy store.
    pub index_mismatches: u64,
}

impl VerifyReport {
    pub fn ok(&self) -> bool {
        self.index_mismatches == 0
    }
}

/// The disk tier. Single writer (interior mutex), any number of
/// reading threads; all methods take `&self`.
pub struct RecordStore {
    dir: PathBuf,
    cap_bytes: u64,
    sync: bool,
    /// Inspection-only open: every mutating method fails, and opening
    /// never touched the directory.
    readonly: bool,
    /// Seal the active segment once its file reaches this many bytes.
    seal_bytes: u64,
    /// Exclusive advisory lock on `LOCK`, held for the store's
    /// lifetime by writable opens; the OS releases it on drop or
    /// process death. `None` for read-only opens.
    _lock: Option<File>,
    /// Serializes compaction passes; `get_*`/`put_*` proceed under
    /// `inner` while one runs.
    compact_lock: Mutex<()>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for RecordStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordStore")
            .field("dir", &self.dir)
            .field("readonly", &self.readonly)
            .finish_non_exhaustive()
    }
}

impl RecordStore {
    /// Open (creating if missing) the store in `dir`, keyed for
    /// `model_version`. If the directory was last written under a
    /// different model version, the persistent generation is bumped so
    /// stale parsed entries can never surface; raw records carry over
    /// regardless. `cap_bytes` bounds the post-compaction disk
    /// footprint (0 = unbounded). `sync` controls per-append fsync.
    pub fn open_for_model(
        dir: impl AsRef<Path>,
        model_version: &str,
        cap_bytes: u64,
        sync: bool,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Single-writer fence, taken before recovery mutates anything:
        // a second writable open (this process or another) fails fast
        // instead of truncating segments a live writer is appending to.
        let lock = acquire_write_lock(&dir)?;

        let manifest_path = dir.join(MANIFEST);
        let mut manifest = if manifest_path.exists() {
            let bytes = fs::read(&manifest_path)?;
            serde_json::from_slice::<Manifest>(&bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        } else {
            let m = Manifest::fresh(model_version);
            persist_manifest(&dir, &m, sync)?;
            m
        };

        check_format(&manifest)?;

        let mut dirty = false;
        if manifest.model_version != model_version {
            manifest.generation += 1;
            manifest.model_version = model_version.to_string();
            dirty = true;
        }

        // Sweep compaction leftovers: the manifest temp file and any
        // segment file the manifest does not list.
        let _ = fs::remove_file(dir.join(MANIFEST_TMP));
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("seg-") && name.ends_with(".wss") {
                let listed = manifest
                    .segments
                    .iter()
                    .any(|&id| segment::file_name(id) == *name);
                if !listed {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }

        // Recover each listed segment: truncate torn tails back to the
        // last whole frame, then map read-only.
        let mut truncated = 0u64;
        let mut sealed = Vec::with_capacity(manifest.segments.len());
        for &id in &manifest.segments {
            truncated += recover_segment(&dir, id)?;
            sealed.push(Arc::new(Segment::open(&dir, id)?));
        }

        if dirty {
            persist_manifest(&dir, &manifest, sync)?;
        }

        let (parsed, raw, total_bytes, live_bytes) = build_index(&sealed, manifest.generation);

        Ok(RecordStore {
            dir,
            cap_bytes,
            sync,
            readonly: false,
            seal_bytes: DEFAULT_SEAL_BYTES,
            _lock: Some(lock),
            compact_lock: Mutex::new(()),
            inner: Mutex::new(Inner {
                manifest,
                sealed,
                active: None,
                parsed,
                raw,
                total_bytes,
                live_bytes,
                last_recovery_truncated: truncated,
            }),
        })
    }

    /// Open the store for inspection only. The directory is **never
    /// mutated** — no write lock, no torn-tail truncation, no
    /// stray-file sweep, no manifest rewrite — so `whoisml store
    /// stat|verify` can safely run against a live daemon's directory.
    /// Listed segments that are missing or unreadable (a concurrent
    /// compaction swapped them away mid-open) are skipped, and a torn
    /// tail simply ends that segment's scan. Every mutating method
    /// fails with [`io::ErrorKind::PermissionDenied`]. Fails if `dir`
    /// holds no manifest.
    pub fn open_readonly(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let bytes = fs::read(dir.join(MANIFEST))?;
        let manifest = serde_json::from_slice::<Manifest>(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        check_format(&manifest)?;
        let mut sealed = Vec::with_capacity(manifest.segments.len());
        for &id in &manifest.segments {
            if let Ok(seg) = Segment::open(&dir, id) {
                sealed.push(Arc::new(seg));
            }
        }
        let (parsed, raw, total_bytes, live_bytes) = build_index(&sealed, manifest.generation);
        Ok(RecordStore {
            dir,
            cap_bytes: 0,
            sync: false,
            readonly: true,
            seal_bytes: DEFAULT_SEAL_BYTES,
            _lock: None,
            compact_lock: Mutex::new(()),
            inner: Mutex::new(Inner {
                manifest,
                sealed,
                active: None,
                parsed,
                raw,
                total_bytes,
                live_bytes,
                last_recovery_truncated: 0,
            }),
        })
    }

    /// Open an existing store for writing under the manifest's own
    /// recorded model version — the persistent generation is left
    /// untouched. Offline maintenance (`whoisml store compact`) uses
    /// this; it takes the single-writer lock like any writable open,
    /// so it fails fast against a running daemon instead of corrupting
    /// its segments. Fails if `dir` holds no manifest.
    pub fn open_existing(dir: impl AsRef<Path>, cap_bytes: u64, sync: bool) -> io::Result<Self> {
        let dir = dir.as_ref();
        let bytes = fs::read(dir.join(MANIFEST))?;
        let version = serde_json::from_slice::<Manifest>(&bytes)
            .map(|m| m.model_version)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Self::open_for_model(dir, &version, cap_bytes, sync)
    }

    /// Replace the size at which the active segment is sealed and
    /// remapped read-only (tests use tiny thresholds to exercise
    /// multi-segment stores cheaply).
    pub fn with_seal_bytes(mut self, seal_bytes: u64) -> Self {
        self.seal_bytes = seal_bytes;
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The persistent model generation parsed entries are keyed under.
    pub fn generation(&self) -> u64 {
        self.inner.lock().manifest.generation
    }

    /// Store a parsed reply under its generation-free body key
    /// (`cache_key(0, domain, body)`). Returns `Ok(false)` if an entry
    /// for this key and the current generation is already on disk.
    pub fn put_parsed(&self, body_key: u64, value: &str) -> io::Result<bool> {
        self.require_writable()?;
        let mut inner = self.inner.lock();
        let generation = inner.manifest.generation;
        let key = parsed_key(generation, body_key);
        if inner.parsed.contains_key(&key) {
            return Ok(false);
        }
        let loc = self.append_entry(
            &mut inner,
            EntryKind::Parsed,
            generation,
            body_key,
            "",
            value,
        )?;
        inner.live_bytes += loc.frame_len;
        inner.parsed.insert(key, loc);
        Ok(true)
    }

    /// Store a raw record body for `domain`, replacing any previous
    /// one. Returns `Ok(false)` if the identical body is already
    /// stored (no bytes written).
    pub fn put_raw(&self, domain: &str, body: &str) -> io::Result<bool> {
        self.require_writable()?;
        let lower = domain.to_lowercase();
        let key = raw_key(&lower);
        let mut inner = self.inner.lock();
        if let Some(&loc) = inner.raw.get(&key) {
            if let Some(entry) = inner.read_loc(loc) {
                if entry.domain == lower && entry.value == body {
                    return Ok(false);
                }
            }
        }
        let loc = self.append_entry(&mut inner, EntryKind::Raw, 0, key, &lower, body)?;
        inner.live_bytes += loc.frame_len;
        if let Some(old) = inner.raw.insert(key, loc) {
            inner.live_bytes -= old.frame_len;
        }
        Ok(true)
    }

    /// Fetch the stored reply for a generation-free body key, if one
    /// exists under the current generation.
    pub fn get_parsed(&self, body_key: u64) -> Option<String> {
        let inner = self.inner.lock();
        let key = parsed_key(inner.manifest.generation, body_key);
        let loc = *inner.parsed.get(&key)?;
        inner.read_loc(loc).map(|e| e.value.to_string())
    }

    /// Fetch the stored raw record body for `domain`, verifying the
    /// stored domain byte-for-byte (a hash collision reads as a miss).
    pub fn get_raw(&self, domain: &str) -> Option<String> {
        let lower = domain.to_lowercase();
        let inner = self.inner.lock();
        let loc = *inner.raw.get(&raw_key(&lower))?;
        let entry = inner.read_loc(loc)?;
        (entry.domain == lower).then(|| entry.value.to_string())
    }

    /// Advance the persistent generation (a model swap): every stored
    /// parse becomes unreachable dead weight, raw records are
    /// untouched. Persisted before returning so a crash immediately
    /// after a swap can never resurrect old-model parses.
    pub fn bump_generation(&self, model_version: &str) -> io::Result<u64> {
        self.require_writable()?;
        let mut inner = self.inner.lock();
        inner.manifest.generation += 1;
        inner.manifest.model_version = model_version.to_string();
        let dead: u64 = inner.parsed.values().map(|l| l.frame_len).sum();
        inner.live_bytes -= dead;
        inner.parsed.clear();
        persist_manifest(&self.dir, &inner.manifest, self.sync)?;
        Ok(inner.manifest.generation)
    }

    /// Fsync the active segment (graceful-shutdown barrier for stores
    /// opened with `sync == false`).
    pub fn sync(&self) -> io::Result<()> {
        let inner = self.inner.lock();
        if let Some(active) = &inner.active {
            active.file.sync_data()?;
        }
        Ok(())
    }

    /// Whether enough dead bytes (or cap overrun) have accumulated to
    /// make a compaction pass worthwhile.
    pub fn needs_compaction(&self) -> bool {
        let inner = self.inner.lock();
        let dead = inner.dead_bytes();
        (dead >= COMPACT_DEAD_FLOOR && dead * COMPACT_DEAD_RATIO >= inner.total_bytes)
            || (self.cap_bytes > 0 && inner.total_bytes > self.cap_bytes)
    }

    /// Rewrite live entries into one fresh segment and atomically swap
    /// the manifest. If a byte cap is set and live data exceeds it,
    /// the oldest parsed entries are evicted first (they can always be
    /// re-derived), then the oldest raw records.
    ///
    /// The expensive work — scanning every segment, rewriting and
    /// fsyncing the replacement — runs with **no store lock held**: the
    /// pass seals the active segment, snapshots the (now immutable)
    /// segments and index, writes the new segment unlocked, then
    /// re-validates under the lock. An entry overwritten mid-pass keeps
    /// pointing at its newer copy (the rewritten duplicate becomes dead
    /// weight for the next pass), so serving is blocked only for the
    /// brief swap, never for the rewrite.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        self.require_writable()?;
        // One pass at a time; a concurrent caller queues behind it.
        let _pass = self.compact_lock.lock();

        // Phase 1 (locked): seal the active segment so every snapshot
        // segment is immutable, snapshot segments + index, and reserve
        // the output id — an append during the pass must not collide
        // with it. (If we crash, the reserved file is unlisted and the
        // next open sweeps it.)
        let (snap_segments, snap_ids, snap_parsed, snap_raw, new_id, segments_before, bytes_before);
        {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            segments_before = inner.sealed.len() as u64 + u64::from(inner.active.is_some());
            bytes_before = inner.total_bytes;
            self.seal_active(inner)?;
            snap_segments = inner.sealed.clone();
            snap_ids = inner.manifest.segments.clone();
            snap_parsed = inner.parsed.clone();
            snap_raw = inner.raw.clone();
            new_id = inner.manifest.next_segment;
            inner.manifest.next_segment += 1;
        }
        let snap_set: HashSet<u64> = snap_ids.iter().copied().collect();

        // Phase 2 (unlocked): collect live entries oldest-first
        // (borrowing straight from the snapshot maps — nothing is
        // copied to the heap beyond the write buffer), enforce the
        // cap, and write + fsync the replacement segment, fully
        // durable before the manifest ever mentions it.
        struct Live<'a> {
            kind: EntryKind,
            generation: u64,
            key: u64,
            index_key: u64,
            domain: &'a str,
            value: &'a str,
            frame_len: u64,
        }
        let mut live: Vec<Live<'_>> = Vec::with_capacity(snap_parsed.len() + snap_raw.len());
        for &id in &snap_ids {
            let Some(seg) = snap_segments.iter().find(|s| s.id == id) else {
                continue;
            };
            let (entries, _) = seg.scan();
            for (off, entry) in entries {
                let index_key = match entry.kind {
                    EntryKind::Parsed => parsed_key(entry.generation, entry.key),
                    EntryKind::Raw => entry.key,
                };
                let map = match entry.kind {
                    EntryKind::Parsed => &snap_parsed,
                    EntryKind::Raw => &snap_raw,
                };
                let is_live = map
                    .get(&index_key)
                    .is_some_and(|l| l.seg == id && l.off == off);
                if is_live {
                    live.push(Live {
                        kind: entry.kind,
                        generation: entry.generation,
                        key: entry.key,
                        index_key,
                        domain: entry.domain,
                        value: entry.value,
                        frame_len: ENTRY_OVERHEAD
                            + entry.domain.len() as u64
                            + entry.value.len() as u64,
                    });
                }
            }
        }

        // Cap enforcement: evict oldest-first, parsed before raw.
        let mut evicted: Vec<(EntryKind, u64)> = Vec::new();
        let mut evicted_parsed = 0u64;
        let mut evicted_raw = 0u64;
        if self.cap_bytes > 0 {
            let mut total: u64 = MAGIC.len() as u64 + live.iter().map(|l| l.frame_len).sum::<u64>();
            for pass in [EntryKind::Parsed, EntryKind::Raw] {
                live.retain(|l| {
                    if total > self.cap_bytes && l.kind == pass {
                        total -= l.frame_len;
                        evicted.push((l.kind, l.index_key));
                        match pass {
                            EntryKind::Parsed => evicted_parsed += 1,
                            EntryKind::Raw => evicted_raw += 1,
                        }
                        false
                    } else {
                        true
                    }
                });
            }
        }

        let new_path = self.dir.join(segment::file_name(new_id));
        let mut offsets = Vec::with_capacity(live.len());
        {
            let mut w = io::BufWriter::new(File::create(&new_path)?);
            w.write_all(MAGIC)?;
            let mut off = MAGIC.len() as u64;
            for l in &live {
                let framed = segment::frame_entry(l.kind, l.generation, l.key, l.domain, l.value);
                offsets.push(off);
                w.write_all(&framed)?;
                off += framed.len() as u64;
            }
            let f = w.into_inner().map_err(|e| e.into_error())?;
            f.sync_data()?;
        }
        let new_seg = Arc::new(Segment::open(&self.dir, new_id)?);

        // Phase 3 (locked): re-point index entries still served from a
        // snapshot segment at their rewritten copies, drop cap
        // evictions the same guarded way, and commit the manifest.
        // Entries appended or overwritten during phase 2 live in
        // post-seal segments — their index locations are left alone.
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        for (l, &off) in live.iter().zip(&offsets) {
            let map = match l.kind {
                EntryKind::Parsed => &mut inner.parsed,
                EntryKind::Raw => &mut inner.raw,
            };
            if let Some(cur) = map.get_mut(&l.index_key) {
                if snap_set.contains(&cur.seg) {
                    *cur = Loc {
                        seg: new_id,
                        off,
                        frame_len: l.frame_len,
                    };
                }
            }
        }
        for (kind, index_key) in &evicted {
            let map = match kind {
                EntryKind::Parsed => &mut inner.parsed,
                EntryKind::Raw => &mut inner.raw,
            };
            if map
                .get(index_key)
                .is_some_and(|cur| snap_set.contains(&cur.seg))
            {
                map.remove(index_key);
            }
        }

        // The new segment precedes every post-seal segment in the list
        // (manifest order is age order — the rebuild-on-open scan
        // relies on last-write-wins).
        let mut manifest = inner.manifest.clone();
        let survivors: Vec<u64> = manifest
            .segments
            .iter()
            .copied()
            .filter(|id| !snap_set.contains(id))
            .collect();
        manifest.segments = std::iter::once(new_id).chain(survivors).collect();
        manifest.next_segment = manifest.next_segment.max(new_id + 1);
        manifest.compactions += 1;
        persist_manifest(&self.dir, &manifest, self.sync)?;

        // The swap is committed; the snapshot segments are garbage.
        for &id in &snap_ids {
            let _ = fs::remove_file(self.dir.join(segment::file_name(id)));
        }

        inner.manifest = manifest;
        inner.sealed.retain(|s| !snap_set.contains(&s.id));
        inner.sealed.insert(0, new_seg);
        inner.total_bytes = inner.sealed.iter().map(|s| s.len()).sum::<u64>()
            + inner.active.as_ref().map_or(0, |a| a.tail.len() as u64);
        inner.live_bytes = inner.parsed.values().map(|l| l.frame_len).sum::<u64>()
            + inner.raw.values().map(|l| l.frame_len).sum::<u64>();

        Ok(CompactionReport {
            segments_before,
            segments_after: inner.manifest.segments.len() as u64,
            bytes_before,
            bytes_after: inner.total_bytes,
            evicted_parsed,
            evicted_raw,
        })
    }

    /// Full scan of every segment: CRC-check all frames and cross-check
    /// the index against what is actually on disk.
    pub fn verify(&self) -> VerifyReport {
        let inner = self.inner.lock();
        let mut entries = 0u64;
        let mut bytes_scanned = 0u64;
        let mut torn_bytes = 0u64;
        for &id in &inner.manifest.segments {
            if let Some(bytes) = inner.segment_bytes(id) {
                bytes_scanned += bytes.len() as u64;
                let (found, torn) = segment::scan_bytes(bytes);
                entries += found.len() as u64;
                torn_bytes += torn;
            }
        }
        let mut index_mismatches = 0u64;
        for (&key, &loc) in &inner.parsed {
            let ok = inner.read_loc(loc).is_some_and(|e| {
                e.kind == EntryKind::Parsed && parsed_key(e.generation, e.key) == key
            });
            if !ok {
                index_mismatches += 1;
            }
        }
        for (&key, &loc) in &inner.raw {
            let ok = inner
                .read_loc(loc)
                .is_some_and(|e| e.kind == EntryKind::Raw && e.key == key);
            if !ok {
                index_mismatches += 1;
            }
        }
        VerifyReport {
            segments: inner.manifest.segments.len() as u64,
            entries,
            bytes_scanned,
            torn_bytes,
            index_parsed: inner.parsed.len() as u64,
            index_raw: inner.raw.len() as u64,
            index_mismatches,
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            segments: inner.manifest.segments.len() as u64,
            total_bytes: inner.total_bytes,
            live_bytes: inner.live_bytes,
            dead_bytes: inner.dead_bytes(),
            parsed_entries: inner.parsed.len() as u64,
            raw_entries: inner.raw.len() as u64,
            generation: inner.manifest.generation,
            compactions: inner.manifest.compactions,
            last_recovery_truncated: inner.last_recovery_truncated,
        }
    }

    /// Fail every mutating call on an inspection-only store.
    fn require_writable(&self) -> io::Result<()> {
        if self.readonly {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("{}: store opened read-only", self.dir.display()),
            ));
        }
        Ok(())
    }

    /// Seal the active segment: fsync it, drop the heap tail mirror,
    /// and remap it read-only alongside the other sealed segments. The
    /// next append starts a fresh active segment.
    fn seal_active(&self, inner: &mut Inner) -> io::Result<()> {
        match &inner.active {
            Some(active) => active.file.sync_data()?,
            None => return Ok(()),
        }
        let active = inner.active.take().expect("checked above");
        let id = active.id;
        drop(active);
        inner.sealed.push(Arc::new(Segment::open(&self.dir, id)?));
        Ok(())
    }

    /// Append one framed entry to the active segment (creating it — and
    /// registering it in the manifest — on first use since open or the
    /// last seal), sealing the segment afterwards if it has reached the
    /// size threshold.
    fn append_entry(
        &self,
        inner: &mut Inner,
        kind: EntryKind,
        generation: u64,
        key: u64,
        domain: &str,
        value: &str,
    ) -> io::Result<Loc> {
        // Refuse what `decode_frame` would reject on reopen: an
        // oversized frame acknowledged here would read as a torn tail
        // and silently truncate every entry acknowledged after it.
        let payload_len = 1 + 8 + 8 + 4 + domain.len() + 4 + value.len();
        if payload_len > MAX_FRAME as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "entry for {domain:?} is {payload_len} payload bytes, \
                     over the {MAX_FRAME}-byte frame cap"
                ),
            ));
        }
        if inner.active.is_none() {
            let id = inner.manifest.next_segment;
            let path = self.dir.join(segment::file_name(id));
            let mut file = OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)?;
            file.write_all(MAGIC)?;
            if self.sync {
                file.sync_data()?;
            }
            // The manifest must list the segment before any entry is
            // acknowledged, or recovery would sweep it as a stray.
            let mut manifest = inner.manifest.clone();
            manifest.segments.push(id);
            manifest.next_segment = id + 1;
            persist_manifest(&self.dir, &manifest, self.sync)?;
            inner.manifest = manifest;
            inner.total_bytes += MAGIC.len() as u64;
            inner.active = Some(Active {
                id,
                file,
                tail: MAGIC.to_vec(),
            });
        }
        let sync = self.sync;
        let active = inner.active.as_mut().unwrap();
        let framed = segment::frame_entry(kind, generation, key, domain, value);
        let off = active.tail.len() as u64;
        active.file.write_all(&framed)?;
        active.file.flush()?;
        if sync {
            active.file.sync_data()?;
        }
        active.tail.extend_from_slice(&framed);
        let loc = Loc {
            seg: active.id,
            off,
            frame_len: framed.len() as u64,
        };
        let full = active.tail.len() as u64 >= self.seal_bytes;
        inner.total_bytes += framed.len() as u64;
        if full {
            self.seal_active(inner)?;
        }
        Ok(loc)
    }
}

/// Take the single-writer lock: an exclusive advisory lock on `LOCK`
/// in the store directory, held until the returned handle drops. Both
/// locks on one open file description, so a second writable open in
/// the *same* process conflicts too.
fn acquire_write_lock(dir: &Path) -> io::Result<File> {
    let lock = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join(LOCK_FILE))?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(TryLockError::WouldBlock) => Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "store is locked by another writer (a daemon or an offline \
             `whoisml store compact`)",
        )),
        Err(TryLockError::Error(e)) => Err(e),
    }
}

fn check_format(manifest: &Manifest) -> io::Result<()> {
    if manifest.format != MANIFEST_FORMAT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported store manifest format {:?}", manifest.format),
        ));
    }
    Ok(())
}

/// Rebuild the index from sealed segments, last write wins (segments
/// in manifest order, offsets in append order). Parsed entries from
/// other generations are dead weight until compaction. Returns
/// `(parsed, raw, total_bytes, live_bytes)`.
#[allow(clippy::type_complexity)]
fn build_index(
    sealed: &[Arc<Segment>],
    generation: u64,
) -> (HashMap<u64, Loc>, HashMap<u64, Loc>, u64, u64) {
    let mut parsed = HashMap::new();
    let mut raw = HashMap::new();
    let mut total_bytes = 0u64;
    let mut live_bytes = 0u64;
    for seg in sealed {
        total_bytes += seg.len();
        let (entries, _) = seg.scan();
        for (off, entry) in entries {
            let frame_len = ENTRY_OVERHEAD + entry.domain.len() as u64 + entry.value.len() as u64;
            let loc = Loc {
                seg: seg.id,
                off,
                frame_len,
            };
            let slot = match entry.kind {
                EntryKind::Parsed => {
                    if entry.generation != generation {
                        continue;
                    }
                    parsed.insert(parsed_key(entry.generation, entry.key), loc)
                }
                EntryKind::Raw => raw.insert(entry.key, loc),
            };
            live_bytes += frame_len;
            if let Some(old) = slot {
                live_bytes -= old.frame_len;
            }
        }
    }
    (parsed, raw, total_bytes, live_bytes)
}

/// Truncate a listed segment back to its last whole frame (or recreate
/// it empty if even the magic is torn). Returns the bytes dropped.
fn recover_segment(dir: &Path, id: u64) -> io::Result<u64> {
    let path = dir.join(segment::file_name(id));
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        // Listed but missing: the crash hit between manifest persist
        // and the first append ever reaching disk. Recreate empty.
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let valid_end = if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        // Torn inside the magic itself — nothing to salvage.
        fs::write(&path, MAGIC)?;
        return Ok(bytes.len() as u64);
    } else {
        let (_, torn) = segment::scan_bytes(&bytes);
        bytes.len() as u64 - torn
    };
    let dropped = bytes.len() as u64 - valid_end;
    if dropped > 0 {
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_end)?;
        file.sync_data()?;
    }
    Ok(dropped)
}

/// Write the manifest durably: temp file, fsync, rename over the old
/// one, fsync the directory. Readers see the old or the new manifest,
/// never a partial one.
fn persist_manifest(dir: &Path, manifest: &Manifest, sync: bool) -> io::Result<()> {
    let tmp = dir.join(MANIFEST_TMP);
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        .into_bytes();
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&json)?;
        if sync {
            f.sync_data()?;
        }
    }
    fs::rename(&tmp, dir.join(MANIFEST))?;
    if sync {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Background compaction driver: polls [`RecordStore::needs_compaction`]
/// on an interval and compacts when it fires.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawn the compaction thread.
    pub fn start(store: Arc<RecordStore>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("whois-store-compactor".to_string())
            .spawn(move || {
                // Poll in short slices so stop() returns promptly even
                // with multi-second intervals.
                let slice = Duration::from_millis(25);
                let mut elapsed = Duration::ZERO;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed < interval {
                        continue;
                    }
                    elapsed = Duration::ZERO;
                    if store.needs_compaction() {
                        let _ = store.compact();
                    }
                }
            })
            .expect("spawn compactor thread");
        Compactor {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::cache_key;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("whois-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_within_one_run() {
        let dir = tmp_dir("roundtrip");
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        let k = cache_key(0, "a.com", "Domain Name: A\n");
        assert!(store.put_parsed(k, "PARSED a.com\n").unwrap());
        assert!(!store.put_parsed(k, "PARSED a.com\n").unwrap(), "dedup");
        assert_eq!(store.get_parsed(k).as_deref(), Some("PARSED a.com\n"));
        assert!(store.put_raw("A.com", "Domain Name: A\n").unwrap());
        assert_eq!(store.get_raw("a.COM").as_deref(), Some("Domain Name: A\n"));
        assert!(store.get_parsed(k ^ 1).is_none());
        assert!(store.get_raw("b.com").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_everything() {
        let dir = tmp_dir("reopen");
        let k = cache_key(0, "a.com", "body\n");
        {
            let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
            store.put_parsed(k, "reply-a\n").unwrap();
            store.put_raw("b.com", "raw-b\n").unwrap();
            store.sync().unwrap();
        }
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        assert_eq!(store.get_parsed(k).as_deref(), Some("reply-a\n"));
        assert_eq!(store.get_raw("b.com").as_deref(), Some("raw-b\n"));
        let stats = store.stats();
        assert_eq!(stats.parsed_entries, 1);
        assert_eq!(stats.raw_entries, 1);
        assert_eq!(stats.last_recovery_truncated, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn model_swap_keeps_raw_drops_parsed() {
        let dir = tmp_dir("swap");
        let k = cache_key(0, "a.com", "body\n");
        {
            let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
            store.put_parsed(k, "old-model-reply\n").unwrap();
            store.put_raw("a.com", "body\n").unwrap();
            store.sync().unwrap();
        }
        // Same store, different model: generation bumps at open.
        let store = RecordStore::open_for_model(&dir, "m2", 0, false).unwrap();
        assert!(store.get_parsed(k).is_none(), "old parse fenced off");
        assert_eq!(store.get_raw("a.com").as_deref(), Some("body\n"));
        // In-process swap does the same.
        store.put_parsed(k, "m2-reply\n").unwrap();
        assert_eq!(store.get_parsed(k).as_deref(), Some("m2-reply\n"));
        let g = store.bump_generation("m3").unwrap();
        assert!(g >= 3);
        assert!(store.get_parsed(k).is_none());
        assert_eq!(store.get_raw("a.com").as_deref(), Some("body\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_last_whole_frame() {
        let dir = tmp_dir("torn");
        let keys: Vec<u64> = (0..4)
            .map(|i| cache_key(0, "d.com", &format!("b{i}")))
            .collect();
        {
            let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
            for (i, &k) in keys.iter().enumerate() {
                store.put_parsed(k, &format!("reply-{i}\n")).unwrap();
            }
            store.sync().unwrap();
        }
        // Tear the active segment mid-final-frame.
        let seg = dir.join(segment::file_name(0));
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();

        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        let stats = store.stats();
        assert!(stats.last_recovery_truncated > 0);
        assert_eq!(stats.parsed_entries, 3, "only the torn entry is lost");
        for (i, &k) in keys.iter().enumerate().take(3) {
            assert_eq!(
                store.get_parsed(k).as_deref(),
                Some(&*format!("reply-{i}\n"))
            );
        }
        assert!(store.get_parsed(keys[3]).is_none());
        // The store stays appendable after recovery.
        assert!(store.put_parsed(keys[3], "reply-3 again\n").unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_dead_weight_and_preserves_live() {
        let dir = tmp_dir("compact");
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        let k = cache_key(0, "a.com", "body\n");
        store.put_parsed(k, "reply\n").unwrap();
        for i in 0..50 {
            store
                .put_raw("churn.com", &format!("version {i}\n"))
                .unwrap();
        }
        store.put_raw("keep.com", "kept body\n").unwrap();
        let before = store.stats();
        assert!(before.dead_bytes > 0);
        let report = store.compact().unwrap();
        assert!(report.bytes_after < report.bytes_before);
        let after = store.stats();
        assert_eq!(after.dead_bytes, 0);
        assert_eq!(after.segments, 1);
        assert_eq!(store.get_parsed(k).as_deref(), Some("reply\n"));
        assert_eq!(store.get_raw("churn.com").as_deref(), Some("version 49\n"));
        assert_eq!(store.get_raw("keep.com").as_deref(), Some("kept body\n"));
        // Still writable and reopenable after compaction.
        store.put_raw("post.com", "post-compaction\n").unwrap();
        store.sync().unwrap();
        drop(store);
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        assert_eq!(
            store.get_raw("post.com").as_deref(),
            Some("post-compaction\n")
        );
        assert_eq!(store.get_parsed(k).as_deref(), Some("reply\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cap_evicts_parsed_before_raw_oldest_first() {
        let dir = tmp_dir("cap");
        let store = RecordStore::open_for_model(&dir, "m1", 600, false).unwrap();
        let filler = "x".repeat(80);
        let keys: Vec<u64> = (0..6)
            .map(|i| cache_key(0, "d.com", &format!("p{i}")))
            .collect();
        for &k in &keys {
            store.put_parsed(k, &filler).unwrap();
        }
        store.put_raw("raw.com", &filler).unwrap();
        assert!(store.needs_compaction(), "over cap");
        let report = store.compact().unwrap();
        assert!(report.evicted_parsed > 0);
        assert_eq!(report.evicted_raw, 0, "raw outlives parsed under cap");
        assert!(store.stats().total_bytes <= 600);
        assert_eq!(store.get_raw("raw.com").as_deref(), Some(filler.as_str()));
        // The survivors are the *newest* parsed entries.
        assert!(store.get_parsed(keys[0]).is_none());
        assert!(store.get_parsed(*keys.last().unwrap()).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_segments_are_swept_on_open() {
        let dir = tmp_dir("stray");
        {
            let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
            store.put_raw("a.com", "body\n").unwrap();
            store.sync().unwrap();
        }
        // Simulate a compaction that crashed after writing its output
        // but before the manifest swap.
        let stray = dir.join(segment::file_name(99));
        fs::write(&stray, MAGIC).unwrap();
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        assert!(!stray.exists(), "stray segment swept");
        assert_eq!(store.get_raw("a.com").as_deref(), Some("body\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_clean_store() {
        let dir = tmp_dir("verify");
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        store.put_raw("a.com", "body\n").unwrap();
        store
            .put_parsed(cache_key(0, "a.com", "body\n"), "reply\n")
            .unwrap();
        let report = store.verify();
        assert!(report.ok());
        assert_eq!(report.entries, 2);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(report.index_parsed, 1);
        assert_eq!(report.index_raw, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_entry_is_rejected_not_acknowledged() {
        let dir = tmp_dir("oversized");
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        store.put_raw("ok.com", "fits\n").unwrap();
        // Release builds must refuse this too: an acked over-cap frame
        // would decode as a torn tail on reopen, silently truncating
        // it and everything acknowledged after it.
        let huge = "x".repeat(crate::frame::MAX_FRAME as usize + 1);
        let err = store.put_raw("big.com", &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = store
            .put_parsed(cache_key(0, "big.com", "b"), &huge)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        store.put_raw("after.com", "still fine\n").unwrap();
        drop(store);
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        assert_eq!(store.stats().last_recovery_truncated, 0);
        assert_eq!(store.get_raw("ok.com").as_deref(), Some("fits\n"));
        assert_eq!(store.get_raw("after.com").as_deref(), Some("still fine\n"));
        assert!(store.get_raw("big.com").is_none());
        assert!(store.verify().ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn active_segment_seals_at_threshold() {
        let dir = tmp_dir("seal");
        let body = "b".repeat(512);
        {
            let store = RecordStore::open_for_model(&dir, "m1", 0, false)
                .unwrap()
                .with_seal_bytes(4 << 10);
            for i in 0..40 {
                store.put_raw(&format!("d{i}.com"), &body).unwrap();
            }
            let stats = store.stats();
            assert!(
                stats.segments > 1,
                "the size threshold must seal mid-run: {stats:?}"
            );
            for i in 0..40 {
                assert_eq!(
                    store.get_raw(&format!("d{i}.com")).as_deref(),
                    Some(body.as_str()),
                    "entry d{i} must survive its segment sealing"
                );
            }
            assert!(store.verify().ok());
        }
        // A store sealed mid-run reopens like any other, and
        // compaction folds the segments back into one.
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        assert_eq!(store.stats().raw_entries, 40);
        let report = store.compact().unwrap();
        assert!(report.segments_before > 1);
        assert_eq!(store.stats().segments, 1);
        assert_eq!(store.get_raw("d0.com").as_deref(), Some(body.as_str()));
        assert_eq!(store.get_raw("d39.com").as_deref(), Some(body.as_str()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readonly_open_never_mutates_and_rejects_writes() {
        let dir = tmp_dir("readonly");
        let k = cache_key(0, "a.com", "body\n");
        {
            let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
            store.put_raw("a.com", "body\n").unwrap();
            store.put_parsed(k, "reply\n").unwrap();
            store.sync().unwrap();
        }
        // Plant everything a *writable* open would clean up: a stray
        // segment, a manifest temp file, and a torn tail.
        let stray = dir.join(segment::file_name(77));
        fs::write(&stray, MAGIC).unwrap();
        fs::write(dir.join(MANIFEST_TMP), b"half-written").unwrap();
        let seg0 = dir.join(segment::file_name(0));
        let clean_len = fs::read(&seg0).unwrap().len();
        let mut torn = fs::read(&seg0).unwrap();
        torn.extend_from_slice(&[0xAB; 5]);
        fs::write(&seg0, &torn).unwrap();

        let store = RecordStore::open_readonly(&dir).unwrap();
        assert_eq!(store.get_raw("a.com").as_deref(), Some("body\n"));
        assert_eq!(store.get_parsed(k).as_deref(), Some("reply\n"));
        assert!(store.verify().ok());
        for err in [
            store.put_raw("b.com", "x").unwrap_err(),
            store.put_parsed(1, "x").unwrap_err(),
            store.bump_generation("m2").unwrap_err(),
            store.compact().unwrap_err(),
        ] {
            assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        }
        drop(store);
        assert!(stray.exists(), "read-only open must not sweep strays");
        assert!(
            dir.join(MANIFEST_TMP).exists(),
            "read-only open must not delete the manifest temp"
        );
        assert_eq!(
            fs::read(&seg0).unwrap().len(),
            torn.len(),
            "read-only open must not truncate torn tails"
        );

        // A writable open still recovers and sweeps all of it.
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        assert!(!stray.exists());
        assert!(!dir.join(MANIFEST_TMP).exists());
        assert_eq!(fs::read(&seg0).unwrap().len(), clean_len);
        assert!(store.stats().last_recovery_truncated > 0);
        assert_eq!(store.get_raw("a.com").as_deref(), Some("body\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_writer_is_locked_out_while_readers_are_not() {
        let dir = tmp_dir("lock");
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        store.put_raw("a.com", "body\n").unwrap();
        let err = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        let err = RecordStore::open_existing(&dir, 0, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Inspection needs no lock and sees the live writer's data.
        let ro = RecordStore::open_readonly(&dir).unwrap();
        assert_eq!(ro.get_raw("a.com").as_deref(), Some("body\n"));
        drop(ro);
        drop(store);
        // The lock dies with the writer: maintenance can take over.
        let store = RecordStore::open_existing(&dir, 0, false).unwrap();
        store.compact().unwrap();
        assert_eq!(store.get_raw("a.com").as_deref(), Some("body\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn puts_racing_a_compaction_survive() {
        let dir = tmp_dir("race");
        let store = Arc::new(RecordStore::open_for_model(&dir, "m1", 0, false).unwrap());
        // Build a store with dead weight (every key overwritten once).
        for round in 0..2 {
            for i in 0..200 {
                store
                    .put_raw(&format!("d{i}.com"), &format!("r{round}-{i}"))
                    .unwrap();
            }
        }
        // Overwrite half the keys and add new ones while a compaction
        // pass runs: whatever the interleaving, last write must win
        // and nothing may be lost.
        let compactor = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.compact().unwrap())
        };
        for i in 0..100 {
            store
                .put_raw(&format!("d{i}.com"), &format!("mid-{i}"))
                .unwrap();
        }
        for i in 200..300 {
            store
                .put_raw(&format!("d{i}.com"), &format!("new-{i}"))
                .unwrap();
        }
        compactor.join().unwrap();
        for i in 0..100 {
            assert_eq!(
                store.get_raw(&format!("d{i}.com")).as_deref(),
                Some(format!("mid-{i}").as_str())
            );
        }
        for i in 100..200 {
            assert_eq!(
                store.get_raw(&format!("d{i}.com")).as_deref(),
                Some(format!("r1-{i}").as_str())
            );
        }
        for i in 200..300 {
            assert_eq!(
                store.get_raw(&format!("d{i}.com")).as_deref(),
                Some(format!("new-{i}").as_str())
            );
        }
        assert!(store.verify().ok());
        store.sync().unwrap();
        drop(store);
        // Everything above survives a reopen (the manifest kept the
        // compacted segment *and* the mid-pass active segment, oldest
        // first).
        let store = RecordStore::open_for_model(&dir, "m1", 0, false).unwrap();
        assert_eq!(store.stats().raw_entries, 300);
        assert_eq!(store.get_raw("d0.com").as_deref(), Some("mid-0"));
        assert_eq!(store.get_raw("d150.com").as_deref(), Some("r1-150"));
        assert_eq!(store.get_raw("d250.com").as_deref(), Some("new-250"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compactor_thread_compacts_and_stops() {
        let dir = tmp_dir("compactor");
        let store = Arc::new(RecordStore::open_for_model(&dir, "m1", 0, false).unwrap());
        // Manufacture > 256 KiB of dead bytes.
        let big = "y".repeat(64 << 10);
        for i in 0..8 {
            store.put_raw("same.com", &format!("{big}{i}")).unwrap();
        }
        assert!(store.needs_compaction());
        let compactor = Compactor::start(Arc::clone(&store), Duration::from_millis(50));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.stats().compactions == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        compactor.stop();
        assert!(store.stats().compactions >= 1, "compactor never fired");
        assert!(store.get_raw("same.com").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
