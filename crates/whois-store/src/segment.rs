//! Segment files: CRC-framed runs of store entries.
//!
//! A segment is `"WSS1"` followed by [`frame`](crate::frame)-encoded
//! entries. Each entry payload is:
//!
//! ```text
//! kind:        u8      0 = raw record, 1 = parsed result
//! generation:  u64 LE  store model generation (0 for raw entries)
//! key:         u64 LE  generation-free body key (parsed) / domain key (raw)
//! domain_len:  u32 LE
//! domain:      bytes   the queried domain, lower-cased
//! value_len:   u32 LE
//! value:       bytes   record body (raw) / serialized reply (parsed)
//! ```
//!
//! The generation and the generation-free key travel *inside* the entry
//! so the index can be rebuilt from a bare scan: parsed entries from an
//! older generation are simply skipped (dead weight until compaction),
//! raw entries never expire. A torn tail — short write or CRC mismatch
//! mid-frame — ends the scan at the last whole entry.

use crate::frame::{self, FRAME_HEADER};
use crate::mmap::MappedFile;
use std::io;
use std::path::{Path, PathBuf};

/// Segment file magic.
pub const MAGIC: &[u8; 4] = b"WSS1";

/// What an entry holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// A fetched WHOIS record body.
    Raw,
    /// A serialized parse reply for one (generation, domain, body).
    Parsed,
}

/// One decoded entry, borrowing from the segment's bytes.
pub struct EntryRef<'a> {
    pub kind: EntryKind,
    pub generation: u64,
    pub key: u64,
    pub domain: &'a str,
    pub value: &'a str,
}

/// Encode one entry payload (the bytes that go inside a frame).
pub fn encode_entry(
    kind: EntryKind,
    generation: u64,
    key: u64,
    domain: &str,
    value: &str,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + 8 + 4 + domain.len() + 4 + value.len());
    out.push(match kind {
        EntryKind::Raw => 0,
        EntryKind::Parsed => 1,
    });
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(domain.len() as u32).to_le_bytes());
    out.extend_from_slice(domain.as_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value.as_bytes());
    out
}

/// Decode one entry payload; `None` on any structural mismatch (which a
/// CRC-valid frame should never produce — treated as corruption).
pub fn decode_entry(payload: &[u8]) -> Option<EntryRef<'_>> {
    let kind = match *payload.first()? {
        0 => EntryKind::Raw,
        1 => EntryKind::Parsed,
        _ => return None,
    };
    let generation = u64::from_le_bytes(payload.get(1..9)?.try_into().ok()?);
    let key = u64::from_le_bytes(payload.get(9..17)?.try_into().ok()?);
    let domain_len = u32::from_le_bytes(payload.get(17..21)?.try_into().ok()?) as usize;
    let domain_end = 21usize.checked_add(domain_len)?;
    let domain = std::str::from_utf8(payload.get(21..domain_end)?).ok()?;
    let value_len =
        u32::from_le_bytes(payload.get(domain_end..domain_end + 4)?.try_into().ok()?) as usize;
    let value_start = domain_end + 4;
    let value_end = value_start.checked_add(value_len)?;
    if value_end != payload.len() {
        return None;
    }
    let value = std::str::from_utf8(payload.get(value_start..value_end)?).ok()?;
    Some(EntryRef {
        kind,
        generation,
        key,
        domain,
        value,
    })
}

/// The canonical file name for segment `id`.
pub fn file_name(id: u64) -> String {
    format!("seg-{id:08}.wss")
}

/// A sealed (read-only, memory-mapped) segment.
pub struct Segment {
    pub id: u64,
    pub path: PathBuf,
    map: MappedFile,
}

impl Segment {
    /// Open the segment file, verifying its magic.
    pub fn open(dir: &Path, id: u64) -> io::Result<Self> {
        let path = dir.join(file_name(id));
        let map = MappedFile::open(&path)?;
        if map.len() < MAGIC.len() || &map[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a store segment (bad magic)", path.display()),
            ));
        }
        Ok(Segment { id, path, map })
    }

    /// Total bytes in the file (including magic and framing).
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// The segment's full image (magic + frames).
    pub fn bytes(&self) -> &[u8] {
        &self.map
    }

    /// True when the segment holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.len() <= MAGIC.len()
    }

    /// Decode the entry whose *frame* starts at `offset`.
    pub fn entry_at(&self, offset: u64) -> Option<EntryRef<'_>> {
        let (payload, _) = frame::decode_frame(self.map.get(offset as usize..)?)?;
        decode_entry(payload)
    }

    /// Scan every whole entry: `(frame_offset, entry)` pairs in file
    /// order, plus the number of torn-tail bytes past the last whole
    /// frame (0 for a clean segment).
    pub fn scan(&self) -> (Vec<(u64, EntryRef<'_>)>, u64) {
        scan_bytes(&self.map)
    }
}

/// Scan a segment image (magic + frames) for whole entries; shared by
/// [`Segment::scan`] and the writer's pre-seal self-check.
pub fn scan_bytes(bytes: &[u8]) -> (Vec<(u64, EntryRef<'_>)>, u64) {
    let mut entries = Vec::new();
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        match frame::decode_frame(&bytes[pos..]) {
            Some((payload, consumed)) => match decode_entry(payload) {
                Some(entry) => {
                    entries.push((pos as u64, entry));
                    pos += consumed;
                }
                None => break,
            },
            None => break,
        }
    }
    (entries, (bytes.len() - pos) as u64)
}

/// Frame an entry for appending to a segment: returns the framed bytes
/// and the payload they carry.
pub fn frame_entry(
    kind: EntryKind,
    generation: u64,
    key: u64,
    domain: &str,
    value: &str,
) -> Vec<u8> {
    let payload = encode_entry(kind, generation, key, domain, value);
    let mut framed = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame::append_frame(&mut framed, &payload);
    framed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip() {
        let payload = encode_entry(
            EntryKind::Parsed,
            7,
            0xDEAD_BEEF,
            "example.com",
            "PARSED example.com 1 field\n",
        );
        let e = decode_entry(&payload).unwrap();
        assert_eq!(e.kind, EntryKind::Parsed);
        assert_eq!(e.generation, 7);
        assert_eq!(e.key, 0xDEAD_BEEF);
        assert_eq!(e.domain, "example.com");
        assert_eq!(e.value, "PARSED example.com 1 field\n");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_entry(EntryKind::Raw, 0, 1, "a.com", "body");
        payload.push(0x00);
        assert!(decode_entry(&payload).is_none());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut payload = encode_entry(EntryKind::Raw, 0, 1, "a.com", "body");
        payload[0] = 9;
        assert!(decode_entry(&payload).is_none());
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&frame_entry(EntryKind::Raw, 0, 1, "a.com", "A"));
        bytes.extend_from_slice(&frame_entry(EntryKind::Raw, 0, 2, "b.com", "B"));
        let clean_len = bytes.len();
        bytes.extend_from_slice(&frame_entry(EntryKind::Raw, 0, 3, "c.com", "C")[..5]);
        let (entries, torn) = scan_bytes(&bytes);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].1.domain, "b.com");
        assert_eq!(torn, (bytes.len() - clean_len) as u64);
    }
}
