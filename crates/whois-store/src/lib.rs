//! whois-store: the disk-backed cold tier under the serving cache.
//!
//! The paper's corpus — ~102 million domains, 2.5 billion WHOIS
//! records — dwarfs anything the RAM-resident serve cache can hold,
//! and before this crate a daemon restart meant a stone-cold cache.
//! This is a single-writer, log-structured store of CRC-framed
//! append-only segments (the WCJ1 crawl-journal framing from
//! `whois-net`, generalized) holding raw record bodies and serialized
//! parse replies:
//!
//! - **Segments** ([`segment`]) are `"WSS1"`-tagged runs of framed
//!   entries; sealed segments are immutable and memory-mapped
//!   ([`mmap`]), one active segment per process run takes appends.
//! - **Keys** ([`key`]) are the serve cache's 64-bit FNV scheme over
//!   (model generation, domain, normalized body) — shared here so the
//!   RAM and disk tiers agree byte-for-byte on what "the same record"
//!   means.
//! - **The store** ([`store`]) layers a rebuildable in-memory index, a
//!   crash-safe JSON manifest (temp + rename + dir fsync), torn-tail
//!   truncation on open, and background compaction with atomic
//!   manifest swap over those segments. Parsed entries are fenced by a
//!   *persistent* model generation (bumped on model swaps, surviving
//!   restarts); raw records are generation-free and outlive every
//!   swap.
//!
//! `whois-serve` spills cache evictions here and fills misses from
//! here, so a restarted daemon reopens its segments and answers its
//! first requests at warm-cache hit rates.

pub mod frame;
pub mod key;
pub mod mmap;
pub mod segment;
pub mod store;

pub use key::{cache_key, parsed_key, raw_key, Fnv};
pub use store::{CompactionReport, Compactor, RecordStore, StoreStats, VerifyReport};
