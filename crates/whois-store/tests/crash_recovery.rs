//! Crash-recovery property tests: the store's durability contract is
//! that every *acknowledged* append survives `kill -9`, and that no
//! torn or corrupted frame is ever served back.
//!
//! The kill is simulated the only way that covers every interleaving:
//! write a known population, then truncate the active segment file at
//! an **arbitrary byte offset** — mid-header, mid-payload, mid-magic,
//! exactly on a frame boundary — and reopen. A record whose frame lies
//! wholly before the cut must come back byte-identical; everything at
//! or past the cut must be cleanly gone; the store must stay appendable
//! and pass `verify()` afterwards.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use whois_store::RecordStore;

const MODEL: &str = "model-crash-test";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("whois-store-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Newest (highest-id) segment file in `dir` — the active segment of
/// the most recent "process run".
fn newest_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wss"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment file")
}

/// One record in the write schedule: raw or parsed, with a unique key.
#[derive(Clone, Debug)]
enum Write {
    Raw { domain: String, body: String },
    Parsed { body_key: u64, value: String },
}

impl Write {
    fn gen(rng: &mut ChaCha8Rng, uniq: usize) -> Write {
        let len = rng.random_range(1..200);
        let payload: String = (0..len)
            .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
            .collect();
        if rng.random_bool(0.5) {
            Write::Raw {
                domain: format!("domain{uniq}.com"),
                body: format!("Domain Name: DOMAIN{uniq}.COM\nRegistrar: {payload}\n"),
            }
        } else {
            Write::Parsed {
                body_key: uniq as u64 + 1,
                value: format!("OK domain{uniq}.com {payload}"),
            }
        }
    }

    fn apply(&self, store: &RecordStore) {
        match self {
            Write::Raw { domain, body } => assert!(store.put_raw(domain, body).unwrap()),
            Write::Parsed { body_key, value } => {
                assert!(store.put_parsed(*body_key, value).unwrap())
            }
        }
    }

    /// What a reopened store serves for this record's key.
    fn read_back(&self, store: &RecordStore) -> Option<String> {
        match self {
            Write::Raw { domain, .. } => store.get_raw(domain),
            Write::Parsed { body_key, .. } => store.get_parsed(*body_key),
        }
    }

    fn expected(&self) -> &str {
        match self {
            Write::Raw { body, .. } => body,
            Write::Parsed { value, .. } => value,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill at an arbitrary byte offset of the active segment: records
    /// framed wholly before the cut survive byte-identical, records at
    /// or past it vanish cleanly, and the reopened store verifies and
    /// accepts new appends.
    #[test]
    fn truncation_at_any_offset_keeps_exactly_the_acknowledged_prefix(
        n in 1usize..16,
        seed in 0u64..10_000,
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = tmp_dir(&format!("any-offset-{n}-{seed}"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let writes: Vec<Write> = (0..n).map(|i| Write::gen(&mut rng, i)).collect();

        // Write the population, tracking the on-disk frame boundary
        // after each acknowledged append.
        let mut boundaries = Vec::with_capacity(n);
        {
            let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
            for w in &writes {
                w.apply(&store);
                boundaries.push(std::fs::metadata(newest_segment(&dir)).unwrap().len());
            }
        }

        // kill -9: truncate the active segment at an arbitrary offset —
        // including inside the 4-byte magic and at offset zero.
        let seg = newest_segment(&dir);
        let full_len = std::fs::metadata(&seg).unwrap().len();
        let cut = (cut_frac * full_len as f64).round() as u64;
        let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
        for (w, &end) in writes.iter().zip(&boundaries) {
            let got = w.read_back(&store);
            if end <= cut {
                prop_assert_eq!(
                    got.as_deref(),
                    Some(w.expected()),
                    "record framed before the cut must survive byte-identical"
                );
            } else {
                prop_assert_eq!(got, None, "record torn by the cut must be cleanly absent");
            }
        }
        let survivors = boundaries.iter().filter(|&&b| b <= cut).count();
        let stats = store.stats();
        prop_assert_eq!(
            (stats.parsed_entries + stats.raw_entries) as usize,
            survivors
        );
        prop_assert!(store.verify().ok(), "recovered store must verify clean");

        // Recovery must leave the store appendable: a fresh record
        // round-trips and survives one more reopen.
        let probe = Write::gen(&mut rng, n + 1000);
        probe.apply(&store);
        let got = probe.read_back(&store);
        prop_assert_eq!(got.as_deref(), Some(probe.expected()));
        drop(store);
        let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
        let got = probe.read_back(&store);
        prop_assert_eq!(got.as_deref(), Some(probe.expected()));

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Repeated append / kill / reopen rounds: each round appends to a
    /// fresh active segment and is killed at an arbitrary offset into
    /// it. Sealed segments from earlier rounds are untouchable by later
    /// crashes, so the survivor set is exactly the union of each
    /// round's acknowledged prefix.
    #[test]
    fn kill_reopen_schedules_accumulate_only_acknowledged_prefixes(
        rounds in 1usize..4,
        per_round in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let dir = tmp_dir(&format!("schedule-{rounds}-{per_round}-{seed}"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut surviving: Vec<Write> = Vec::new();
        let mut torn: Vec<Write> = Vec::new();
        let mut uniq = 0usize;

        for _ in 0..rounds {
            let writes: Vec<Write> = (0..per_round)
                .map(|_| {
                    uniq += 1;
                    Write::gen(&mut rng, uniq)
                })
                .collect();
            let mut boundaries = Vec::with_capacity(per_round);
            {
                let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
                for w in &writes {
                    w.apply(&store);
                    boundaries.push(std::fs::metadata(newest_segment(&dir)).unwrap().len());
                }
            }
            let seg = newest_segment(&dir);
            let full_len = std::fs::metadata(&seg).unwrap().len();
            // Cut somewhere in this round's segment (4 = past the magic
            // so earlier rounds' data is never the torn one).
            let cut = rng.random_range(4..=full_len);
            let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
            file.set_len(cut).unwrap();
            drop(file);
            for (w, &end) in writes.iter().zip(&boundaries) {
                if end <= cut {
                    surviving.push(w.clone());
                } else {
                    torn.push(w.clone());
                }
            }
        }

        let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
        for w in &surviving {
            let got = w.read_back(&store);
            prop_assert_eq!(got.as_deref(), Some(w.expected()));
        }
        for w in &torn {
            prop_assert_eq!(w.read_back(&store), None);
        }
        prop_assert!(store.verify().ok());

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bit-rot anywhere in a segment must never surface garbage: after
    /// flipping one arbitrary byte, every key either reads back its
    /// exact original value or is absent — never a corrupted body.
    #[test]
    fn corrupted_byte_never_serves_a_torn_frame(
        n in 2usize..12,
        seed in 0u64..10_000,
        flip_frac in 0.0f64..1.0,
    ) {
        let dir = tmp_dir(&format!("bitrot-{n}-{seed}"));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let writes: Vec<Write> = (0..n).map(|i| Write::gen(&mut rng, i)).collect();
        {
            let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
            for w in &writes {
                w.apply(&store);
            }
        }

        let seg = newest_segment(&dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let flip = ((flip_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[flip] ^= 0x5A;
        std::fs::write(&seg, &bytes).unwrap();

        let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
        for w in &writes {
            if let Some(got) = w.read_back(&store) {
                prop_assert_eq!(
                    got,
                    w.expected(),
                    "a served record must be byte-identical to what was written"
                );
            }
        }
        prop_assert!(store.verify().ok());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
