//! The training engine: scratch-pooled, dedup-aware objective evaluation.
//!
//! [`crate::objective::NaiveObjective`] recomputes everything from first
//! principles each L-BFGS evaluation: it clones the full weight vector,
//! re-allocates a score table and forward/backward/marginal lattices per
//! record, re-derives the observed ("empirical") feature counts that are
//! constant across iterations, and re-spawns scoped worker threads per
//! call. [`TrainEngine`] removes all of that from the steady state:
//!
//! 1. **Compiled corpus.** At construction the training set is compiled
//!    into per-worker shards. WHOIS lines repeat heavily across records
//!    (boilerplate, shared registrar templates), so each shard *interns*
//!    its unique observation feature-sets once; records become sequences
//!    of line ids.
//! 2. **Per-iteration potentials, exponentiated once.** Each iteration
//!    computes emission (and, for pair-eligible lines, edge) potentials
//!    once **per unique line** — `O(U·F̄·n)` feature work instead of
//!    `O(T_total·F̄·n)` — and exponentiates them once per unique line
//!    (max-shifted for range safety). The per-record forward–backward
//!    then runs in the probability domain with per-step rescaling
//!    (Rabiner scaling), so the DP is pure multiply–adds instead of a
//!    `log_sum_exp` per lattice cell.
//! 3. **Precomputed observed counts.** The observed feature counts of the
//!    gradient (`expected − observed`) are accumulated once at
//!    construction as a sparse vector and subtracted analytically after
//!    the expectation pass, so per-iteration work is expectations only.
//!    Expectations are themselves accumulated per unique line and
//!    scattered into the dense gradient once per evaluation.
//! 4. **Pooled scratch, persistent workers.** Every buffer (score table,
//!    α/β lattices, node/edge marginals, per-line accumulators, the local
//!    gradient) lives in a per-worker [`TrainScratch`] retained across
//!    iterations, and the workers themselves are long-lived threads fed
//!    through channels — no `Vec<f64>` clone of the ~1M-dim weight vector
//!    and no thread spawn per evaluation.
//!
//! Results match the naive objective to floating-point reassociation
//! (≤ 1e-9 in practice; see `tests/engine_equivalence.rs`), and repeated
//! evaluations at the same point are bit-identical: shard partition,
//! in-shard record order, and the worker-id merge order are all fixed.

use crate::kernels::{self, KernelLevel};
use crate::model::Crf;
use crate::sequence::Instance;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Sentinel for "line has no pair-eligible features" in a shard's
/// `line_pair` map.
const NO_PAIR_LINE: u32 = u32::MAX;

/// One worker's compiled slice of the corpus: interned unique lines plus
/// records re-encoded as line-id sequences.
#[derive(Clone, Debug, Default)]
struct Shard {
    /// Concatenated feature ids of the unique lines.
    line_feats: Vec<u32>,
    /// `U + 1` offsets into `line_feats`.
    line_offsets: Vec<u32>,
    /// Per unique line: compact pair-line index, or [`NO_PAIR_LINE`] when
    /// no feature of the line is pair-eligible.
    line_pair: Vec<u32>,
    /// Number of pair-eligible unique lines.
    num_pair_lines: usize,
    /// Concatenated line ids of the records.
    rec_lines: Vec<u32>,
    /// Concatenated gold labels (aligned with `rec_lines`).
    rec_labels: Vec<u32>,
    /// `R + 1` offsets into `rec_lines` / `rec_labels`.
    rec_offsets: Vec<u32>,
}

impl Shard {
    /// Compile `insts` against the layout of `crf`, interning unique
    /// lines in first-seen order (deterministic).
    ///
    /// # Panics
    /// Panics if an instance contains a feature id `>= F` — the same
    /// records would panic later inside the naive objective's
    /// `score_table`; compilation just surfaces it eagerly.
    fn compile(crf: &Crf, insts: &[Instance]) -> Shard {
        let mut shard = Shard::default();
        shard.line_offsets.push(0);
        shard.rec_offsets.push(0);
        let mut interner: HashMap<&[u32], u32> = HashMap::new();
        for inst in insts {
            for (feats, &gold) in inst.seq.obs.iter().zip(&inst.labels) {
                let next_id = shard.line_offsets.len() as u32 - 1;
                let line_id = *interner.entry(feats).or_insert_with(|| {
                    for &f in feats {
                        assert!(
                            (f as usize) < crf.num_obs_features(),
                            "feature id {f} out of range (F = {})",
                            crf.num_obs_features()
                        );
                    }
                    shard.line_feats.extend_from_slice(feats);
                    shard.line_offsets.push(shard.line_feats.len() as u32);
                    let pair = if feats.iter().any(|&f| crf.is_pair_eligible(f)) {
                        shard.num_pair_lines += 1;
                        shard.num_pair_lines as u32 - 1
                    } else {
                        NO_PAIR_LINE
                    };
                    shard.line_pair.push(pair);
                    next_id
                });
                shard.rec_lines.push(line_id);
                shard.rec_labels.push(gold as u32);
            }
            shard.rec_offsets.push(shard.rec_lines.len() as u32);
        }
        shard
    }

    /// Number of unique lines `U`.
    fn num_lines(&self) -> usize {
        self.line_offsets.len() - 1
    }

    /// Number of records.
    fn num_records(&self) -> usize {
        self.rec_offsets.len() - 1
    }

    /// Feature ids of unique line `u`.
    #[inline]
    fn feats(&self, u: usize) -> &[u32] {
        &self.line_feats[self.line_offsets[u] as usize..self.line_offsets[u + 1] as usize]
    }

    /// `(line ids, gold labels)` of record `r`.
    #[inline]
    fn record(&self, r: usize) -> (&[u32], &[u32]) {
        let range = self.rec_offsets[r] as usize..self.rec_offsets[r + 1] as usize;
        (&self.rec_lines[range.clone()], &self.rec_labels[range])
    }
}

/// Reusable buffers for one training worker, retained at high-water
/// capacity across optimizer iterations.
#[derive(Clone, Debug, Default)]
pub struct TrainScratch {
    /// Per-unique-line emission potentials, `U × n` (log domain; gold-path
    /// scores read these directly).
    emit_pot: Vec<f64>,
    /// Per-pair-line edge potentials (base transitions + pair weights),
    /// `U_pair × n × n` (log domain).
    pair_pot: Vec<f64>,
    /// `exp(emit_pot - emit_off)` per unique line, `U × n` — the
    /// probability-domain emission factors the scaled DP multiplies with.
    emit_exp: Vec<f64>,
    /// Per-unique-line max emission potential (the log offset folded back
    /// into `log Z`), `U`.
    emit_off: Vec<f64>,
    /// `exp(pair_pot - pair_off)` per pair line, `U_pair × n × n`.
    pair_exp: Vec<f64>,
    /// Per-pair-line max edge potential, `U_pair`.
    pair_off: Vec<f64>,
    /// `exp(base_trans - trans_off)`, `n × n`.
    trans_exp: Vec<f64>,
    /// Scaled forward lattice `â` (each row normalized to sum 1).
    alpha: Vec<f64>,
    /// Scaled backward lattice `β̂` (Rabiner scaling: shares `scale`).
    beta: Vec<f64>,
    /// Per-step normalizers `c_t`; `log Z = Σ ln c_t + Σ offsets`.
    scale: Vec<f64>,
    /// Node marginals of the current record.
    nm: Vec<f64>,
    /// Edge marginals of the current record.
    em: Vec<f64>,
    tmp: Vec<f64>,
    /// Expected emission counts per unique line, `U × n`.
    line_node_sum: Vec<f64>,
    /// Expected edge counts per pair line, `U_pair × n × n`.
    line_edge_sum: Vec<f64>,
    /// Expected transition counts, `n × n`.
    trans_sum: Vec<f64>,
}

/// Compute per-unique-line potentials and sweep the shard's records,
/// accumulating `Σ ll_r` (returned) and, when `grad` is given, the
/// **expected** feature counts of the summed negative log-likelihood into
/// it (the observed part is handled sparsely by the caller).
///
/// The per-record DP runs in the probability domain with per-step
/// rescaling (Rabiner scaling) over factors exponentiated **once per
/// unique line**: each factor row/block is shifted by its max before
/// `exp` (the offsets are added back into `log Z` analytically and
/// cancel out of all marginals), so entries stay in `(0, 1]` and the
/// recurrences are pure multiply–adds. This trades the `O(T·n²)`
/// `exp`/`ln` calls of log-space forward–backward for `O(U·n + U_p·n²)`
/// exponentiations plus one `ln` per position.
fn eval_shard(
    crf: &Crf,
    w: &[f64],
    shard: &Shard,
    s: &mut TrainScratch,
    grad: Option<&mut [f64]>,
    kernel: KernelLevel,
) -> f64 {
    let n = crf.num_states();
    let nn = n * n;
    let u = shard.num_lines();
    let base_trans = &w[..nn];

    // Phase 1: per-unique-line potentials (the dedup win — each repeated
    // line's feature weights are summed once per iteration), plus their
    // max-shifted probability-domain factors for the scaled DP.
    s.emit_pot.clear();
    s.emit_pot.resize(u * n, 0.0);
    s.pair_pot.clear();
    s.pair_pot.resize(shard.num_pair_lines * nn, 0.0);
    s.emit_exp.clear();
    s.emit_exp.resize(u * n, 0.0);
    s.emit_off.clear();
    s.emit_off.resize(u, 0.0);
    s.pair_exp.clear();
    s.pair_exp.resize(shard.num_pair_lines * nn, 0.0);
    s.pair_off.clear();
    s.pair_off.resize(shard.num_pair_lines, 0.0);
    for line in 0..u {
        let feats = shard.feats(line);
        let row = &mut s.emit_pot[line * n..(line + 1) * n];
        for &f in feats {
            let base = crf.emit_index(f, 0);
            kernels::add_assign_f64(kernel, row, &w[base..base + n]);
        }
        let off = row.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        s.emit_off[line] = off;
        for (dst, &v) in s.emit_exp[line * n..(line + 1) * n].iter_mut().zip(&*row) {
            *dst = (v - off).exp();
        }
        let p = shard.line_pair[line];
        if p != NO_PAIR_LINE {
            let block = &mut s.pair_pot[p as usize * nn..(p as usize + 1) * nn];
            block.copy_from_slice(base_trans);
            for &f in feats {
                if let Some(pbase) = crf.pair_index(f, 0, 0) {
                    kernels::add_assign_f64(kernel, block, &w[pbase..pbase + nn]);
                }
            }
            let off = block.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            s.pair_off[p as usize] = off;
            for (dst, &v) in s.pair_exp[p as usize * nn..(p as usize + 1) * nn]
                .iter_mut()
                .zip(&*block)
            {
                *dst = (v - off).exp();
            }
        }
    }
    let trans_off = base_trans.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    s.trans_exp.clear();
    s.trans_exp
        .extend(base_trans.iter().map(|&v| (v - trans_off).exp()));

    let want_grad = grad.is_some();
    if want_grad {
        s.line_node_sum.clear();
        s.line_node_sum.resize(u * n, 0.0);
        s.line_edge_sum.clear();
        s.line_edge_sum.resize(shard.num_pair_lines * nn, 0.0);
        s.trans_sum.clear();
        s.trans_sum.resize(nn, 0.0);
    }

    // Phase 2: per-record scaled forward(–backward) directly over the
    // shared per-line factors — no per-record score-table gather.
    let mut ll = 0.0;
    for r in 0..shard.num_records() {
        let (lines, labels) = shard.record(r);
        let t_len = lines.len();
        if t_len == 0 {
            continue;
        }
        s.alpha.clear();
        s.alpha.resize(t_len * n, 0.0);
        s.scale.clear();
        s.scale.resize(t_len, 0.0);
        s.tmp.clear();
        s.tmp.resize(n, 0.0);

        // Scaled forward: â_t is normalized to sum 1, c_t collects the
        // normalizers, the max offsets go straight into log Z.
        let l0 = lines[0] as usize;
        let first = &mut s.alpha[..n];
        first.copy_from_slice(&s.emit_exp[l0 * n..(l0 + 1) * n]);
        let c0: f64 = first.iter().sum();
        let inv = 1.0 / c0;
        first.iter_mut().for_each(|v| *v *= inv);
        s.scale[0] = c0;
        let mut log_z = c0.ln() + s.emit_off[l0];
        for t in 1..t_len {
            let lid = lines[t] as usize;
            let p = shard.line_pair[lid];
            let (edge, edge_off) = if p == NO_PAIR_LINE {
                (&s.trans_exp[..], trans_off)
            } else {
                (
                    &s.pair_exp[p as usize * nn..(p as usize + 1) * nn],
                    s.pair_off[p as usize],
                )
            };
            let (prev_rows, cur_rows) = s.alpha.split_at_mut(t * n);
            let prev = &prev_rows[(t - 1) * n..];
            let cur = &mut cur_rows[..n];
            s.tmp.iter_mut().for_each(|v| *v = 0.0);
            for (i, &ai) in prev.iter().enumerate() {
                let row = &edge[i * n..(i + 1) * n];
                for (acc, &e) in s.tmp.iter_mut().zip(row) {
                    *acc += ai * e;
                }
            }
            let emit = &s.emit_exp[lid * n..(lid + 1) * n];
            let mut c = 0.0;
            for ((dst, &m), &e) in cur.iter_mut().zip(&s.tmp).zip(emit) {
                let v = m * e;
                *dst = v;
                c += v;
            }
            let inv = 1.0 / c;
            cur.iter_mut().for_each(|v| *v *= inv);
            s.scale[t] = c;
            log_z += c.ln() + edge_off + s.emit_off[lid];
        }

        // Gold-path score straight off the log-domain potentials.
        let mut path = 0.0;
        for (t, &gold) in labels.iter().enumerate() {
            let lid = lines[t] as usize;
            let gold = gold as usize;
            path += s.emit_pot[lid * n + gold];
            if t > 0 {
                let prev = labels[t - 1] as usize;
                let p = shard.line_pair[lid];
                path += if p == NO_PAIR_LINE {
                    base_trans[prev * n + gold]
                } else {
                    s.pair_pot[p as usize * nn + prev * n + gold]
                };
            }
        }
        ll += path - log_z;

        if want_grad {
            // Fused scaled backward + marginals: β̂ shares the forward
            // normalizers, so `nm = â∘β̂` and the edge marginal of step
            // t+1 falls out of the same products that build β̂_t.
            s.beta.clear();
            s.beta.resize(t_len * n, 1.0);
            s.nm.clear();
            s.nm.resize(t_len * n, 0.0);
            s.em.clear();
            s.em.resize(t_len.saturating_sub(1) * nn, 0.0);
            s.nm[(t_len - 1) * n..].copy_from_slice(&s.alpha[(t_len - 1) * n..]);
            for t in (0..t_len - 1).rev() {
                let step = t + 1;
                let lid = lines[step] as usize;
                let p = shard.line_pair[lid];
                let edge = if p == NO_PAIR_LINE {
                    &s.trans_exp[..]
                } else {
                    &s.pair_exp[p as usize * nn..(p as usize + 1) * nn]
                };
                let emit = &s.emit_exp[lid * n..(lid + 1) * n];
                let inv_c = 1.0 / s.scale[step];
                let (beta_head, beta_tail) = s.beta.split_at_mut(step * n);
                let beta_next = &beta_tail[..n];
                let beta_cur = &mut beta_head[t * n..];
                for ((dst, &e), &b) in s.tmp.iter_mut().zip(emit).zip(beta_next) {
                    *dst = e * b * inv_c;
                }
                let em_block = &mut s.em[t * nn..(t + 1) * nn];
                for (i, bi) in beta_cur.iter_mut().enumerate() {
                    let row = &edge[i * n..(i + 1) * n];
                    let ai = s.alpha[t * n + i];
                    let em_row = &mut em_block[i * n..(i + 1) * n];
                    let mut sum = 0.0;
                    for ((dst, &e), &m) in em_row.iter_mut().zip(&s.tmp).zip(row) {
                        let contrib = m * e;
                        *dst = ai * contrib;
                        sum += contrib;
                    }
                    *bi = sum;
                }
                for ((dst, &a), &b) in s.nm[t * n..(t + 1) * n]
                    .iter_mut()
                    .zip(&s.alpha[t * n..(t + 1) * n])
                    .zip(&*beta_cur)
                {
                    *dst = a * b;
                }
            }
            for (t, &lid) in lines.iter().enumerate() {
                let acc = &mut s.line_node_sum[lid as usize * n..(lid as usize + 1) * n];
                kernels::add_assign_f64(kernel, acc, &s.nm[t * n..(t + 1) * n]);
            }
            for (t, &lid) in lines.iter().enumerate().skip(1) {
                let block = &s.em[(t - 1) * nn..t * nn];
                kernels::add_assign_f64(kernel, &mut s.trans_sum, block);
                let p = shard.line_pair[lid as usize];
                if p != NO_PAIR_LINE {
                    let acc = &mut s.line_edge_sum[p as usize * nn..(p as usize + 1) * nn];
                    kernels::add_assign_f64(kernel, acc, block);
                }
            }
        }
    }

    // Phase 3: scatter the per-line expectation sums into the dense
    // gradient — once per unique line, not once per occurrence.
    if let Some(grad) = grad {
        grad.fill(0.0);
        kernels::add_assign_f64(kernel, &mut grad[..nn], &s.trans_sum);
        for line in 0..u {
            let node = &s.line_node_sum[line * n..(line + 1) * n];
            for &f in shard.feats(line) {
                let base = crf.emit_index(f, 0);
                kernels::add_assign_f64(kernel, &mut grad[base..base + n], node);
            }
            let p = shard.line_pair[line];
            if p != NO_PAIR_LINE {
                let edge = &s.line_edge_sum[p as usize * nn..(p as usize + 1) * nn];
                for &f in shard.feats(line) {
                    if let Some(pbase) = crf.pair_index(f, 0, 0) {
                        kernels::add_assign_f64(kernel, &mut grad[pbase..pbase + nn], edge);
                    }
                }
            }
        }
    }
    ll
}

/// Sparse observed ("empirical") feature counts of a training set — the
/// constant half of the gradient, accumulated once.
fn observed_counts(crf: &Crf, data: &[Instance]) -> Vec<(usize, f64)> {
    let mut counts: HashMap<usize, f64> = HashMap::new();
    for inst in data {
        for (t, feats) in inst.seq.obs.iter().enumerate() {
            let gold = inst.labels[t];
            for &f in feats {
                *counts.entry(crf.emit_index(f, gold)).or_insert(0.0) += 1.0;
            }
            if t > 0 {
                let prev_gold = inst.labels[t - 1];
                *counts
                    .entry(crf.trans_index(prev_gold, gold))
                    .or_insert(0.0) += 1.0;
                for &f in feats {
                    if let Some(idx) = crf.pair_index(f, prev_gold, gold) {
                        *counts.entry(idx).or_insert(0.0) += 1.0;
                    }
                }
            }
        }
    }
    let mut out: Vec<(usize, f64)> = counts.into_iter().collect();
    out.sort_unstable_by_key(|&(idx, _)| idx);
    out
}

/// State shared between the engine and its persistent workers.
struct EngineShared {
    /// Model layout (weights unused — workers read `weights`).
    layout: Crf,
    /// Current iterate, installed in place once per evaluation.
    weights: RwLock<Vec<f64>>,
}

#[derive(Debug)]
enum Job {
    /// Evaluate the shard: log-likelihood plus expected counts into the
    /// carried gradient buffer (returned with the reply).
    Eval { grad: Vec<f64> },
    /// Log-likelihood only.
    MeanLl,
}

struct Reply {
    worker: usize,
    ll: f64,
    grad: Option<Vec<f64>>,
}

/// Persistent parallel evaluator of the CRF training objective.
///
/// Construct once per training run; each [`TrainEngine::eval`] then costs
/// zero steady-state allocations. See the module docs for the design.
pub struct TrainEngine {
    crf: Crf,
    l2: f64,
    threads: usize,
    kernel: KernelLevel,
    num_records: usize,
    observed: Vec<(usize, f64)>,
    /// Inline path (threads == 1): shard + scratch evaluated on the
    /// calling thread, no synchronization at all.
    local: Option<(Shard, Box<TrainScratch>, Vec<f64>)>,
    /// Worker path (threads > 1).
    shared: Option<Arc<EngineShared>>,
    job_txs: Vec<crossbeam::channel::Sender<Job>>,
    reply_rx: Option<crossbeam::channel::Receiver<Reply>>,
    handles: Vec<JoinHandle<()>>,
    /// Per-worker gradient buffers, round-tripped through `Job::Eval`.
    grad_bufs: Vec<Vec<f64>>,
}

impl TrainEngine {
    /// Compile `data` and spin up the worker pool.
    ///
    /// * `crf` — defines the model structure; its current weights are
    ///   irrelevant because [`TrainEngine::eval`] overwrites them.
    /// * `l2` — L2 regularization strength λ (≥ 0).
    /// * `threads` — worker count; `0` means use available parallelism.
    ///   Capped at the record count; with one worker everything runs on
    ///   the calling thread and no threads are spawned.
    ///
    /// Accumulation loops run on the process-wide
    /// [`KernelLevel::active`] SIMD level.
    pub fn new(crf: Crf, data: &[Instance], l2: f64, threads: usize) -> Self {
        Self::with_kernel(crf, data, l2, threads, KernelLevel::active())
    }

    /// [`TrainEngine::new`] with an explicit kernel level — the
    /// differential-testing/bench hook (levels are bit-exact, so this
    /// never changes results, only speed). Unsupported levels degrade to
    /// scalar.
    pub fn with_kernel(
        crf: Crf,
        data: &[Instance],
        l2: f64,
        threads: usize,
        kernel: KernelLevel,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let threads = threads.min(data.len()).max(1);
        let observed = observed_counts(&crf, data);
        let dim = crf.dim();

        let mut engine = TrainEngine {
            crf,
            l2,
            threads,
            kernel,
            num_records: data.len(),
            observed,
            local: None,
            shared: None,
            job_txs: Vec::new(),
            reply_rx: None,
            handles: Vec::new(),
            grad_bufs: Vec::new(),
        };

        if threads <= 1 {
            let shard = Shard::compile(&engine.crf, data);
            engine.local = Some((shard, Box::default(), vec![0.0; dim]));
            return engine;
        }

        let shared = Arc::new(EngineShared {
            layout: {
                // Workers only need the layout; don't ship a second
                // dim-sized weight vector per worker.
                let mut layout = engine.crf.clone();
                layout.weights_mut().iter_mut().for_each(|w| *w = 0.0);
                layout
            },
            weights: RwLock::new(vec![0.0; dim]),
        });
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded::<Reply>();
        let chunk_size = data.len().div_ceil(threads);
        for (worker, chunk) in data.chunks(chunk_size).enumerate() {
            let shard = Shard::compile(&engine.crf, chunk);
            let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
            let shared = Arc::clone(&shared);
            let reply_tx = reply_tx.clone();
            engine.handles.push(std::thread::spawn(move || {
                let mut scratch = TrainScratch::default();
                while let Ok(job) = job_rx.recv() {
                    let reply = match job {
                        Job::Eval { mut grad } => {
                            let w = shared.weights.read();
                            let ll = eval_shard(
                                &shared.layout,
                                &w,
                                &shard,
                                &mut scratch,
                                Some(&mut grad),
                                kernel,
                            );
                            Reply {
                                worker,
                                ll,
                                grad: Some(grad),
                            }
                        }
                        Job::MeanLl => {
                            let w = shared.weights.read();
                            let ll =
                                eval_shard(&shared.layout, &w, &shard, &mut scratch, None, kernel);
                            Reply {
                                worker,
                                ll,
                                grad: None,
                            }
                        }
                    };
                    if reply_tx.send(reply).is_err() {
                        break;
                    }
                }
            }));
            engine.job_txs.push(job_tx);
            engine.grad_bufs.push(vec![0.0; dim]);
        }
        engine.shared = Some(shared);
        engine.reply_rx = Some(reply_rx);
        engine
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.crf.dim()
    }

    /// Number of training records (including empty ones).
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The SIMD kernel level the accumulation loops run on.
    pub fn kernel_level(&self) -> KernelLevel {
        self.kernel
    }

    /// The model structure (with whatever weights were last evaluated).
    pub fn crf(&self) -> &Crf {
        &self.crf
    }

    /// Shut the pool down, returning the CRF with weights `w` installed
    /// (no allocation — `w` is copied into the existing storage).
    pub fn take_crf(mut self, w: &[f64]) -> Crf {
        self.crf.copy_weights_from(w);
        std::mem::replace(&mut self.crf, Crf::new(1, 0, &[]))
    }

    /// Install `w` for the workers (and the master copy behind
    /// [`TrainEngine::crf`]) without allocating.
    fn install_weights(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.dim(), "weight dimension mismatch");
        self.crf.copy_weights_from(w);
        if let Some(shared) = &self.shared {
            shared.weights.write().copy_from_slice(w);
        }
    }

    /// Evaluate the regularized mean-NLL objective at `w`, writing
    /// `∇f(w)` into `grad`.
    ///
    /// # Panics
    /// Panics if `w.len()` or `grad.len()` differ from
    /// [`TrainEngine::dim`].
    pub fn eval(&mut self, w: &[f64], grad: &mut [f64]) -> f64 {
        assert_eq!(grad.len(), self.dim(), "gradient dimension mismatch");
        self.install_weights(w);
        let r = self.num_records.max(1) as f64;
        let mut total_ll = 0.0;

        if let Some((shard, scratch, local_grad)) = &mut self.local {
            total_ll = eval_shard(&self.crf, w, shard, scratch, Some(local_grad), self.kernel);
            grad.copy_from_slice(local_grad);
        } else {
            let k = self.job_txs.len();
            for worker in 0..k {
                let buf = std::mem::take(&mut self.grad_bufs[worker]);
                self.job_txs[worker]
                    .send(Job::Eval { grad: buf })
                    .expect("train worker hung up");
            }
            let mut lls = vec![0.0; k];
            let rx = self.reply_rx.as_ref().expect("worker pool missing");
            for _ in 0..k {
                let reply = rx.recv().expect("train worker hung up");
                lls[reply.worker] = reply.ll;
                if let Some(g) = reply.grad {
                    self.grad_bufs[reply.worker] = g;
                }
            }
            grad.fill(0.0);
            for worker in 0..k {
                total_ll += lls[worker];
                kernels::add_assign_f64(self.kernel, grad, &self.grad_bufs[worker]);
            }
        }

        // Analytic observed-count subtraction (sparse, precomputed).
        for &(idx, c) in &self.observed {
            grad[idx] -= c;
        }
        // Scale to mean NLL and add the L2 term.
        kernels::finish_grad_f64(self.kernel, grad, w, r, self.l2);
        -total_ll / r + 0.5 * self.l2 * w.iter().map(|x| x * x).sum::<f64>()
    }

    /// Mean (unregularized) log-likelihood of the data at `w`, without a
    /// gradient — parallel over the same shards and scratches.
    pub fn mean_log_likelihood(&mut self, w: &[f64]) -> f64 {
        self.install_weights(w);
        let r = self.num_records.max(1) as f64;
        let mut total_ll = 0.0;
        if let Some((shard, scratch, _)) = &mut self.local {
            total_ll = eval_shard(&self.crf, w, shard, scratch, None, self.kernel);
        } else {
            let k = self.job_txs.len();
            for tx in &self.job_txs {
                tx.send(Job::MeanLl).expect("train worker hung up");
            }
            let mut lls = vec![0.0; k];
            let rx = self.reply_rx.as_ref().expect("worker pool missing");
            for _ in 0..k {
                let reply = rx.recv().expect("train worker hung up");
                lls[reply.worker] = reply.ll;
            }
            for ll in lls {
                total_ll += ll;
            }
        }
        total_ll / r
    }
}

impl Drop for TrainEngine {
    fn drop(&mut self) {
        // Dropping the senders disconnects the job channels; workers
        // fall out of their recv loops.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TrainEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainEngine")
            .field("dim", &self.dim())
            .field("num_records", &self.num_records)
            .field("threads", &self.threads)
            .field("observed_nnz", &self.observed.len())
            .finish()
    }
}
