//! The training engine: scratch-pooled, dedup-aware objective evaluation.
//!
//! [`crate::objective::NaiveObjective`] recomputes everything from first
//! principles each L-BFGS evaluation: it clones the full weight vector,
//! re-allocates a score table and forward/backward/marginal lattices per
//! record, re-derives the observed ("empirical") feature counts that are
//! constant across iterations, and re-spawns scoped worker threads per
//! call. [`TrainEngine`] removes all of that from the steady state:
//!
//! 1. **Compiled corpus.** At construction the training set is compiled
//!    into per-worker shards. WHOIS lines repeat heavily across records
//!    (boilerplate, shared registrar templates), so each shard *interns*
//!    its unique observation feature-sets once; records become sequences
//!    of line ids.
//! 2. **Per-iteration potentials.** Each iteration computes emission (and,
//!    for pair-eligible lines, edge) potentials once **per unique line**
//!    and gathers them into each record's score table — `O(U·F̄·n)` feature
//!    work instead of `O(T_total·F̄·n)`.
//! 3. **Precomputed observed counts.** The observed feature counts of the
//!    gradient (`expected − observed`) are accumulated once at
//!    construction as a sparse vector and subtracted analytically after
//!    the expectation pass, so per-iteration work is expectations only.
//!    Expectations are themselves accumulated per unique line and
//!    scattered into the dense gradient once per evaluation.
//! 4. **Pooled scratch, persistent workers.** Every buffer (score table,
//!    α/β lattices, node/edge marginals, per-line accumulators, the local
//!    gradient) lives in a per-worker [`TrainScratch`] retained across
//!    iterations, and the workers themselves are long-lived threads fed
//!    through channels — no `Vec<f64>` clone of the ~1M-dim weight vector
//!    and no thread spawn per evaluation.
//!
//! Results match the naive objective to floating-point reassociation
//! (≤ 1e-9 in practice; see `tests/engine_equivalence.rs`), and repeated
//! evaluations at the same point are bit-identical: shard partition,
//! in-shard record order, and the worker-id merge order are all fixed.

use crate::inference::{backward_into, edge_marginals_into, forward_into, node_marginals_into};
use crate::model::{Crf, ScoreTable};
use crate::sequence::Instance;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Sentinel for "line has no pair-eligible features" in a shard's
/// `line_pair` map.
const NO_PAIR_LINE: u32 = u32::MAX;

/// One worker's compiled slice of the corpus: interned unique lines plus
/// records re-encoded as line-id sequences.
#[derive(Clone, Debug, Default)]
struct Shard {
    /// Concatenated feature ids of the unique lines.
    line_feats: Vec<u32>,
    /// `U + 1` offsets into `line_feats`.
    line_offsets: Vec<u32>,
    /// Per unique line: compact pair-line index, or [`NO_PAIR_LINE`] when
    /// no feature of the line is pair-eligible.
    line_pair: Vec<u32>,
    /// Number of pair-eligible unique lines.
    num_pair_lines: usize,
    /// Concatenated line ids of the records.
    rec_lines: Vec<u32>,
    /// Concatenated gold labels (aligned with `rec_lines`).
    rec_labels: Vec<u32>,
    /// `R + 1` offsets into `rec_lines` / `rec_labels`.
    rec_offsets: Vec<u32>,
}

impl Shard {
    /// Compile `insts` against the layout of `crf`, interning unique
    /// lines in first-seen order (deterministic).
    ///
    /// # Panics
    /// Panics if an instance contains a feature id `>= F` — the same
    /// records would panic later inside the naive objective's
    /// `score_table`; compilation just surfaces it eagerly.
    fn compile(crf: &Crf, insts: &[Instance]) -> Shard {
        let mut shard = Shard::default();
        shard.line_offsets.push(0);
        shard.rec_offsets.push(0);
        let mut interner: HashMap<&[u32], u32> = HashMap::new();
        for inst in insts {
            for (feats, &gold) in inst.seq.obs.iter().zip(&inst.labels) {
                let next_id = shard.line_offsets.len() as u32 - 1;
                let line_id = *interner.entry(feats).or_insert_with(|| {
                    for &f in feats {
                        assert!(
                            (f as usize) < crf.num_obs_features(),
                            "feature id {f} out of range (F = {})",
                            crf.num_obs_features()
                        );
                    }
                    shard.line_feats.extend_from_slice(feats);
                    shard.line_offsets.push(shard.line_feats.len() as u32);
                    let pair = if feats.iter().any(|&f| crf.is_pair_eligible(f)) {
                        shard.num_pair_lines += 1;
                        shard.num_pair_lines as u32 - 1
                    } else {
                        NO_PAIR_LINE
                    };
                    shard.line_pair.push(pair);
                    next_id
                });
                shard.rec_lines.push(line_id);
                shard.rec_labels.push(gold as u32);
            }
            shard.rec_offsets.push(shard.rec_lines.len() as u32);
        }
        shard
    }

    /// Number of unique lines `U`.
    fn num_lines(&self) -> usize {
        self.line_offsets.len() - 1
    }

    /// Number of records.
    fn num_records(&self) -> usize {
        self.rec_offsets.len() - 1
    }

    /// Feature ids of unique line `u`.
    #[inline]
    fn feats(&self, u: usize) -> &[u32] {
        &self.line_feats[self.line_offsets[u] as usize..self.line_offsets[u + 1] as usize]
    }

    /// `(line ids, gold labels)` of record `r`.
    #[inline]
    fn record(&self, r: usize) -> (&[u32], &[u32]) {
        let range = self.rec_offsets[r] as usize..self.rec_offsets[r + 1] as usize;
        (&self.rec_lines[range.clone()], &self.rec_labels[range])
    }
}

/// Reusable buffers for one training worker, retained at high-water
/// capacity across optimizer iterations.
#[derive(Clone, Debug, Default)]
pub struct TrainScratch {
    /// Per-unique-line emission potentials, `U × n`.
    emit_pot: Vec<f64>,
    /// Per-pair-line edge potentials (base transitions + pair weights),
    /// `U_pair × n × n`.
    pair_pot: Vec<f64>,
    /// Gathered potentials of the record being processed.
    table: ScoreTable,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    /// Node marginals of the current record.
    nm: Vec<f64>,
    /// Edge marginals of the current record.
    em: Vec<f64>,
    tmp: Vec<f64>,
    /// Expected emission counts per unique line, `U × n`.
    line_node_sum: Vec<f64>,
    /// Expected edge counts per pair line, `U_pair × n × n`.
    line_edge_sum: Vec<f64>,
    /// Expected transition counts, `n × n`.
    trans_sum: Vec<f64>,
}

/// Compute per-unique-line potentials and sweep the shard's records,
/// accumulating `Σ ll_r` (returned) and, when `grad` is given, the
/// **expected** feature counts of the summed negative log-likelihood into
/// it (the observed part is handled sparsely by the caller).
fn eval_shard(
    crf: &Crf,
    w: &[f64],
    shard: &Shard,
    s: &mut TrainScratch,
    grad: Option<&mut [f64]>,
) -> f64 {
    let n = crf.num_states();
    let nn = n * n;
    let u = shard.num_lines();
    let base_trans = &w[..nn];

    // Phase 1: per-unique-line potentials (the dedup win — each repeated
    // line's feature weights are summed once per iteration).
    s.emit_pot.clear();
    s.emit_pot.resize(u * n, 0.0);
    s.pair_pot.clear();
    s.pair_pot.resize(shard.num_pair_lines * nn, 0.0);
    for line in 0..u {
        let feats = shard.feats(line);
        let row = &mut s.emit_pot[line * n..(line + 1) * n];
        for &f in feats {
            let base = crf.emit_index(f, 0);
            for (rj, wj) in row.iter_mut().zip(&w[base..base + n]) {
                *rj += *wj;
            }
        }
        let p = shard.line_pair[line];
        if p != NO_PAIR_LINE {
            let block = &mut s.pair_pot[p as usize * nn..(p as usize + 1) * nn];
            block.copy_from_slice(base_trans);
            for &f in feats {
                if let Some(pbase) = crf.pair_index(f, 0, 0) {
                    for (e, pw) in block.iter_mut().zip(&w[pbase..pbase + nn]) {
                        *e += *pw;
                    }
                }
            }
        }
    }

    let want_grad = grad.is_some();
    if want_grad {
        s.line_node_sum.clear();
        s.line_node_sum.resize(u * n, 0.0);
        s.line_edge_sum.clear();
        s.line_edge_sum.resize(shard.num_pair_lines * nn, 0.0);
        s.trans_sum.clear();
        s.trans_sum.resize(nn, 0.0);
    }

    // Phase 2: per-record DP over gathered potentials.
    let mut ll = 0.0;
    for r in 0..shard.num_records() {
        let (lines, labels) = shard.record(r);
        let t_len = lines.len();
        if t_len == 0 {
            continue;
        }
        s.table.n = n;
        s.table.len = t_len;
        s.table.emit.clear();
        s.table.emit.reserve(t_len * n);
        for &lid in lines {
            let lid = lid as usize;
            s.table
                .emit
                .extend_from_slice(&s.emit_pot[lid * n..(lid + 1) * n]);
        }
        s.table.trans.clear();
        if t_len > 1 {
            s.table.trans.reserve((t_len - 1) * nn);
            for &lid in &lines[1..] {
                let p = shard.line_pair[lid as usize];
                if p == NO_PAIR_LINE {
                    s.table.trans.extend_from_slice(base_trans);
                } else {
                    s.table
                        .trans
                        .extend_from_slice(&s.pair_pot[p as usize * nn..(p as usize + 1) * nn]);
                }
            }
        }

        let log_z = forward_into(&s.table, &mut s.alpha, &mut s.tmp);
        // Gold-path score straight off the gathered potentials.
        let mut path = 0.0;
        for (t, &gold) in labels.iter().enumerate() {
            let gold = gold as usize;
            path += s.table.emit_at(t)[gold];
            if t > 0 {
                path += s.table.trans_at(t)[labels[t - 1] as usize * n + gold];
            }
        }
        ll += path - log_z;

        if want_grad {
            backward_into(&s.table, &mut s.beta, &mut s.tmp);
            node_marginals_into(&s.table, &s.alpha, log_z, &s.beta, &mut s.nm);
            edge_marginals_into(&s.table, &s.alpha, log_z, &s.beta, &mut s.em);
            for (t, &lid) in lines.iter().enumerate() {
                let acc = &mut s.line_node_sum[lid as usize * n..(lid as usize + 1) * n];
                for (a, m) in acc.iter_mut().zip(&s.nm[t * n..(t + 1) * n]) {
                    *a += *m;
                }
            }
            for (t, &lid) in lines.iter().enumerate().skip(1) {
                let block = &s.em[(t - 1) * nn..t * nn];
                for (a, e) in s.trans_sum.iter_mut().zip(block) {
                    *a += *e;
                }
                let p = shard.line_pair[lid as usize];
                if p != NO_PAIR_LINE {
                    let acc = &mut s.line_edge_sum[p as usize * nn..(p as usize + 1) * nn];
                    for (a, e) in acc.iter_mut().zip(block) {
                        *a += *e;
                    }
                }
            }
        }
    }

    // Phase 3: scatter the per-line expectation sums into the dense
    // gradient — once per unique line, not once per occurrence.
    if let Some(grad) = grad {
        grad.fill(0.0);
        for (g, a) in grad[..nn].iter_mut().zip(&s.trans_sum) {
            *g += *a;
        }
        for line in 0..u {
            let node = &s.line_node_sum[line * n..(line + 1) * n];
            for &f in shard.feats(line) {
                let base = crf.emit_index(f, 0);
                for (g, a) in grad[base..base + n].iter_mut().zip(node) {
                    *g += *a;
                }
            }
            let p = shard.line_pair[line];
            if p != NO_PAIR_LINE {
                let edge = &s.line_edge_sum[p as usize * nn..(p as usize + 1) * nn];
                for &f in shard.feats(line) {
                    if let Some(pbase) = crf.pair_index(f, 0, 0) {
                        for (g, a) in grad[pbase..pbase + nn].iter_mut().zip(edge) {
                            *g += *a;
                        }
                    }
                }
            }
        }
    }
    ll
}

/// Sparse observed ("empirical") feature counts of a training set — the
/// constant half of the gradient, accumulated once.
fn observed_counts(crf: &Crf, data: &[Instance]) -> Vec<(usize, f64)> {
    let mut counts: HashMap<usize, f64> = HashMap::new();
    for inst in data {
        for (t, feats) in inst.seq.obs.iter().enumerate() {
            let gold = inst.labels[t];
            for &f in feats {
                *counts.entry(crf.emit_index(f, gold)).or_insert(0.0) += 1.0;
            }
            if t > 0 {
                let prev_gold = inst.labels[t - 1];
                *counts
                    .entry(crf.trans_index(prev_gold, gold))
                    .or_insert(0.0) += 1.0;
                for &f in feats {
                    if let Some(idx) = crf.pair_index(f, prev_gold, gold) {
                        *counts.entry(idx).or_insert(0.0) += 1.0;
                    }
                }
            }
        }
    }
    let mut out: Vec<(usize, f64)> = counts.into_iter().collect();
    out.sort_unstable_by_key(|&(idx, _)| idx);
    out
}

/// State shared between the engine and its persistent workers.
struct EngineShared {
    /// Model layout (weights unused — workers read `weights`).
    layout: Crf,
    /// Current iterate, installed in place once per evaluation.
    weights: RwLock<Vec<f64>>,
}

#[derive(Debug)]
enum Job {
    /// Evaluate the shard: log-likelihood plus expected counts into the
    /// carried gradient buffer (returned with the reply).
    Eval { grad: Vec<f64> },
    /// Log-likelihood only.
    MeanLl,
}

struct Reply {
    worker: usize,
    ll: f64,
    grad: Option<Vec<f64>>,
}

/// Persistent parallel evaluator of the CRF training objective.
///
/// Construct once per training run; each [`TrainEngine::eval`] then costs
/// zero steady-state allocations. See the module docs for the design.
pub struct TrainEngine {
    crf: Crf,
    l2: f64,
    threads: usize,
    num_records: usize,
    observed: Vec<(usize, f64)>,
    /// Inline path (threads == 1): shard + scratch evaluated on the
    /// calling thread, no synchronization at all.
    local: Option<(Shard, Box<TrainScratch>, Vec<f64>)>,
    /// Worker path (threads > 1).
    shared: Option<Arc<EngineShared>>,
    job_txs: Vec<crossbeam::channel::Sender<Job>>,
    reply_rx: Option<crossbeam::channel::Receiver<Reply>>,
    handles: Vec<JoinHandle<()>>,
    /// Per-worker gradient buffers, round-tripped through `Job::Eval`.
    grad_bufs: Vec<Vec<f64>>,
}

impl TrainEngine {
    /// Compile `data` and spin up the worker pool.
    ///
    /// * `crf` — defines the model structure; its current weights are
    ///   irrelevant because [`TrainEngine::eval`] overwrites them.
    /// * `l2` — L2 regularization strength λ (≥ 0).
    /// * `threads` — worker count; `0` means use available parallelism.
    ///   Capped at the record count; with one worker everything runs on
    ///   the calling thread and no threads are spawned.
    pub fn new(crf: Crf, data: &[Instance], l2: f64, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let threads = threads.min(data.len()).max(1);
        let observed = observed_counts(&crf, data);
        let dim = crf.dim();

        let mut engine = TrainEngine {
            crf,
            l2,
            threads,
            num_records: data.len(),
            observed,
            local: None,
            shared: None,
            job_txs: Vec::new(),
            reply_rx: None,
            handles: Vec::new(),
            grad_bufs: Vec::new(),
        };

        if threads <= 1 {
            let shard = Shard::compile(&engine.crf, data);
            engine.local = Some((shard, Box::default(), vec![0.0; dim]));
            return engine;
        }

        let shared = Arc::new(EngineShared {
            layout: {
                // Workers only need the layout; don't ship a second
                // dim-sized weight vector per worker.
                let mut layout = engine.crf.clone();
                layout.weights_mut().iter_mut().for_each(|w| *w = 0.0);
                layout
            },
            weights: RwLock::new(vec![0.0; dim]),
        });
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded::<Reply>();
        let chunk_size = data.len().div_ceil(threads);
        for (worker, chunk) in data.chunks(chunk_size).enumerate() {
            let shard = Shard::compile(&engine.crf, chunk);
            let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job>();
            let shared = Arc::clone(&shared);
            let reply_tx = reply_tx.clone();
            engine.handles.push(std::thread::spawn(move || {
                let mut scratch = TrainScratch::default();
                while let Ok(job) = job_rx.recv() {
                    let reply = match job {
                        Job::Eval { mut grad } => {
                            let w = shared.weights.read();
                            let ll = eval_shard(
                                &shared.layout,
                                &w,
                                &shard,
                                &mut scratch,
                                Some(&mut grad),
                            );
                            Reply {
                                worker,
                                ll,
                                grad: Some(grad),
                            }
                        }
                        Job::MeanLl => {
                            let w = shared.weights.read();
                            let ll = eval_shard(&shared.layout, &w, &shard, &mut scratch, None);
                            Reply {
                                worker,
                                ll,
                                grad: None,
                            }
                        }
                    };
                    if reply_tx.send(reply).is_err() {
                        break;
                    }
                }
            }));
            engine.job_txs.push(job_tx);
            engine.grad_bufs.push(vec![0.0; dim]);
        }
        engine.shared = Some(shared);
        engine.reply_rx = Some(reply_rx);
        engine
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.crf.dim()
    }

    /// Number of training records (including empty ones).
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The model structure (with whatever weights were last evaluated).
    pub fn crf(&self) -> &Crf {
        &self.crf
    }

    /// Shut the pool down, returning the CRF with weights `w` installed
    /// (no allocation — `w` is copied into the existing storage).
    pub fn take_crf(mut self, w: &[f64]) -> Crf {
        self.crf.copy_weights_from(w);
        std::mem::replace(&mut self.crf, Crf::new(1, 0, &[]))
    }

    /// Install `w` for the workers (and the master copy behind
    /// [`TrainEngine::crf`]) without allocating.
    fn install_weights(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.dim(), "weight dimension mismatch");
        self.crf.copy_weights_from(w);
        if let Some(shared) = &self.shared {
            shared.weights.write().copy_from_slice(w);
        }
    }

    /// Evaluate the regularized mean-NLL objective at `w`, writing
    /// `∇f(w)` into `grad`.
    ///
    /// # Panics
    /// Panics if `w.len()` or `grad.len()` differ from
    /// [`TrainEngine::dim`].
    pub fn eval(&mut self, w: &[f64], grad: &mut [f64]) -> f64 {
        assert_eq!(grad.len(), self.dim(), "gradient dimension mismatch");
        self.install_weights(w);
        let r = self.num_records.max(1) as f64;
        let mut total_ll = 0.0;

        if let Some((shard, scratch, local_grad)) = &mut self.local {
            total_ll = eval_shard(&self.crf, w, shard, scratch, Some(local_grad));
            grad.copy_from_slice(local_grad);
        } else {
            let k = self.job_txs.len();
            for worker in 0..k {
                let buf = std::mem::take(&mut self.grad_bufs[worker]);
                self.job_txs[worker]
                    .send(Job::Eval { grad: buf })
                    .expect("train worker hung up");
            }
            let mut lls = vec![0.0; k];
            let rx = self.reply_rx.as_ref().expect("worker pool missing");
            for _ in 0..k {
                let reply = rx.recv().expect("train worker hung up");
                lls[reply.worker] = reply.ll;
                if let Some(g) = reply.grad {
                    self.grad_bufs[reply.worker] = g;
                }
            }
            grad.fill(0.0);
            for worker in 0..k {
                total_ll += lls[worker];
                for (g, l) in grad.iter_mut().zip(&self.grad_bufs[worker]) {
                    *g += *l;
                }
            }
        }

        // Analytic observed-count subtraction (sparse, precomputed).
        for &(idx, c) in &self.observed {
            grad[idx] -= c;
        }
        // Scale to mean NLL and add the L2 term.
        for (g, &wi) in grad.iter_mut().zip(w) {
            *g = *g / r + self.l2 * wi;
        }
        -total_ll / r + 0.5 * self.l2 * w.iter().map(|x| x * x).sum::<f64>()
    }

    /// Mean (unregularized) log-likelihood of the data at `w`, without a
    /// gradient — parallel over the same shards and scratches.
    pub fn mean_log_likelihood(&mut self, w: &[f64]) -> f64 {
        self.install_weights(w);
        let r = self.num_records.max(1) as f64;
        let mut total_ll = 0.0;
        if let Some((shard, scratch, _)) = &mut self.local {
            total_ll = eval_shard(&self.crf, w, shard, scratch, None);
        } else {
            let k = self.job_txs.len();
            for tx in &self.job_txs {
                tx.send(Job::MeanLl).expect("train worker hung up");
            }
            let mut lls = vec![0.0; k];
            let rx = self.reply_rx.as_ref().expect("worker pool missing");
            for _ in 0..k {
                let reply = rx.recv().expect("train worker hung up");
                lls[reply.worker] = reply.ll;
            }
            for ll in lls {
                total_ll += ll;
            }
        }
        total_ll / r
    }
}

impl Drop for TrainEngine {
    fn drop(&mut self) {
        // Dropping the senders disconnects the job channels; workers
        // fall out of their recv loops.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TrainEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainEngine")
            .field("dim", &self.dim())
            .field("num_records", &self.num_records)
            .field("threads", &self.threads)
            .field("observed_nnz", &self.observed.len())
            .finish()
    }
}
