//! Reusable inference buffers.
//!
//! Every inference routine in [`crate::inference`] exists in two forms: a
//! convenient allocating form (`forward`, `viterbi`, ...) and an `_into`
//! form writing into caller-owned buffers. [`InferenceScratch`] bundles
//! one of every buffer the full decode pipeline needs — score table,
//! α/β lattices, marginal matrix, Viterbi lattice/backpointers/path, and
//! the shared `n`-sized working row — so a long-lived worker (one per
//! thread in a batch-parsing pool) performs steady-state decoding with
//! zero heap allocation. Buffers grow on demand and are retained at
//! high-water capacity across records.

use crate::inference::{backward_into, forward_into, node_marginals_into, viterbi_into};
use crate::model::{Crf, ScoreTable};
use crate::sequence::Sequence;

/// Reusable buffers for the full decode pipeline of one worker.
#[derive(Clone, Debug, Default)]
pub struct InferenceScratch {
    table: ScoreTable,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    marginals: Vec<f64>,
    viterbi_v: Vec<f64>,
    backpointers: Vec<usize>,
    path: Vec<usize>,
    tmp: Vec<f64>,
}

impl InferenceScratch {
    /// New empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The score table of the most recent decode.
    pub fn table(&self) -> &ScoreTable {
        &self.table
    }

    /// Mutable access to the score table, for callers that assemble the
    /// potentials themselves — e.g. from memoized per-line emission and
    /// edge rows ([`Crf::emission_row_into`] / [`Crf::edge_row_into`])
    /// instead of a full [`Crf::score_table_into`] pass.
    pub fn table_mut(&mut self) -> &mut ScoreTable {
        &mut self.table
    }

    /// Viterbi-decode whatever potentials currently sit in the score
    /// table (see [`table_mut`](Self::table_mut)), reusing this
    /// scratch's buffers.
    ///
    /// Returns the best path (borrowed from the scratch) and its
    /// unnormalized log-score.
    pub fn viterbi_on_table(&mut self) -> (&[usize], f64) {
        let score = viterbi_into(
            &self.table,
            &mut self.path,
            &mut self.viterbi_v,
            &mut self.backpointers,
            &mut self.tmp,
        );
        (&self.path, score)
    }

    /// Viterbi-decode `seq` under `crf`, reusing this scratch's buffers.
    ///
    /// Returns the best path (borrowed from the scratch) and its
    /// unnormalized log-score.
    pub fn viterbi(&mut self, crf: &Crf, seq: &Sequence) -> (&[usize], f64) {
        crf.score_table_into(seq, &mut self.table);
        self.viterbi_on_table()
    }

    /// Viterbi-decode `seq` and compute the posterior node marginals
    /// `Pr(y_t = j | x)` in one pass over a shared score table.
    ///
    /// Returns the best path and the `len × n` marginal matrix, both
    /// borrowed from the scratch.
    pub fn viterbi_with_marginals(&mut self, crf: &Crf, seq: &Sequence) -> (&[usize], &[f64]) {
        crf.score_table_into(seq, &mut self.table);
        viterbi_into(
            &self.table,
            &mut self.path,
            &mut self.viterbi_v,
            &mut self.backpointers,
            &mut self.tmp,
        );
        let log_z = forward_into(&self.table, &mut self.alpha, &mut self.tmp);
        backward_into(&self.table, &mut self.beta, &mut self.tmp);
        node_marginals_into(
            &self.table,
            &self.alpha,
            log_z,
            &self.beta,
            &mut self.marginals,
        );
        (&self.path, &self.marginals)
    }

    /// Posterior node marginals of `seq` (no decoding).
    pub fn node_marginals(&mut self, crf: &Crf, seq: &Sequence) -> &[f64] {
        crf.score_table_into(seq, &mut self.table);
        let log_z = forward_into(&self.table, &mut self.alpha, &mut self.tmp);
        backward_into(&self.table, &mut self.beta, &mut self.tmp);
        node_marginals_into(
            &self.table,
            &self.alpha,
            log_z,
            &self.beta,
            &mut self.marginals,
        );
        &self.marginals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{backward, forward, node_marginals, viterbi};

    fn model(n_states: usize, n_feats: usize) -> Crf {
        let pair: Vec<bool> = (0..n_feats).map(|f| f % 2 == 0).collect();
        let mut m = Crf::new(n_states, n_feats, &pair);
        let dim = m.dim();
        m.set_weights((0..dim).map(|i| ((i as f64) * 0.7).sin()).collect());
        m
    }

    fn sequences() -> Vec<Sequence> {
        vec![
            Sequence::new(vec![vec![0, 2], vec![1], vec![0, 3]]),
            Sequence::new(vec![vec![3]]),
            Sequence::default(),
            Sequence::new(vec![vec![1], vec![2], vec![0, 1, 2, 3], vec![], vec![2]]),
        ]
    }

    #[test]
    fn scratch_viterbi_matches_allocating_path() {
        let m = model(3, 4);
        let mut scratch = InferenceScratch::new();
        // Interleave lengths so buffers must both grow and logically
        // shrink between records.
        for seq in sequences() {
            let table = m.score_table(&seq);
            let (want_path, want_score) = viterbi(&table);
            let (path, score) = scratch.viterbi(&m, &seq);
            assert_eq!(path, want_path.as_slice());
            assert!((score - want_score).abs() < 1e-12);
            assert_eq!(scratch.table(), &table);
        }
    }

    #[test]
    fn scratch_marginals_match_allocating_path() {
        let m = model(4, 4);
        let mut scratch = InferenceScratch::new();
        for seq in sequences() {
            let table = m.score_table(&seq);
            let fwd = forward(&table);
            let beta = backward(&table);
            let want = node_marginals(&table, &fwd, &beta);
            assert_eq!(scratch.node_marginals(&m, &seq), want.as_slice());
            let (path, marg) = scratch.viterbi_with_marginals(&m, &seq);
            assert_eq!(marg, want.as_slice());
            assert_eq!(path, viterbi(&table).0.as_slice());
        }
    }

    #[test]
    fn buffers_do_not_leak_state_across_records() {
        let m = model(3, 4);
        let mut scratch = InferenceScratch::new();
        let long = Sequence::new(vec![vec![0], vec![1], vec![2], vec![3], vec![0, 1]]);
        let short = Sequence::new(vec![vec![2]]);
        scratch.viterbi_with_marginals(&m, &long);
        let (path, marg) = scratch.viterbi_with_marginals(&m, &short);
        assert_eq!(path.len(), 1);
        assert_eq!(marg.len(), m.num_states());
        let table = m.score_table(&short);
        let fwd = forward(&table);
        let beta = backward(&table);
        assert_eq!(marg, node_marginals(&table, &fwd, &beta).as_slice());
    }
}
