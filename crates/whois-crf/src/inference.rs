//! Probabilistic inference by dynamic programming (appendix A of the
//! paper).
//!
//! All routines operate on a pre-computed [`ScoreTable`] and run in
//! `O(n²T)`:
//!
//! * [`forward`] — log-space α recursion; yields `log Z(x)` (eq. 10).
//! * [`backward`] — log-space β recursion.
//! * [`node_marginals`] / [`edge_marginals`] — posterior marginals
//!   `Pr(y_t | x)` and `Pr(y_{t-1}, y_t | x)` (eq. 12), needed for the
//!   gradient.
//! * [`viterbi`] — most likely labeling with backtracking (eqs. 13–17).

use crate::model::ScoreTable;
use crate::numerics::{arg_max, log_sum_exp};

/// Result of the forward pass: the α lattice (log-domain, `len × n`) and
/// `log Z(x)`.
#[derive(Clone, Debug)]
pub struct Forward {
    /// `alpha[t*n + j] = log Σ_{y_1..y_{t-1}} exp(score of prefix ending in j)`.
    pub alpha: Vec<f64>,
    /// The log partition function.
    pub log_z: f64,
}

/// Run the forward recursion.
///
/// For the empty sequence `log_z = 0` (the empty product has probability
/// 1).
pub fn forward(table: &ScoreTable) -> Forward {
    let mut alpha = Vec::new();
    let log_z = forward_into(table, &mut alpha, &mut Vec::new());
    Forward { alpha, log_z }
}

/// Forward recursion into a reused α buffer, returning `log Z(x)`.
///
/// `tmp` is an `n`-sized working row; both buffers are resized on demand
/// so one pair serves sequences of any length.
pub fn forward_into(table: &ScoreTable, alpha: &mut Vec<f64>, tmp: &mut Vec<f64>) -> f64 {
    let n = table.n;
    let t_len = table.len;
    alpha.clear();
    if t_len == 0 {
        return 0.0;
    }
    alpha.resize(t_len * n, 0.0);
    tmp.clear();
    tmp.resize(n, 0.0);
    alpha[..n].copy_from_slice(table.emit_at(0));
    for t in 1..t_len {
        let edge = table.trans_at(t);
        let emit = table.emit_at(t);
        let (prev_rows, cur_rows) = alpha.split_at_mut(t * n);
        let prev = &prev_rows[(t - 1) * n..];
        let cur = &mut cur_rows[..n];
        for j in 0..n {
            for i in 0..n {
                tmp[i] = prev[i] + edge[i * n + j];
            }
            cur[j] = log_sum_exp(tmp) + emit[j];
        }
    }
    log_sum_exp(&alpha[(t_len - 1) * n..])
}

/// Run the backward recursion, returning the β lattice (log-domain,
/// `len × n`), where `beta[t*n + i] = log Σ exp(score of suffix after t
/// given y_t = i)`.
pub fn backward(table: &ScoreTable) -> Vec<f64> {
    let mut beta = Vec::new();
    backward_into(table, &mut beta, &mut Vec::new());
    beta
}

/// Backward recursion into a reused β buffer (`tmp` as in
/// [`forward_into`]).
pub fn backward_into(table: &ScoreTable, beta: &mut Vec<f64>, tmp: &mut Vec<f64>) {
    let n = table.n;
    let t_len = table.len;
    beta.clear();
    if t_len == 0 {
        return;
    }
    // Last row is all zeros (log 1).
    beta.resize(t_len * n, 0.0);
    tmp.clear();
    tmp.resize(n, 0.0);
    for t in (0..t_len - 1).rev() {
        let edge = table.trans_at(t + 1);
        let emit_next = table.emit_at(t + 1);
        for i in 0..n {
            for j in 0..n {
                tmp[j] = edge[i * n + j] + emit_next[j] + beta[(t + 1) * n + j];
            }
            beta[t * n + i] = log_sum_exp(tmp);
        }
    }
}

/// Posterior node marginals `Pr(y_t = j | x)` as a `len × n` matrix.
pub fn node_marginals(table: &ScoreTable, fwd: &Forward, beta: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    node_marginals_into(table, &fwd.alpha, fwd.log_z, beta, &mut out);
    out
}

/// Node marginals into a reused buffer, from pre-computed α/β lattices.
pub fn node_marginals_into(
    table: &ScoreTable,
    alpha: &[f64],
    log_z: f64,
    beta: &[f64],
    out: &mut Vec<f64>,
) {
    let n = table.n;
    out.clear();
    out.resize(table.len * n, 0.0);
    for t in 0..table.len {
        for j in 0..n {
            out[t * n + j] = (alpha[t * n + j] + beta[t * n + j] - log_z).exp();
        }
    }
}

/// Posterior edge marginals `Pr(y_{t-1} = i, y_t = j | x)` as a
/// `(len-1) × n × n` tensor indexed `[(t-1)*n*n + i*n + j]` (eq. 12).
pub fn edge_marginals(table: &ScoreTable, fwd: &Forward, beta: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    edge_marginals_into(table, &fwd.alpha, fwd.log_z, beta, &mut out);
    out
}

/// Edge marginals into a reused buffer, from pre-computed α/β lattices.
/// The buffer ends up empty when `len < 2`.
pub fn edge_marginals_into(
    table: &ScoreTable,
    alpha: &[f64],
    log_z: f64,
    beta: &[f64],
    out: &mut Vec<f64>,
) {
    let n = table.n;
    out.clear();
    if table.len < 2 {
        return;
    }
    out.resize((table.len - 1) * n * n, 0.0);
    for t in 1..table.len {
        let edge = table.trans_at(t);
        let emit = table.emit_at(t);
        let block = &mut out[(t - 1) * n * n..t * n * n];
        for i in 0..n {
            for j in 0..n {
                block[i * n + j] =
                    (alpha[(t - 1) * n + i] + edge[i * n + j] + emit[j] + beta[t * n + j] - log_z)
                        .exp();
            }
        }
    }
}

/// Viterbi decoding: the most likely label sequence and its unnormalized
/// log-score (eqs. 13–17). Returns an empty path for the empty sequence.
pub fn viterbi(table: &ScoreTable) -> (Vec<usize>, f64) {
    let mut path = Vec::new();
    let score = viterbi_into(
        table,
        &mut path,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
    );
    (path, score)
}

/// Viterbi decoding into reused buffers, returning the path's
/// unnormalized log-score. `v` holds the best-prefix lattice, `back` the
/// backpointers, `tmp` an `n`-sized working row; all are grown on
/// demand.
pub fn viterbi_into(
    table: &ScoreTable,
    path: &mut Vec<usize>,
    v: &mut Vec<f64>,
    back: &mut Vec<usize>,
    tmp: &mut Vec<f64>,
) -> f64 {
    let n = table.n;
    let t_len = table.len;
    path.clear();
    if t_len == 0 {
        return 0.0;
    }
    // v[t*n + j] = best prefix score ending in state j at t.
    v.clear();
    v.resize(t_len * n, 0.0);
    back.clear();
    back.resize(t_len * n, 0);
    tmp.clear();
    tmp.resize(n, 0.0);
    v[..n].copy_from_slice(table.emit_at(0));
    for t in 1..t_len {
        let edge = table.trans_at(t);
        let emit = table.emit_at(t);
        for j in 0..n {
            for i in 0..n {
                tmp[i] = v[(t - 1) * n + i] + edge[i * n + j];
            }
            let best = arg_max(tmp);
            back[t * n + j] = best;
            v[t * n + j] = tmp[best] + emit[j];
        }
    }
    let last = &v[(t_len - 1) * n..];
    let mut state = arg_max(last);
    let best_score = last[state];
    path.resize(t_len, 0);
    path[t_len - 1] = state;
    for t in (1..t_len).rev() {
        state = back[t * n + state];
        path[t - 1] = state;
    }
    best_score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Crf;
    use crate::sequence::Sequence;

    /// A small model with pseudo-random but deterministic weights.
    fn model(n_states: usize, n_feats: usize) -> Crf {
        let pair: Vec<bool> = (0..n_feats).map(|f| f % 2 == 0).collect();
        let mut m = Crf::new(n_states, n_feats, &pair);
        let dim = m.dim();
        m.set_weights((0..dim).map(|i| ((i as f64) * 0.7).sin()).collect());
        m
    }

    fn seq3() -> Sequence {
        Sequence::new(vec![vec![0, 2], vec![1], vec![0, 3]])
    }

    #[test]
    fn log_z_matches_brute_force() {
        let m = model(3, 4);
        let seq = seq3();
        let table = m.score_table(&seq);
        let fwd = forward(&table);
        // Enumerate all 27 paths.
        let mut scores = Vec::new();
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    scores.push(m.path_score(&seq, &[a, b, c]));
                }
            }
        }
        let brute = crate::numerics::log_sum_exp(&scores);
        assert!(
            (fwd.log_z - brute).abs() < 1e-9,
            "{} vs {}",
            fwd.log_z,
            brute
        );
    }

    #[test]
    fn backward_gives_same_log_z() {
        let m = model(3, 4);
        let table = m.score_table(&seq3());
        let fwd = forward(&table);
        let beta = backward(&table);
        // log Z = logsumexp_j (emit_0[j] + beta_0[j]).
        let n = table.n;
        let terms: Vec<f64> = (0..n).map(|j| table.emit_at(0)[j] + beta[j]).collect();
        let z2 = crate::numerics::log_sum_exp(&terms);
        assert!((fwd.log_z - z2).abs() < 1e-9);
    }

    #[test]
    fn node_marginals_sum_to_one() {
        let m = model(4, 5);
        let table = m.score_table(&Sequence::new(vec![vec![0], vec![1, 2], vec![3], vec![4]]));
        let fwd = forward(&table);
        let beta = backward(&table);
        let nm = node_marginals(&table, &fwd, &beta);
        for t in 0..table.len {
            let s: f64 = nm[t * 4..(t + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "t={t} sums to {s}");
        }
    }

    #[test]
    fn edge_marginals_are_consistent_with_node_marginals() {
        let m = model(3, 4);
        let table = m.score_table(&seq3());
        let fwd = forward(&table);
        let beta = backward(&table);
        let nm = node_marginals(&table, &fwd, &beta);
        let em = edge_marginals(&table, &fwd, &beta);
        let n = 3;
        for t in 1..table.len {
            for j in 0..n {
                let row_sum: f64 = (0..n).map(|i| em[(t - 1) * n * n + i * n + j]).sum();
                assert!(
                    (row_sum - nm[t * n + j]).abs() < 1e-9,
                    "marginalizing over i must recover node marginal"
                );
            }
            for i in 0..n {
                let col_sum: f64 = (0..n).map(|j| em[(t - 1) * n * n + i * n + j]).sum();
                assert!((col_sum - nm[(t - 1) * n + i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let m = model(3, 4);
        let seq = seq3();
        let table = m.score_table(&seq);
        let (path, score) = viterbi(&table);
        let mut best = f64::NEG_INFINITY;
        let mut best_path = vec![];
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let s = m.path_score(&seq, &[a, b, c]);
                    if s > best {
                        best = s;
                        best_path = vec![a, b, c];
                    }
                }
            }
        }
        assert_eq!(path, best_path);
        assert!((score - best).abs() < 1e-9);
    }

    #[test]
    fn single_position_sequence() {
        let m = model(3, 4);
        let seq = Sequence::new(vec![vec![1, 3]]);
        let table = m.score_table(&seq);
        let fwd = forward(&table);
        let (path, score) = viterbi(&table);
        assert_eq!(path.len(), 1);
        // Highest-emission state wins.
        let e = table.emit_at(0);
        assert_eq!(path[0], crate::numerics::arg_max(e));
        assert!((score - e[path[0]]).abs() < 1e-12);
        // log Z over one position is logsumexp of emissions.
        assert!((fwd.log_z - crate::numerics::log_sum_exp(e)).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_is_benign() {
        let m = model(2, 2);
        let table = m.score_table(&Sequence::default());
        let fwd = forward(&table);
        assert_eq!(fwd.log_z, 0.0);
        assert!(backward(&table).is_empty());
        let (path, score) = viterbi(&table);
        assert!(path.is_empty());
        assert_eq!(score, 0.0);
        assert!(edge_marginals(&table, &fwd, &backward(&table)).is_empty());
    }

    #[test]
    fn zero_weights_give_uniform_marginals() {
        let m = Crf::without_pair_features(4, 3);
        let table = m.score_table(&Sequence::new(vec![vec![0], vec![1], vec![2]]));
        let fwd = forward(&table);
        let beta = backward(&table);
        let nm = node_marginals(&table, &fwd, &beta);
        for &p in &nm {
            assert!((p - 0.25).abs() < 1e-12);
        }
        assert!((fwd.log_z - 3.0 * 4.0_f64.ln()).abs() < 1e-9);
    }
}
