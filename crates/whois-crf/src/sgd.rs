//! Stochastic gradient descent trainer.
//!
//! The paper's authors "implemented [their] own model, with a specialized
//! feature extraction pipeline and optimization routines such as stochastic
//! gradient descent". This SGD exploits the sparsity of per-record
//! gradients: only the features active in the current record (plus the
//! `n²` transition block) are touched, and the L2 penalty is applied with
//! the classic weight-scaling trick so each step costs `O(active)` instead
//! of `O(d)`. The inference buffers (score table, α/β lattices, node/edge
//! marginals) are allocated once per run and reused across every step,
//! and the score table is built **directly from the scaled representation**
//! (`θ = scale · v`, see [`Crf::score_table_with_into`]) so no dense `θ`
//! copy is materialized per step.

use crate::inference::{backward_into, edge_marginals_into, forward_into, node_marginals_into};
use crate::model::{Crf, ScoreTable};
use crate::sequence::Instance;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for [`train_sgd`].
#[derive(Clone, Debug)]
pub struct SgdConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate `η₀`.
    pub eta0: f64,
    /// Learning-rate decay: `η_t = η₀ / (1 + decay · t)` with `t` the
    /// global step count.
    pub decay: f64,
    /// L2 regularization strength λ (per record).
    pub l2: f64,
    /// Seed for the per-epoch shuffle.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            epochs: 10,
            eta0: 0.1,
            decay: 1e-3,
            l2: 1e-4,
            seed: 7,
        }
    }
}

/// Outcome of an SGD run.
#[derive(Clone, Debug)]
pub struct SgdReport {
    /// Epochs completed.
    pub epochs: usize,
    /// Total gradient steps taken.
    pub steps: usize,
    /// Mean per-record negative log-likelihood observed during the final
    /// epoch (an online estimate, measured before each step).
    pub final_mean_nll: f64,
}

/// Train `crf` in place with SGD.
pub fn train_sgd(crf: &mut Crf, data: &[Instance], cfg: &SgdConfig) -> SgdReport {
    let n = crf.num_states();
    // Scale trick: true weights = scale * v.
    let mut scale = 1.0f64;
    let mut v = crf.weights().to_vec();
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);

    // Inference buffers, reused across every gradient step.
    let mut table = ScoreTable::default();
    let mut alpha = Vec::new();
    let mut beta = Vec::new();
    let mut nm = Vec::new();
    let mut em = Vec::new();
    let mut tmp = Vec::new();

    let mut step = 0usize;
    let mut last_epoch_nll_sum = 0.0;
    let mut last_epoch_count = 0usize;

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut nll_sum = 0.0;
        let mut count = 0usize;
        for &idx in &order {
            let inst = &data[idx];
            if inst.is_empty() {
                continue;
            }
            let eta = cfg.eta0 / (1.0 + cfg.decay * step as f64);
            step += 1;

            // Potentials straight from the scaled representation — no
            // dense θ = scale·v copy per step.
            let seq = &inst.seq;
            crf.score_table_with_into(seq, &v, scale, &mut table);
            let log_z = forward_into(&table, &mut alpha, &mut tmp);
            backward_into(&table, &mut beta, &mut tmp);
            node_marginals_into(&table, &alpha, log_z, &beta, &mut nm);
            edge_marginals_into(&table, &alpha, log_z, &beta, &mut em);
            nll_sum += log_z - table.path_score(&inst.labels);
            count += 1;

            // L2 shrink via the scale factor.
            scale *= 1.0 - eta * cfg.l2;
            if scale < 1e-9 {
                for vi in v.iter_mut() {
                    *vi *= scale;
                }
                scale = 1.0;
            }
            let lr = eta / scale;

            // Sparse descent step on (expected − observed) counts.
            for (t, feats) in seq.obs.iter().enumerate() {
                let gold = inst.labels[t];
                for &f in feats {
                    let base = crf.emit_index(f, 0);
                    for j in 0..n {
                        v[base + j] -= lr * nm[t * n + j];
                    }
                    v[base + gold] += lr;
                }
                if t > 0 {
                    let prev_gold = inst.labels[t - 1];
                    let edges = &em[(t - 1) * n * n..t * n * n];
                    for i in 0..n {
                        for j in 0..n {
                            v[crf.trans_index(i, j)] -= lr * edges[i * n + j];
                        }
                    }
                    v[crf.trans_index(prev_gold, gold)] += lr;
                    for &f in feats {
                        if let Some(base) = crf.pair_index(f, 0, 0) {
                            for (vk, &e) in v[base..base + n * n].iter_mut().zip(edges) {
                                *vk -= lr * e;
                            }
                            let pidx = crf.pair_index(f, prev_gold, gold).unwrap();
                            v[pidx] += lr;
                        }
                    }
                }
            }
        }
        if epoch + 1 == cfg.epochs {
            last_epoch_nll_sum = nll_sum;
            last_epoch_count = count;
        }
    }

    // Install final true weights in place (the only O(d) pass per run).
    for (wi, &vi) in crf.weights_mut().iter_mut().zip(&v) {
        *wi = scale * vi;
    }

    SgdReport {
        epochs: cfg.epochs,
        steps: step,
        final_mean_nll: if last_epoch_count == 0 {
            0.0
        } else {
            last_epoch_nll_sum / last_epoch_count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Sequence;

    /// Separable toy task: feature 0 ⇒ state 0, feature 1 ⇒ state 1.
    fn toy_data(copies: usize) -> Vec<Instance> {
        let mut out = Vec::new();
        for _ in 0..copies {
            out.push(Instance::new(
                Sequence::new(vec![vec![0], vec![1], vec![0]]),
                vec![0, 1, 0],
            ));
            out.push(Instance::new(
                Sequence::new(vec![vec![1], vec![1]]),
                vec![1, 1],
            ));
        }
        out
    }

    #[test]
    fn sgd_learns_separable_task() {
        let data = toy_data(20);
        let mut crf = Crf::without_pair_features(2, 2);
        let report = train_sgd(
            &mut crf,
            &data,
            &SgdConfig {
                epochs: 20,
                eta0: 0.5,
                ..Default::default()
            },
        );
        assert!(report.steps > 0);
        assert!(
            report.final_mean_nll < 0.1,
            "should fit the data, got NLL {}",
            report.final_mean_nll
        );
        // Decoding recovers gold labels.
        let seq = Sequence::new(vec![vec![0], vec![1], vec![0]]);
        let (path, _) = crate::inference::viterbi(&crf.score_table(&seq));
        assert_eq!(path, vec![0, 1, 0]);
    }

    #[test]
    fn sgd_decreases_objective() {
        let data = toy_data(10);
        let mut crf = Crf::without_pair_features(2, 2);
        let mut obj = crate::objective::Objective::new(crf.clone(), &data, 0.0, 1);
        let w0 = vec![0.0; crf.dim()];
        let mut g = vec![0.0; crf.dim()];
        let before = obj.eval(&w0, &mut g);
        train_sgd(&mut crf, &data, &SgdConfig::default());
        let after = obj.eval(crf.weights(), &mut g);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn sgd_is_deterministic_for_fixed_seed() {
        let data = toy_data(5);
        let mut a = Crf::without_pair_features(2, 2);
        let mut b = Crf::without_pair_features(2, 2);
        train_sgd(&mut a, &data, &SgdConfig::default());
        train_sgd(&mut b, &data, &SgdConfig::default());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn sgd_with_pair_features_learns_transition_cue() {
        // Feature 0 is ambiguous alone; the pair rule is "feature 1 after
        // state 0 means state 1".
        let data = vec![
            Instance::new(Sequence::new(vec![vec![0], vec![1]]), vec![0, 1]),
            Instance::new(Sequence::new(vec![vec![0], vec![0]]), vec![0, 0]),
        ];
        let mut crf = Crf::new(2, 2, &[false, true]);
        train_sgd(
            &mut crf,
            &data,
            &SgdConfig {
                epochs: 50,
                eta0: 0.5,
                l2: 1e-5,
                ..Default::default()
            },
        );
        let (p1, _) =
            crate::inference::viterbi(&crf.score_table(&Sequence::new(vec![vec![0], vec![1]])));
        assert_eq!(p1, vec![0, 1]);
        let (p2, _) =
            crate::inference::viterbi(&crf.score_table(&Sequence::new(vec![vec![0], vec![0]])));
        assert_eq!(p2, vec![0, 0]);
    }

    #[test]
    fn empty_dataset_is_benign() {
        let mut crf = Crf::without_pair_features(2, 2);
        let report = train_sgd(&mut crf, &[], &SgdConfig::default());
        assert_eq!(report.steps, 0);
        assert_eq!(report.final_mean_nll, 0.0);
    }
}
