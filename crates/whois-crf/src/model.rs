//! The CRF model: parameter layout and score-table construction.
//!
//! The posterior of the paper's CRF (eq. 2) is
//!
//! ```text
//! Pr(y|x) = 1/Z(x) · exp( Σ_t Σ_k θ_k f_k(y_{t-1}, y_t, x_t) )
//! ```
//!
//! with three families of binary features `f_k`:
//!
//! 1. **Transition**: fires when `(y_{t-1}, y_t) = (i, j)` — `n²` features.
//! 2. **Emission** (eq. 6–7): fires when observation feature `f` is active
//!    at `t` and `y_t = j` — `F·n` features.
//! 3. **Pair** (eq. 8): fires when a *pair-eligible* observation feature
//!    `p` is active at `t` and `(y_{t-1}, y_t) = (i, j)` — `P·n²` features.
//!    Pair eligibility is chosen by the caller (the WHOIS parser makes
//!    title words, markers, and classes eligible); restricting the set
//!    keeps the parameter count near the paper's ~1M rather than `F·n²`.
//!
//! All parameters live in one flat `Vec<f64>` so the optimizers can treat
//! the model as a point in `R^d`:
//!
//! ```text
//! [ transition: n²  |  emission: F·n  |  pair: P·n²  ]
//! ```
//!
//! Features that test only `y_t` (families 1–2 at `t = 0` have no
//! `y_{t-1}`) follow the paper's convention: at the first position only
//! emission features apply.

use crate::kernels::{self, KernelLevel};
use crate::sequence::Sequence;
use serde::{Deserialize, Serialize};

/// Sentinel for "not pair-eligible" in the pair map.
const NOT_PAIR: u32 = u32::MAX;

/// A linear-chain CRF with binary indicator features.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Crf {
    num_states: usize,
    num_obs_features: usize,
    /// `pair_map[f]` = compact pair index of observation feature `f`, or
    /// [`NOT_PAIR`].
    pair_map: Vec<u32>,
    num_pair_features: usize,
    /// Flat parameter vector; see module docs for layout.
    weights: Vec<f64>,
}

/// Per-sequence potentials, materialized once per record before inference.
///
/// * `emit[t*n + j]` — sum of emission weights active at `t` for state `j`.
/// * `trans[(t-1)*n*n + i*n + j]` — transition plus pair weights between
///   positions `t-1` and `t` (empty when `len < 2`).
///
/// With these tables every inference routine is a dense `O(n²T)` sweep
/// (appendix A of the paper).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScoreTable {
    /// Number of states `n`.
    pub n: usize,
    /// Sequence length `T`.
    pub len: usize,
    /// Emission potentials, `len * n`.
    pub emit: Vec<f64>,
    /// Edge potentials, `(len-1) * n * n`.
    pub trans: Vec<f64>,
}

impl Crf {
    /// Create a zero-initialized CRF.
    ///
    /// * `num_states` — size of the label space `n`.
    /// * `num_obs_features` — size of the observation-feature dictionary
    ///   `F`; sequences may only contain ids `< F`.
    /// * `pair_eligible` — for each observation feature, whether it also
    ///   generates `(y_{t-1}, y_t, x_t)` pair features. Must have length
    ///   `F`.
    ///
    /// # Panics
    /// Panics if `pair_eligible.len() != num_obs_features` or
    /// `num_states == 0`.
    pub fn new(num_states: usize, num_obs_features: usize, pair_eligible: &[bool]) -> Self {
        assert!(num_states > 0, "CRF needs at least one state");
        assert_eq!(
            pair_eligible.len(),
            num_obs_features,
            "pair eligibility must cover every observation feature"
        );
        let mut pair_map = vec![NOT_PAIR; num_obs_features];
        let mut num_pair_features = 0usize;
        for (f, &eligible) in pair_eligible.iter().enumerate() {
            if eligible {
                pair_map[f] = num_pair_features as u32;
                num_pair_features += 1;
            }
        }
        let dim = num_states * num_states
            + num_obs_features * num_states
            + num_pair_features * num_states * num_states;
        Crf {
            num_states,
            num_obs_features,
            pair_map,
            num_pair_features,
            weights: vec![0.0; dim],
        }
    }

    /// Convenience constructor with no pair features.
    pub fn without_pair_features(num_states: usize, num_obs_features: usize) -> Self {
        Crf::new(num_states, num_obs_features, &vec![false; num_obs_features])
    }

    /// Number of states `n`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Size of the observation-feature dictionary `F`.
    pub fn num_obs_features(&self) -> usize {
        self.num_obs_features
    }

    /// Number of pair-eligible observation features `P`.
    pub fn num_pair_features(&self) -> usize {
        self.num_pair_features
    }

    /// Total parameter count (the model's dimensionality).
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The flat parameter vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable access to the flat parameter vector (used by optimizers).
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// Replace the parameter vector.
    ///
    /// # Panics
    /// Panics if `w.len() != self.dim()`.
    pub fn set_weights(&mut self, w: Vec<f64>) {
        assert_eq!(w.len(), self.dim(), "weight vector has wrong dimension");
        self.weights = w;
    }

    /// Copy `w` into the existing parameter storage — the allocation-free
    /// install path used once per optimizer evaluation (a ~1M-dim model
    /// would otherwise clone a fresh `Vec<f64>` every L-BFGS step).
    ///
    /// # Panics
    /// Panics if `w.len() != self.dim()`.
    pub fn copy_weights_from(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.dim(), "weight vector has wrong dimension");
        self.weights.copy_from_slice(w);
    }

    /// Parameter index of the transition feature `(i → j)`.
    #[inline]
    pub fn trans_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.num_states && j < self.num_states);
        i * self.num_states + j
    }

    /// Parameter index of the emission feature `(f, j)`.
    #[inline]
    pub fn emit_index(&self, f: u32, j: usize) -> usize {
        debug_assert!((f as usize) < self.num_obs_features && j < self.num_states);
        self.num_states * self.num_states + f as usize * self.num_states + j
    }

    /// Parameter index of the pair feature `(f, i → j)`, if `f` is
    /// pair-eligible.
    #[inline]
    pub fn pair_index(&self, f: u32, i: usize, j: usize) -> Option<usize> {
        let p = self.pair_map[f as usize];
        if p == NOT_PAIR {
            return None;
        }
        let n = self.num_states;
        Some(n * n + self.num_obs_features * n + (p as usize * n + i) * n + j)
    }

    /// Whether observation feature `f` is pair-eligible.
    #[inline]
    pub fn is_pair_eligible(&self, f: u32) -> bool {
        self.pair_map[f as usize] != NOT_PAIR
    }

    /// Materialize the potentials of `seq` under the current weights.
    ///
    /// # Panics
    /// Panics if the sequence contains a feature id `>= F`.
    pub fn score_table(&self, seq: &Sequence) -> ScoreTable {
        let mut out = ScoreTable::default();
        self.score_table_into(seq, &mut out);
        out
    }

    /// Materialize the potentials of `seq` into `out`, reusing its
    /// buffers (the allocation-free path; see
    /// [`InferenceScratch`](crate::scratch::InferenceScratch)).
    ///
    /// # Panics
    /// Panics if the sequence contains a feature id `>= F`.
    pub fn score_table_into(&self, seq: &Sequence, out: &mut ScoreTable) {
        self.score_table_with_into(seq, &self.weights, 1.0, out);
    }

    /// Materialize potentials under an *explicit* parameter vector
    /// `weights`, each potential multiplied by `scale`.
    ///
    /// This serves the SGD trainer's weight-scaling trick: with true
    /// weights `θ = scale · v` the potentials are `scale · (Σ v_k)`, so
    /// the table can be built directly from `v` without materializing a
    /// dense `θ` copy per gradient step.
    ///
    /// # Panics
    /// Panics if `weights.len() != self.dim()` or the sequence contains a
    /// feature id `>= F`.
    pub fn score_table_with_into(
        &self,
        seq: &Sequence,
        weights: &[f64],
        scale: f64,
        out: &mut ScoreTable,
    ) {
        assert_eq!(
            weights.len(),
            self.dim(),
            "weight vector has wrong dimension"
        );
        let kernel = KernelLevel::active();
        let n = self.num_states;
        let t_len = seq.len();
        out.n = n;
        out.len = t_len;
        out.emit.clear();
        out.emit.resize(t_len * n, 0.0);
        out.trans.clear();
        let base_trans = &weights[..n * n];
        if t_len > 1 {
            out.trans.reserve((t_len - 1) * n * n);
            for _ in 1..t_len {
                out.trans.extend_from_slice(base_trans);
            }
        }

        for (t, feats) in seq.obs.iter().enumerate() {
            let emit_row = &mut out.emit[t * n..(t + 1) * n];
            for &f in feats {
                assert!(
                    (f as usize) < self.num_obs_features,
                    "feature id {f} out of range (F = {})",
                    self.num_obs_features
                );
                let base = self.emit_index(f, 0);
                kernels::add_assign_f64(kernel, emit_row, &weights[base..base + n]);
                // Pair features contribute to the edge entering position t
                // (they condition on y_{t-1}); position 0 has no such edge.
                if t > 0 {
                    if let Some(pbase) = self.pair_index(f, 0, 0) {
                        let edge = &mut out.trans[(t - 1) * n * n..t * n * n];
                        kernels::add_assign_f64(kernel, edge, &weights[pbase..pbase + n * n]);
                    }
                }
            }
        }
        if scale != 1.0 {
            kernels::scale_f64(kernel, &mut out.emit, scale);
            kernels::scale_f64(kernel, &mut out.trans, scale);
        }
    }

    /// Sum the emission weights of `feats` for every state into `row`
    /// (resized to length `n`).
    ///
    /// This is exactly the per-position emission accumulation of
    /// [`score_table_with_into`](Self::score_table_with_into) — the same
    /// additions in the same feature order — so a memoized row copied
    /// into a [`ScoreTable`] is bit-identical to the one that method
    /// would have built. This is the contract the line cache
    /// (`whois-parser`) relies on. The accumulation runs on the
    /// process-wide SIMD kernel ([`crate::kernels`]), whose levels are
    /// element-wise bit-exact, so the contract holds on every CPU and
    /// under `WHOIS_FORCE_SCALAR`.
    ///
    /// # Panics
    /// Panics if `feats` contains a feature id `>= F`.
    pub fn emission_row_into(&self, feats: &[u32], row: &mut Vec<f64>) {
        let kernel = KernelLevel::active();
        let n = self.num_states;
        row.clear();
        row.resize(n, 0.0);
        for &f in feats {
            assert!(
                (f as usize) < self.num_obs_features,
                "feature id {f} out of range (F = {})",
                self.num_obs_features
            );
            let base = self.emit_index(f, 0);
            kernels::add_assign_f64(kernel, row, &self.weights[base..base + n]);
        }
    }

    /// Build the edge potentials entering a position whose feature row
    /// is `feats`: the base transition weights plus every pair-eligible
    /// feature's `n×n` block, added in feature order, into `row`
    /// (resized to length `n²`).
    ///
    /// Bit-identical to the edge
    /// [`score_table_with_into`](Self::score_table_with_into) builds for
    /// any position `t ≥ 1` observing `feats` (the edge depends only on
    /// the feature row, not on `t`), by the same argument as
    /// [`emission_row_into`](Self::emission_row_into).
    ///
    /// # Panics
    /// Panics if `feats` contains a feature id `>= F`.
    pub fn edge_row_into(&self, feats: &[u32], row: &mut Vec<f64>) {
        let kernel = KernelLevel::active();
        let n = self.num_states;
        row.clear();
        row.extend_from_slice(&self.weights[..n * n]);
        for &f in feats {
            assert!(
                (f as usize) < self.num_obs_features,
                "feature id {f} out of range (F = {})",
                self.num_obs_features
            );
            if let Some(pbase) = self.pair_index(f, 0, 0) {
                kernels::add_assign_f64(kernel, row, &self.weights[pbase..pbase + n * n]);
            }
        }
    }

    /// Unnormalized log-score `Σ_t Σ_k θ_k f_k` of a specific labeling.
    ///
    /// # Panics
    /// Panics if `labels` misaligns with `seq` or contains an out-of-range
    /// state.
    pub fn path_score(&self, seq: &Sequence, labels: &[usize]) -> f64 {
        assert_eq!(seq.len(), labels.len(), "label length mismatch");
        let mut score = 0.0;
        for (t, (feats, &j)) in seq.obs.iter().zip(labels).enumerate() {
            assert!(j < self.num_states, "label out of range");
            if t > 0 {
                let i = labels[t - 1];
                score += self.weights[self.trans_index(i, j)];
                for &f in feats {
                    if let Some(idx) = self.pair_index(f, i, j) {
                        score += self.weights[idx];
                    }
                }
            }
            for &f in feats {
                score += self.weights[self.emit_index(f, 0) + j];
            }
        }
        score
    }
}

impl ScoreTable {
    /// Emission potentials at position `t` (slice of length `n`).
    #[inline]
    pub fn emit_at(&self, t: usize) -> &[f64] {
        &self.emit[t * self.n..(t + 1) * self.n]
    }

    /// Edge potentials between positions `t-1` and `t` (row-major `n×n`,
    /// indexed `[i*n + j]`), for `t` in `1..len`.
    #[inline]
    pub fn trans_at(&self, t: usize) -> &[f64] {
        debug_assert!(t >= 1 && t < self.len);
        &self.trans[(t - 1) * self.n * self.n..t * self.n * self.n]
    }

    /// Unnormalized log-score of `labels` read off the materialized
    /// potentials — equivalent to [`Crf::path_score`] but `O(T)` with no
    /// per-feature work, for callers that already built the table.
    ///
    /// # Panics
    /// Panics if `labels.len() != self.len` or a label is `>= n`.
    pub fn path_score(&self, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), self.len, "label length mismatch");
        let n = self.n;
        let mut score = 0.0;
        for (t, &j) in labels.iter().enumerate() {
            assert!(j < n, "label out of range");
            score += self.emit_at(t)[j];
            if t > 0 {
                score += self.trans_at(t)[labels[t - 1] * n + j];
            }
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_crf() -> Crf {
        // 2 states, 3 observation features, feature 2 pair-eligible.
        Crf::new(2, 3, &[false, false, true])
    }

    #[test]
    fn dimension_layout() {
        let m = tiny_crf();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.num_obs_features(), 3);
        assert_eq!(m.num_pair_features(), 1);
        // 4 transition + 6 emission + 4 pair.
        assert_eq!(m.dim(), 14);
        assert!(m.weights().iter().all(|&w| w == 0.0));
    }

    #[test]
    fn indices_are_disjoint_and_dense() {
        let m = tiny_crf();
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..2 {
                assert!(seen.insert(m.trans_index(i, j)));
            }
        }
        for f in 0..3u32 {
            for j in 0..2 {
                assert!(seen.insert(m.emit_index(f, j)));
            }
        }
        for i in 0..2 {
            for j in 0..2 {
                assert!(seen.insert(m.pair_index(2, i, j).unwrap()));
            }
        }
        assert_eq!(m.pair_index(0, 0, 0), None);
        assert_eq!(seen.len(), m.dim());
        assert_eq!(*seen.iter().max().unwrap(), m.dim() - 1);
    }

    #[test]
    fn score_table_accumulates_emissions() {
        let mut m = tiny_crf();
        let dim = m.dim();
        m.set_weights((0..dim).map(|i| i as f64 * 0.1).collect());
        let seq = Sequence::new(vec![vec![0, 1], vec![2]]);
        let table = m.score_table(&seq);
        assert_eq!(table.len, 2);
        // Position 0: features 0 and 1 active.
        let e0 = table.emit_at(0);
        let expected_j0 = m.weights()[m.emit_index(0, 0)] + m.weights()[m.emit_index(1, 0)];
        assert!((e0[0] - expected_j0).abs() < 1e-12);
        // Edge 0→1 includes base transition plus pair weights of feature 2.
        let edge = table.trans_at(1);
        let expect = m.weights()[m.trans_index(1, 0)] + m.weights()[m.pair_index(2, 1, 0).unwrap()];
        assert!((edge[2] - expect).abs() < 1e-12);
    }

    #[test]
    fn pair_features_do_not_affect_first_position() {
        let mut m = tiny_crf();
        let dim = m.dim();
        m.set_weights(vec![1.0; dim]);
        let seq = Sequence::new(vec![vec![2]]);
        let table = m.score_table(&seq);
        // Only the emission weight contributes.
        assert_eq!(table.emit_at(0), &[1.0, 1.0]);
        assert!(table.trans.is_empty());
    }

    #[test]
    fn path_score_matches_table_sum() {
        let mut m = tiny_crf();
        let w: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.37).sin()).collect();
        m.set_weights(w);
        let seq = Sequence::new(vec![vec![0], vec![1, 2], vec![2]]);
        let labels = vec![1, 0, 1];
        let table = m.score_table(&seq);
        let mut manual = table.emit_at(0)[1];
        manual += table.trans_at(1)[2] + table.emit_at(1)[0];
        manual += table.trans_at(2)[1] + table.emit_at(2)[1];
        assert!((m.path_score(&seq, &labels) - manual).abs() < 1e-12);
    }

    #[test]
    fn table_path_score_matches_crf_path_score() {
        let mut m = tiny_crf();
        let w: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.21).cos()).collect();
        m.set_weights(w);
        let seq = Sequence::new(vec![vec![0, 2], vec![1], vec![2], vec![]]);
        let table = m.score_table(&seq);
        for labels in [[0, 1, 0, 1], [1, 1, 1, 1], [0, 0, 1, 0]] {
            assert!(
                (table.path_score(&labels) - m.path_score(&seq, &labels)).abs() < 1e-12,
                "labels {labels:?}"
            );
        }
        assert_eq!(m.score_table(&Sequence::default()).path_score(&[]), 0.0);
    }

    #[test]
    fn copy_weights_from_matches_set_weights() {
        let mut a = tiny_crf();
        let mut b = tiny_crf();
        let w: Vec<f64> = (0..a.dim()).map(|i| i as f64 * 0.5).collect();
        a.set_weights(w.clone());
        b.copy_weights_from(&w);
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn scaled_table_matches_scaled_weights() {
        let mut m = tiny_crf();
        let v: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.13).sin()).collect();
        let scale = 0.37;
        m.set_weights(v.iter().map(|x| x * scale).collect());
        let seq = Sequence::new(vec![vec![0, 1], vec![2], vec![1, 2]]);
        let want = m.score_table(&seq);
        let mut got = ScoreTable::default();
        m.score_table_with_into(&seq, &v, scale, &mut got);
        assert_eq!(got.len, want.len);
        for (a, b) in got.emit.iter().zip(&want.emit) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in got.trans.iter().zip(&want.trans) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_feature_beyond_dictionary() {
        let m = tiny_crf();
        m.score_table(&Sequence::new(vec![vec![99]]));
    }

    #[test]
    fn serde_roundtrip_preserves_scores() {
        let mut m = tiny_crf();
        let w: Vec<f64> = (0..m.dim()).map(|i| i as f64).collect();
        m.set_weights(w);
        let json = serde_json::to_string(&m).unwrap();
        let back: Crf = serde_json::from_str(&json).unwrap();
        let seq = Sequence::new(vec![vec![0, 2], vec![1]]);
        assert_eq!(back.path_score(&seq, &[0, 1]), m.path_score(&seq, &[0, 1]));
        assert_eq!(back.dim(), m.dim());
    }

    #[test]
    fn empty_sequence_has_empty_table() {
        let m = tiny_crf();
        let table = m.score_table(&Sequence::default());
        assert_eq!(table.len, 0);
        assert!(table.emit.is_empty());
        assert!(table.trans.is_empty());
    }

    #[test]
    fn memoized_rows_reassemble_the_score_table_bit_for_bit() {
        // 3 states, 5 features, a mix of pair-eligible ones, irrational
        // weights so any reordering of float additions would show up.
        let mut m = Crf::new(3, 5, &[true, false, true, true, false]);
        let dim = m.dim();
        m.set_weights((0..dim).map(|i| ((i as f64) * 0.831).sin() * 3.7).collect());
        let seq = Sequence::new(vec![
            vec![0, 2, 4],
            vec![1, 3],
            vec![],
            vec![0, 1, 2, 3, 4],
            vec![2],
        ]);
        let want = m.score_table(&seq);

        let n = m.num_states();
        let mut got = ScoreTable {
            n,
            len: seq.len(),
            emit: Vec::new(),
            trans: Vec::new(),
        };
        let mut emit_row = Vec::new();
        let mut edge_row = Vec::new();
        for (t, feats) in seq.obs.iter().enumerate() {
            m.emission_row_into(feats, &mut emit_row);
            got.emit.extend_from_slice(&emit_row);
            if t > 0 {
                m.edge_row_into(feats, &mut edge_row);
                got.trans.extend_from_slice(&edge_row);
            }
        }
        // Bit-identical, not merely close: the row helpers replay the
        // same additions in the same order as score_table_into.
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn emission_row_rejects_feature_beyond_dictionary() {
        let m = tiny_crf();
        m.emission_row_into(&[99], &mut Vec::new());
    }
}
