//! Runtime-dispatched SIMD kernels for the hot float loops.
//!
//! Every dense float loop the profiler cares about — `f32` stripe and
//! pair-block accumulation in the fast decode tier, the batched-Viterbi
//! max-plus step, and the `f64` potential/expectation accumulation of the
//! training engine — funnels through this module. Three implementation
//! levels exist:
//!
//! * **`scalar`** — portable Rust, the *oracle*: every other level must
//!   produce bit-identical output, and it is the only level compiled on
//!   non-x86 targets.
//! * **`sse2`** — 128-bit lanes (4×f32 / 2×f64), baseline on x86-64.
//! * **`avx2`** — 256-bit lanes (8×f32 / 4×f64), selected when the CPU
//!   reports AVX2 at startup.
//!
//! ## Bit-exactness
//!
//! The kernels are chosen so that vectorization cannot reassociate any
//! floating-point operation:
//!
//! * Element-wise ops (`acc[k] += src[k]`, `x[k] *= s`,
//!   `g[k] = g[k]/r + l2*w[k]`) perform exactly one rounding per slot in
//!   every level — lane grouping changes nothing.
//! * The max-plus step ([`maxplus_step_f32`]) iterates predecessor states
//!   `i` in ascending order in every level; each target-state lane `j`
//!   sees the same sequence of `prev[i] + edge[i*n+j]` adds and the same
//!   first-max tie-breaking comparisons as the scalar loop.
//!
//! Reductions that *would* reassociate (log-sum-exp, dot products, the L2
//! norm) deliberately stay scalar. This is what lets the line cache and
//! the fast tier keep their bit-identical row-reassembly contracts (see
//! [`Crf::emission_row_into`](crate::model::Crf::emission_row_into))
//! regardless of the host CPU.
//!
//! ## Dispatch
//!
//! [`KernelLevel::active`] picks the best supported level once per
//! process (honoring the `WHOIS_FORCE_SCALAR=1` override for differential
//! testing); `DecodeModel`, `TrainEngine`, and friends capture it at
//! construction and report it through `STATS`/`HEALTH` and the bench
//! JSON. Every kernel also accepts an explicit level so tests and benches
//! can pin implementations; passing an unsupported level silently runs
//! the scalar oracle, which keeps the API safe on any host.

use std::sync::OnceLock;

/// A SIMD implementation level. Ordering is by capability: `Scalar <
/// Sse2 < Avx2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelLevel {
    /// Portable scalar Rust — the oracle, and the only level off x86.
    Scalar,
    /// 128-bit SSE2 lanes (x86/x86-64).
    Sse2,
    /// 256-bit AVX2 lanes (x86/x86-64).
    Avx2,
}

impl KernelLevel {
    /// All levels, weakest first.
    pub const ALL: [KernelLevel; 3] = [KernelLevel::Scalar, KernelLevel::Sse2, KernelLevel::Avx2];

    /// Stable lower-case name, used in `STATS`/`HEALTH` and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelLevel::Scalar => "scalar",
            KernelLevel::Sse2 => "sse2",
            KernelLevel::Avx2 => "avx2",
        }
    }

    /// Whether the running CPU can execute this level.
    pub fn is_supported(self) -> bool {
        match self {
            KernelLevel::Scalar => true,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelLevel::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelLevel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            _ => false,
        }
    }

    /// Detect the best supported level, honoring `WHOIS_FORCE_SCALAR=1`.
    /// Uncached — prefer [`KernelLevel::active`] outside of tests.
    pub fn detect() -> KernelLevel {
        if std::env::var("WHOIS_FORCE_SCALAR").is_ok_and(|v| v == "1") {
            return KernelLevel::Scalar;
        }
        if KernelLevel::Avx2.is_supported() {
            KernelLevel::Avx2
        } else if KernelLevel::Sse2.is_supported() {
            KernelLevel::Sse2
        } else {
            KernelLevel::Scalar
        }
    }

    /// The process-wide level: [`KernelLevel::detect`] run once and
    /// cached. Engines capture this at construction, so the level (and
    /// the `WHOIS_FORCE_SCALAR` override) is fixed for the process
    /// lifetime — hot swaps never change numeric behavior mid-flight.
    pub fn active() -> KernelLevel {
        static ACTIVE: OnceLock<KernelLevel> = OnceLock::new();
        *ACTIVE.get_or_init(KernelLevel::detect)
    }
}

// ---------------------------------------------------------------------
// Scalar oracles.
// ---------------------------------------------------------------------

fn add_assign_f32_scalar(acc: &mut [f32], src: &[f32]) {
    for (a, s) in acc.iter_mut().zip(src) {
        *a += *s;
    }
}

fn add_assign_f64_scalar(acc: &mut [f64], src: &[f64]) {
    for (a, s) in acc.iter_mut().zip(src) {
        *a += *s;
    }
}

fn scale_f64_scalar(xs: &mut [f64], s: f64) {
    for x in xs.iter_mut() {
        *x *= s;
    }
}

fn finish_grad_f64_scalar(grad: &mut [f64], w: &[f64], r: f64, l2: f64) {
    for (g, &wi) in grad.iter_mut().zip(w) {
        *g = *g / r + l2 * wi;
    }
}

fn maxplus_step_f32_scalar(
    prev: &[f32],
    edge: &[f32],
    best: &mut [f32],
    second: &mut [f32],
    back: &mut [u32],
) {
    let n = prev.len();
    for j in 0..n {
        best[j] = prev[0] + edge[j];
        second[j] = f32::NEG_INFINITY;
        back[j] = 0;
    }
    for i in 1..n {
        let p = prev[i];
        let row = &edge[i * n..(i + 1) * n];
        for j in 0..n {
            let s = p + row[j];
            if s > best[j] {
                second[j] = best[j];
                best[j] = s;
                back[j] = i as u32;
            } else if s > second[j] {
                second[j] = s;
            }
        }
    }
}

// ---------------------------------------------------------------------
// x86 / x86-64 SIMD implementations.
// ---------------------------------------------------------------------

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    #[target_feature(enable = "sse2")]
    pub unsafe fn add_assign_f32_sse2(acc: &mut [f32], src: &[f32]) {
        let n = acc.len();
        let a = acc.as_mut_ptr();
        let s = src.as_ptr();
        let mut k = 0;
        while k + 4 <= n {
            _mm_storeu_ps(
                a.add(k),
                _mm_add_ps(_mm_loadu_ps(a.add(k)), _mm_loadu_ps(s.add(k))),
            );
            k += 4;
        }
        while k < n {
            *a.add(k) += *s.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_f32_avx2(acc: &mut [f32], src: &[f32]) {
        let n = acc.len();
        let a = acc.as_mut_ptr();
        let s = src.as_ptr();
        let mut k = 0;
        while k + 8 <= n {
            _mm256_storeu_ps(
                a.add(k),
                _mm256_add_ps(_mm256_loadu_ps(a.add(k)), _mm256_loadu_ps(s.add(k))),
            );
            k += 8;
        }
        if k + 4 <= n {
            _mm_storeu_ps(
                a.add(k),
                _mm_add_ps(_mm_loadu_ps(a.add(k)), _mm_loadu_ps(s.add(k))),
            );
            k += 4;
        }
        while k < n {
            *a.add(k) += *s.add(k);
            k += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn add_assign_f64_sse2(acc: &mut [f64], src: &[f64]) {
        let n = acc.len();
        let a = acc.as_mut_ptr();
        let s = src.as_ptr();
        let mut k = 0;
        while k + 2 <= n {
            _mm_storeu_pd(
                a.add(k),
                _mm_add_pd(_mm_loadu_pd(a.add(k)), _mm_loadu_pd(s.add(k))),
            );
            k += 2;
        }
        if k < n {
            *a.add(k) += *s.add(k);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_f64_avx2(acc: &mut [f64], src: &[f64]) {
        let n = acc.len();
        let a = acc.as_mut_ptr();
        let s = src.as_ptr();
        let mut k = 0;
        while k + 4 <= n {
            _mm256_storeu_pd(
                a.add(k),
                _mm256_add_pd(_mm256_loadu_pd(a.add(k)), _mm256_loadu_pd(s.add(k))),
            );
            k += 4;
        }
        if k + 2 <= n {
            _mm_storeu_pd(
                a.add(k),
                _mm_add_pd(_mm_loadu_pd(a.add(k)), _mm_loadu_pd(s.add(k))),
            );
            k += 2;
        }
        if k < n {
            *a.add(k) += *s.add(k);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn scale_f64_sse2(xs: &mut [f64], s: f64) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let sv = _mm_set1_pd(s);
        let mut k = 0;
        while k + 2 <= n {
            _mm_storeu_pd(p.add(k), _mm_mul_pd(_mm_loadu_pd(p.add(k)), sv));
            k += 2;
        }
        if k < n {
            *p.add(k) *= s;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_f64_avx2(xs: &mut [f64], s: f64) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let sv = _mm256_set1_pd(s);
        let mut k = 0;
        while k + 4 <= n {
            _mm256_storeu_pd(p.add(k), _mm256_mul_pd(_mm256_loadu_pd(p.add(k)), sv));
            k += 4;
        }
        if k + 2 <= n {
            _mm_storeu_pd(
                p.add(k),
                _mm_mul_pd(_mm_loadu_pd(p.add(k)), _mm256_castpd256_pd128(sv)),
            );
            k += 2;
        }
        if k < n {
            *p.add(k) *= s;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn finish_grad_f64_sse2(grad: &mut [f64], w: &[f64], r: f64, l2: f64) {
        let n = grad.len();
        let g = grad.as_mut_ptr();
        let wp = w.as_ptr();
        let rv = _mm_set1_pd(r);
        let lv = _mm_set1_pd(l2);
        let mut k = 0;
        while k + 2 <= n {
            let q = _mm_div_pd(_mm_loadu_pd(g.add(k)), rv);
            let p = _mm_mul_pd(lv, _mm_loadu_pd(wp.add(k)));
            _mm_storeu_pd(g.add(k), _mm_add_pd(q, p));
            k += 2;
        }
        if k < n {
            *g.add(k) = *g.add(k) / r + l2 * *wp.add(k);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn finish_grad_f64_avx2(grad: &mut [f64], w: &[f64], r: f64, l2: f64) {
        let n = grad.len();
        let g = grad.as_mut_ptr();
        let wp = w.as_ptr();
        let rv = _mm256_set1_pd(r);
        let lv = _mm256_set1_pd(l2);
        let mut k = 0;
        while k + 4 <= n {
            let q = _mm256_div_pd(_mm256_loadu_pd(g.add(k)), rv);
            let p = _mm256_mul_pd(lv, _mm256_loadu_pd(wp.add(k)));
            _mm256_storeu_pd(g.add(k), _mm256_add_pd(q, p));
            k += 4;
        }
        while k < n {
            *g.add(k) = *g.add(k) / r + l2 * *wp.add(k);
            k += 1;
        }
    }

    /// 128-bit blend: `mask ? a : b` per lane (SSE2 has no `blendv`).
    #[inline]
    unsafe fn sel_ps(mask: __m128, a: __m128, b: __m128) -> __m128 {
        _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b))
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn maxplus_step_f32_sse2(
        prev: &[f32],
        edge: &[f32],
        best: &mut [f32],
        second: &mut [f32],
        back: &mut [u32],
    ) {
        let n = prev.len();
        let neg_inf = _mm_set1_ps(f32::NEG_INFINITY);
        let p0 = _mm_set1_ps(prev[0]);
        let mut k = 0;
        while k + 4 <= n {
            let s = _mm_add_ps(p0, _mm_loadu_ps(edge.as_ptr().add(k)));
            _mm_storeu_ps(best.as_mut_ptr().add(k), s);
            _mm_storeu_ps(second.as_mut_ptr().add(k), neg_inf);
            _mm_storeu_si128(
                back.as_mut_ptr().add(k) as *mut __m128i,
                _mm_setzero_si128(),
            );
            k += 4;
        }
        while k < n {
            best[k] = prev[0] + edge[k];
            second[k] = f32::NEG_INFINITY;
            back[k] = 0;
            k += 1;
        }
        for i in 1..n {
            let p = prev[i];
            let pv = _mm_set1_ps(p);
            let iv = _mm_set1_epi32(i as i32);
            let row = edge.as_ptr().add(i * n);
            let mut k = 0;
            while k + 4 <= n {
                let s = _mm_add_ps(pv, _mm_loadu_ps(row.add(k)));
                let b = _mm_loadu_ps(best.as_ptr().add(k));
                let sec = _mm_loadu_ps(second.as_ptr().add(k));
                let gt_b = _mm_cmpgt_ps(s, b);
                let gt_s = _mm_cmpgt_ps(s, sec);
                let sec_new = sel_ps(gt_b, b, sel_ps(gt_s, s, sec));
                let b_new = sel_ps(gt_b, s, b);
                let m = _mm_castps_si128(gt_b);
                let bk = _mm_loadu_si128(back.as_ptr().add(k) as *const __m128i);
                let bk_new = _mm_or_si128(_mm_and_si128(m, iv), _mm_andnot_si128(m, bk));
                _mm_storeu_ps(second.as_mut_ptr().add(k), sec_new);
                _mm_storeu_ps(best.as_mut_ptr().add(k), b_new);
                _mm_storeu_si128(back.as_mut_ptr().add(k) as *mut __m128i, bk_new);
                k += 4;
            }
            while k < n {
                let s = p + *row.add(k);
                if s > best[k] {
                    second[k] = best[k];
                    best[k] = s;
                    back[k] = i as u32;
                } else if s > second[k] {
                    second[k] = s;
                }
                k += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn maxplus_step_f32_avx2(
        prev: &[f32],
        edge: &[f32],
        best: &mut [f32],
        second: &mut [f32],
        back: &mut [u32],
    ) {
        let n = prev.len();
        let neg_inf8 = _mm256_set1_ps(f32::NEG_INFINITY);
        let p0v8 = _mm256_set1_ps(prev[0]);
        let mut k = 0;
        while k + 8 <= n {
            let s = _mm256_add_ps(p0v8, _mm256_loadu_ps(edge.as_ptr().add(k)));
            _mm256_storeu_ps(best.as_mut_ptr().add(k), s);
            _mm256_storeu_ps(second.as_mut_ptr().add(k), neg_inf8);
            _mm256_storeu_si256(
                back.as_mut_ptr().add(k) as *mut __m256i,
                _mm256_setzero_si256(),
            );
            k += 8;
        }
        if k + 4 <= n {
            let s = _mm_add_ps(
                _mm256_castps256_ps128(p0v8),
                _mm_loadu_ps(edge.as_ptr().add(k)),
            );
            _mm_storeu_ps(best.as_mut_ptr().add(k), s);
            _mm_storeu_ps(second.as_mut_ptr().add(k), _mm256_castps256_ps128(neg_inf8));
            _mm_storeu_si128(
                back.as_mut_ptr().add(k) as *mut __m128i,
                _mm_setzero_si128(),
            );
            k += 4;
        }
        while k < n {
            best[k] = prev[0] + edge[k];
            second[k] = f32::NEG_INFINITY;
            back[k] = 0;
            k += 1;
        }
        for i in 1..n {
            let p = prev[i];
            let pv8 = _mm256_set1_ps(p);
            let iv8 = _mm256_set1_epi32(i as i32);
            let row = edge.as_ptr().add(i * n);
            let mut k = 0;
            while k + 8 <= n {
                let s = _mm256_add_ps(pv8, _mm256_loadu_ps(row.add(k)));
                let b = _mm256_loadu_ps(best.as_ptr().add(k));
                let sec = _mm256_loadu_ps(second.as_ptr().add(k));
                let gt_b = _mm256_cmp_ps(s, b, _CMP_GT_OQ);
                let gt_s = _mm256_cmp_ps(s, sec, _CMP_GT_OQ);
                let sec_new = _mm256_blendv_ps(_mm256_blendv_ps(sec, s, gt_s), b, gt_b);
                let b_new = _mm256_blendv_ps(b, s, gt_b);
                let m = _mm256_castps_si256(gt_b);
                let bk = _mm256_loadu_si256(back.as_ptr().add(k) as *const __m256i);
                let bk_new = _mm256_blendv_epi8(bk, iv8, m);
                _mm256_storeu_ps(second.as_mut_ptr().add(k), sec_new);
                _mm256_storeu_ps(best.as_mut_ptr().add(k), b_new);
                _mm256_storeu_si256(back.as_mut_ptr().add(k) as *mut __m256i, bk_new);
                k += 8;
            }
            if k + 4 <= n {
                let pv = _mm256_castps256_ps128(pv8);
                let iv = _mm256_castsi256_si128(iv8);
                let s = _mm_add_ps(pv, _mm_loadu_ps(row.add(k)));
                let b = _mm_loadu_ps(best.as_ptr().add(k));
                let sec = _mm_loadu_ps(second.as_ptr().add(k));
                let gt_b = _mm_cmpgt_ps(s, b);
                let gt_s = _mm_cmpgt_ps(s, sec);
                let sec_new = sel_ps(gt_b, b, sel_ps(gt_s, s, sec));
                let b_new = sel_ps(gt_b, s, b);
                let m = _mm_castps_si128(gt_b);
                let bk = _mm_loadu_si128(back.as_ptr().add(k) as *const __m128i);
                let bk_new = _mm_or_si128(_mm_and_si128(m, iv), _mm_andnot_si128(m, bk));
                _mm_storeu_ps(second.as_mut_ptr().add(k), sec_new);
                _mm_storeu_ps(best.as_mut_ptr().add(k), b_new);
                _mm_storeu_si128(back.as_mut_ptr().add(k) as *mut __m128i, bk_new);
                k += 4;
            }
            while k < n {
                let s = p + *row.add(k);
                if s > best[k] {
                    second[k] = best[k];
                    best[k] = s;
                    back[k] = i as u32;
                } else if s > second[k] {
                    second[k] = s;
                }
                k += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Dispatch wrappers.
// ---------------------------------------------------------------------

/// Resolve a requested level to one that is safe to execute here:
/// unsupported levels (and any level off x86) degrade to the scalar
/// oracle, so callers may pass `KernelLevel::Avx2` unconditionally.
#[inline]
fn effective(level: KernelLevel) -> KernelLevel {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if level == KernelLevel::Avx2 && !is_x86_feature_detected!("avx2") {
            return KernelLevel::Scalar;
        }
        if level == KernelLevel::Sse2 && !is_x86_feature_detected!("sse2") {
            return KernelLevel::Scalar;
        }
        level
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        let _ = level;
        KernelLevel::Scalar
    }
}

/// `acc[k] += src[k]` — one add and one rounding per slot in every level.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn add_assign_f32(level: KernelLevel, acc: &mut [f32], src: &[f32]) {
    assert_eq!(acc.len(), src.len(), "add_assign_f32 length mismatch");
    match effective(level) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Sse2 => unsafe { x86::add_assign_f32_sse2(acc, src) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Avx2 => unsafe { x86::add_assign_f32_avx2(acc, src) },
        _ => add_assign_f32_scalar(acc, src),
    }
}

/// `acc[k] += src[k]` in `f64` — one add and one rounding per slot.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn add_assign_f64(level: KernelLevel, acc: &mut [f64], src: &[f64]) {
    assert_eq!(acc.len(), src.len(), "add_assign_f64 length mismatch");
    match effective(level) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Sse2 => unsafe { x86::add_assign_f64_sse2(acc, src) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Avx2 => unsafe { x86::add_assign_f64_avx2(acc, src) },
        _ => add_assign_f64_scalar(acc, src),
    }
}

/// `xs[k] *= s` — one multiply and one rounding per slot.
#[inline]
pub fn scale_f64(level: KernelLevel, xs: &mut [f64], s: f64) {
    match effective(level) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Sse2 => unsafe { x86::scale_f64_sse2(xs, s) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Avx2 => unsafe { x86::scale_f64_avx2(xs, s) },
        _ => scale_f64_scalar(xs, s),
    }
}

/// `grad[k] = grad[k]/r + l2*w[k]` — the gradient finish of
/// [`TrainEngine::eval`](crate::engine::TrainEngine::eval): divide, then
/// multiply, then add, each rounded once (no FMA contraction in any
/// level).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn finish_grad_f64(level: KernelLevel, grad: &mut [f64], w: &[f64], r: f64, l2: f64) {
    assert_eq!(grad.len(), w.len(), "finish_grad_f64 length mismatch");
    match effective(level) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Sse2 => unsafe { x86::finish_grad_f64_sse2(grad, w, r, l2) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Avx2 => unsafe { x86::finish_grad_f64_avx2(grad, w, r, l2) },
        _ => finish_grad_f64_scalar(grad, w, r, l2),
    }
}

/// One batched-Viterbi time step over an `n × n` edge block: for every
/// target state `j`, compute over predecessor states `i` (ascending, with
/// first-max tie-breaking exactly like `numerics::arg_max`)
///
/// ```text
/// best[j]   = max_i  prev[i] + edge[i*n + j]
/// back[j]   = argmax_i ...            (smallest winning i)
/// second[j] = runner-up score         (NEG_INFINITY when n == 1)
/// ```
///
/// Each lane `j` performs the same adds and comparisons in the same `i`
/// order in every level, so outputs are bit-identical across levels.
///
/// # Panics
/// Panics if `prev` is empty or the slice lengths disagree
/// (`edge.len() == n²`, the three outputs `n` each).
#[inline]
pub fn maxplus_step_f32(
    level: KernelLevel,
    prev: &[f32],
    edge: &[f32],
    best: &mut [f32],
    second: &mut [f32],
    back: &mut [u32],
) {
    let n = prev.len();
    assert!(n > 0, "maxplus_step_f32 needs at least one state");
    assert_eq!(edge.len(), n * n, "edge block must be n×n");
    assert_eq!(best.len(), n, "best row must be n long");
    assert_eq!(second.len(), n, "second row must be n long");
    assert_eq!(back.len(), n, "back row must be n long");
    match effective(level) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Sse2 => unsafe { x86::maxplus_step_f32_sse2(prev, edge, best, second, back) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        KernelLevel::Avx2 => unsafe { x86::maxplus_step_f32_avx2(prev, edge, best, second, back) },
        _ => maxplus_step_f32_scalar(prev, edge, best, second, back),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                (((i as u64 + seed).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f32 / 1024.0)
                    - 8.0
            })
            .collect()
    }

    fn f64s(len: usize, seed: u64) -> Vec<f64> {
        f32s(len, seed)
            .into_iter()
            .map(|x| x as f64 * 1.7)
            .collect()
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KernelLevel::Scalar.name(), "scalar");
        assert_eq!(KernelLevel::Sse2.name(), "sse2");
        assert_eq!(KernelLevel::Avx2.name(), "avx2");
    }

    #[test]
    fn active_is_supported_and_stable() {
        let a = KernelLevel::active();
        assert!(a.is_supported());
        assert_eq!(a, KernelLevel::active());
    }

    #[test]
    fn scalar_is_always_supported() {
        assert!(KernelLevel::Scalar.is_supported());
    }

    #[test]
    fn add_assign_matches_scalar_at_every_length() {
        for level in KernelLevel::ALL {
            for len in 0..=33 {
                let src32 = f32s(len, 7);
                let mut a32 = f32s(len, 3);
                let mut b32 = a32.clone();
                add_assign_f32(KernelLevel::Scalar, &mut a32, &src32);
                add_assign_f32(level, &mut b32, &src32);
                assert_eq!(a32, b32, "f32 level {level:?} len {len}");

                let src64 = f64s(len, 7);
                let mut a64 = f64s(len, 3);
                let mut b64 = a64.clone();
                add_assign_f64(KernelLevel::Scalar, &mut a64, &src64);
                add_assign_f64(level, &mut b64, &src64);
                assert_eq!(a64, b64, "f64 level {level:?} len {len}");
            }
        }
    }

    #[test]
    fn finish_and_scale_match_scalar() {
        for level in KernelLevel::ALL {
            for len in 0..=17 {
                let w = f64s(len, 11);
                let mut a = f64s(len, 5);
                let mut b = a.clone();
                finish_grad_f64(KernelLevel::Scalar, &mut a, &w, 37.0, 0.03);
                finish_grad_f64(level, &mut b, &w, 37.0, 0.03);
                assert_eq!(a, b, "finish level {level:?} len {len}");

                let mut a = f64s(len, 9);
                let mut b = a.clone();
                scale_f64(KernelLevel::Scalar, &mut a, 0.731);
                scale_f64(level, &mut b, 0.731);
                assert_eq!(a, b, "scale level {level:?} len {len}");
            }
        }
    }

    #[test]
    fn maxplus_matches_scalar_and_breaks_ties_first() {
        for level in KernelLevel::ALL {
            for n in 1..=19 {
                let prev = f32s(n, 2);
                let edge = f32s(n * n, 13);
                let mut b1 = vec![0.0; n];
                let mut s1 = vec![0.0; n];
                let mut k1 = vec![0u32; n];
                let mut b2 = b1.clone();
                let mut s2 = s1.clone();
                let mut k2 = k1.clone();
                maxplus_step_f32(KernelLevel::Scalar, &prev, &edge, &mut b1, &mut s1, &mut k1);
                maxplus_step_f32(level, &prev, &edge, &mut b2, &mut s2, &mut k2);
                assert_eq!(b1, b2, "best level {level:?} n {n}");
                assert_eq!(s1, s2, "second level {level:?} n {n}");
                assert_eq!(k1, k2, "back level {level:?} n {n}");
            }
            // All-equal scores: every lane must keep predecessor 0.
            let n = 9;
            let prev = vec![1.0f32; n];
            let edge = vec![0.5f32; n * n];
            let mut b = vec![0.0; n];
            let mut s = vec![0.0; n];
            let mut k = vec![0u32; n];
            maxplus_step_f32(level, &prev, &edge, &mut b, &mut s, &mut k);
            assert!(k.iter().all(|&i| i == 0), "ties go to i=0 at {level:?}");
            assert!(b.iter().all(|&x| x == 1.5));
            assert!(s.iter().all(|&x| x == 1.5));
        }
    }

    #[test]
    fn maxplus_single_state_reports_neg_inf_second() {
        for level in KernelLevel::ALL {
            let mut b = [0.0f32];
            let mut s = [0.0f32];
            let mut k = [0u32];
            maxplus_step_f32(level, &[2.0], &[3.0], &mut b, &mut s, &mut k);
            assert_eq!(b[0], 5.0);
            assert_eq!(s[0], f32::NEG_INFINITY);
            assert_eq!(k[0], 0);
        }
    }
}
