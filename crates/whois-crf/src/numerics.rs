//! Numerically stable helpers for log-space inference.

/// `log(sum_i exp(xs[i]))`, computed stably by factoring out the maximum.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the sum of zero terms).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Index of the maximum element (first occurrence on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn arg_max(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "arg_max of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Euclidean norm of a vector.
pub fn l2_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of equal-length vectors.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS axpy).
///
/// # Panics
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy of unequal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_on_small_values() {
        let xs = [0.1_f64, -0.5, 1.3];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_values() {
        let xs = [1000.0, 1000.0];
        let v = log_sum_exp(&xs);
        assert!((v - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        let v = log_sum_exp(&xs);
        assert!((v - (-1000.0 + 2.0_f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_handles_neg_inf_entries() {
        let xs = [f64::NEG_INFINITY, 0.0];
        assert!((log_sum_exp(&xs) - 0.0).abs() < 1e-12);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn arg_max_first_on_ties() {
        assert_eq!(arg_max(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(arg_max(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn arg_max_panics_on_empty() {
        arg_max(&[]);
    }

    #[test]
    fn vector_helpers() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }
}
