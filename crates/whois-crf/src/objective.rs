//! The training objective: regularized negative conditional
//! log-likelihood and its analytic gradient.
//!
//! For training data `{(x_r, y_r)}` the paper maximizes the
//! log-likelihood `L(θ) = Σ_r ln Pr_θ(y_r | x_r)` (eq. 4). We minimize the
//! equivalent *mean* negative log-likelihood with an L2 penalty:
//!
//! ```text
//! f(θ) = -(1/R) Σ_r [ score(x_r, y_r) - log Z(x_r) ] + (λ/2)‖θ‖²
//! ```
//!
//! The gradient (eq. 12 territory) is `expected - observed` feature counts,
//! obtained from the forward–backward marginals.
//!
//! Two implementations live here:
//!
//! * [`Objective`] — the production path, backed by
//!   [`TrainEngine`](crate::engine::TrainEngine): persistent workers,
//!   pooled scratch buffers, unique-line dedup, and observed counts
//!   precomputed once. Steady-state evaluations are allocation-free.
//! * [`NaiveObjective`] — the transparent reference implementation
//!   (allocating inference per record, observed counts re-derived every
//!   call, scoped threads re-spawned per evaluation). It is kept as the
//!   oracle for the engine's equivalence tests and as the baseline of the
//!   `crf_training` bench; don't optimize it.

use crate::engine::TrainEngine;
use crate::inference::{backward, edge_marginals, forward, node_marginals};
use crate::model::Crf;
use crate::sequence::Instance;

/// Evaluates `f(θ)` and `∇f(θ)` over a training set — engine-backed.
#[derive(Debug)]
pub struct Objective {
    engine: TrainEngine,
}

impl Objective {
    /// Create an objective.
    ///
    /// * `crf` — defines the model structure (state count, feature space,
    ///   pair eligibility); its current weights are irrelevant because
    ///   [`Objective::eval`] overwrites them.
    /// * `data` — compiled into the engine's per-worker shards; the
    ///   borrow ends when `new` returns.
    /// * `l2` — L2 regularization strength λ (≥ 0).
    /// * `threads` — worker count; `0` means use available parallelism.
    pub fn new(crf: Crf, data: &[Instance], l2: f64, threads: usize) -> Self {
        Objective {
            engine: TrainEngine::new(crf, data, l2, threads),
        }
    }

    /// [`Objective::new`] with an explicit SIMD kernel level (bit-exact
    /// across levels; the differential-testing/bench hook).
    pub fn with_kernel(
        crf: Crf,
        data: &[Instance],
        l2: f64,
        threads: usize,
        kernel: crate::kernels::KernelLevel,
    ) -> Self {
        Objective {
            engine: TrainEngine::with_kernel(crf, data, l2, threads, kernel),
        }
    }

    /// The SIMD kernel level the engine's accumulation loops run on.
    pub fn kernel_level(&self) -> crate::kernels::KernelLevel {
        self.engine.kernel_level()
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.engine.dim()
    }

    /// Number of training records.
    pub fn num_records(&self) -> usize {
        self.engine.num_records()
    }

    /// The model structure (with whatever weights were last evaluated).
    pub fn crf(&self) -> &Crf {
        self.engine.crf()
    }

    /// Consume the objective, returning the CRF with weights `w`
    /// installed (copied in place — no fresh `Vec<f64>`).
    pub fn into_crf(self, w: &[f64]) -> Crf {
        self.engine.take_crf(w)
    }

    /// Evaluate the objective value at `w`, writing `∇f(w)` into `grad`.
    ///
    /// Steady-state allocation-free; repeated calls at the same `w` are
    /// bit-identical.
    ///
    /// # Panics
    /// Panics if `w.len()` or `grad.len()` differ from [`Objective::dim`].
    pub fn eval(&mut self, w: &[f64], grad: &mut [f64]) -> f64 {
        self.engine.eval(w, grad)
    }

    /// Log-likelihood (mean, unregularized) of the data at `w` without
    /// computing a gradient. Used for reporting held-out likelihoods;
    /// runs parallel over the engine's shards.
    pub fn mean_log_likelihood(&mut self, w: &[f64]) -> f64 {
        self.engine.mean_log_likelihood(w)
    }
}

/// The reference implementation: correct, simple, slow. One allocating
/// forward–backward per record, observed counts re-derived per call,
/// scoped worker threads re-spawned per evaluation, and a full weight
/// clone per install — exactly what [`TrainEngine`] optimizes away.
pub struct NaiveObjective<'a> {
    crf: Crf,
    data: &'a [Instance],
    l2: f64,
    threads: usize,
}

impl<'a> NaiveObjective<'a> {
    /// Create a naive objective (same contract as [`Objective::new`]).
    pub fn new(crf: Crf, data: &'a [Instance], l2: f64, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        NaiveObjective {
            crf,
            data,
            l2,
            threads,
        }
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.crf.dim()
    }

    /// Evaluate the objective value at `w`, writing `∇f(w)` into `grad`.
    pub fn eval(&mut self, w: &[f64], grad: &mut [f64]) -> f64 {
        assert_eq!(w.len(), self.dim(), "weight dimension mismatch");
        assert_eq!(grad.len(), self.dim(), "gradient dimension mismatch");
        self.crf.set_weights(w.to_vec());
        let crf = &self.crf;
        let r = self.data.len().max(1) as f64;

        grad.fill(0.0);
        let mut total_ll = 0.0;

        let threads = self.threads.min(self.data.len().max(1));
        if threads <= 1 {
            total_ll = accumulate_chunk(crf, self.data, grad);
        } else {
            let chunk_size = self.data.len().div_ceil(threads);
            let results: Vec<(f64, Vec<f64>)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .data
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            let mut local = vec![0.0; crf.dim()];
                            let ll = accumulate_chunk(crf, chunk, &mut local);
                            (ll, local)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("gradient worker panicked");
            for (ll, local) in results {
                total_ll += ll;
                for (g, l) in grad.iter_mut().zip(&local) {
                    *g += l;
                }
            }
        }

        // Scale to mean NLL and add the L2 term.
        for (g, &wi) in grad.iter_mut().zip(w) {
            *g = *g / r + self.l2 * wi;
        }
        -total_ll / r + 0.5 * self.l2 * w.iter().map(|x| x * x).sum::<f64>()
    }

    /// Sequential, allocating mean log-likelihood.
    pub fn mean_log_likelihood(&mut self, w: &[f64]) -> f64 {
        self.crf.set_weights(w.to_vec());
        let crf = &self.crf;
        let r = self.data.len().max(1) as f64;
        let ll: f64 = self
            .data
            .iter()
            .map(|inst| {
                let table = crf.score_table(&inst.seq);
                let fwd = forward(&table);
                crf.path_score(&inst.seq, &inst.labels) - fwd.log_z
            })
            .sum();
        ll / r
    }
}

/// Accumulate `Σ ll_r` for a chunk and add `Σ (expected − observed)`
/// feature counts into `grad` (the gradient of the summed **negative**
/// log-likelihood, unscaled).
fn accumulate_chunk(crf: &Crf, chunk: &[Instance], grad: &mut [f64]) -> f64 {
    let n = crf.num_states();
    let mut ll = 0.0;
    for inst in chunk {
        if inst.is_empty() {
            continue;
        }
        let seq = &inst.seq;
        let table = crf.score_table(seq);
        let fwd = forward(&table);
        let beta = backward(&table);
        let nm = node_marginals(&table, &fwd, &beta);
        let em = edge_marginals(&table, &fwd, &beta);

        ll += crf.path_score(seq, &inst.labels) - fwd.log_z;

        for (t, feats) in seq.obs.iter().enumerate() {
            let gold = inst.labels[t];
            // Emission features: expected − observed.
            for &f in feats {
                let base = crf.emit_index(f, 0);
                for j in 0..n {
                    grad[base + j] += nm[t * n + j];
                }
                grad[base + gold] -= 1.0;
            }
            if t > 0 {
                let prev_gold = inst.labels[t - 1];
                let edges = &em[(t - 1) * n * n..t * n * n];
                // Transition features.
                for i in 0..n {
                    for j in 0..n {
                        grad[crf.trans_index(i, j)] += edges[i * n + j];
                    }
                }
                grad[crf.trans_index(prev_gold, gold)] -= 1.0;
                // Pair features.
                for &f in feats {
                    if let Some(base) = crf.pair_index(f, 0, 0) {
                        for (g, &e) in grad[base..base + n * n].iter_mut().zip(edges) {
                            *g += e;
                        }
                        let idx = crf.pair_index(f, prev_gold, gold).unwrap();
                        grad[idx] -= 1.0;
                    }
                }
            }
        }
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Sequence;

    fn toy_data() -> Vec<Instance> {
        vec![
            Instance::new(
                Sequence::new(vec![vec![0], vec![1], vec![0, 2]]),
                vec![0, 1, 1],
            ),
            Instance::new(Sequence::new(vec![vec![2], vec![0, 1]]), vec![1, 0]),
            Instance::new(Sequence::new(vec![vec![1]]), vec![0]),
        ]
    }

    fn toy_crf() -> Crf {
        Crf::new(2, 3, &[true, false, true])
    }

    #[test]
    fn zero_weights_objective_is_mean_log_num_paths() {
        // With θ = 0 every path has score 0, so -ll_r = T_r · ln n.
        let data = toy_data();
        let mut obj = Objective::new(toy_crf(), &data, 0.0, 1);
        let w = vec![0.0; obj.dim()];
        let mut g = vec![0.0; obj.dim()];
        let v = obj.eval(&w, &mut g);
        let expected = (3.0 + 2.0 + 1.0) * 2.0_f64.ln() / 3.0;
        assert!((v - expected).abs() < 1e-9);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = toy_data();
        let mut obj = Objective::new(toy_crf(), &data, 0.1, 1);
        let dim = obj.dim();
        let w: Vec<f64> = (0..dim)
            .map(|i| ((i * 13 % 7) as f64 - 3.0) * 0.1)
            .collect();
        let mut g = vec![0.0; dim];
        obj.eval(&w, &mut g);

        let eps = 1e-6;
        let mut scratch = vec![0.0; dim];
        for k in (0..dim).step_by(3) {
            let mut wp = w.clone();
            wp[k] += eps;
            let fp = obj.eval(&wp, &mut scratch);
            wp[k] -= 2.0 * eps;
            let fm = obj.eval(&wp, &mut scratch);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - g[k]).abs() < 1e-5,
                "param {k}: finite diff {fd} vs analytic {}",
                g[k]
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let data: Vec<Instance> = (0..20)
            .map(|r| {
                let t = 1 + r % 5;
                Instance::new(
                    Sequence::new((0..t).map(|p| vec![((r + p) % 3) as u32]).collect()),
                    (0..t).map(|p| (r + p) % 2).collect(),
                )
            })
            .collect();
        let mut serial = Objective::new(toy_crf(), &data, 0.05, 1);
        let mut parallel = Objective::new(toy_crf(), &data, 0.05, 4);
        let dim = serial.dim();
        let w: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.11).cos() * 0.3).collect();
        let mut gs = vec![0.0; dim];
        let mut gp = vec![0.0; dim];
        let vs = serial.eval(&w, &mut gs);
        let vp = parallel.eval(&w, &mut gp);
        assert!((vs - vp).abs() < 1e-10);
        for (a, b) in gs.iter().zip(&gp) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn engine_matches_naive_oracle() {
        let data: Vec<Instance> = (0..15)
            .map(|r| {
                let t = 1 + r % 4;
                Instance::new(
                    Sequence::new(
                        (0..t)
                            .map(|p| ((r + p) % 3..3).map(|f| f as u32).collect())
                            .collect(),
                    ),
                    (0..t).map(|p| (r + 2 * p) % 2).collect(),
                )
            })
            .collect();
        let dim = Objective::new(toy_crf(), &data, 0.0, 1).dim();
        let w: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.19).sin() * 0.4).collect();
        for threads in [1, 3] {
            let mut engine = Objective::new(toy_crf(), &data, 0.02, threads);
            let mut naive = NaiveObjective::new(toy_crf(), &data, 0.02, 1);
            let mut ge = vec![0.0; dim];
            let mut gn = vec![0.0; dim];
            let ve = engine.eval(&w, &mut ge);
            let vn = naive.eval(&w, &mut gn);
            assert!((ve - vn).abs() < 1e-9, "threads={threads}: {ve} vs {vn}");
            for (a, b) in ge.iter().zip(&gn) {
                assert!((a - b).abs() < 1e-9, "threads={threads}");
            }
            assert!((engine.mean_log_likelihood(&w) - naive.mean_log_likelihood(&w)).abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_evals_are_bit_identical() {
        let data = toy_data();
        for threads in [1, 2] {
            let mut obj = Objective::new(toy_crf(), &data, 0.1, threads);
            let dim = obj.dim();
            let w: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.7).sin()).collect();
            let mut g1 = vec![0.0; dim];
            let mut g2 = vec![0.0; dim];
            let v1 = obj.eval(&w, &mut g1);
            let v2 = obj.eval(&w, &mut g2);
            assert_eq!(v1.to_bits(), v2.to_bits(), "threads={threads}");
            for (a, b) in g1.iter().zip(&g2) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn l2_pulls_gradient_toward_weights() {
        let data = toy_data();
        let mut obj0 = Objective::new(toy_crf(), &data, 0.0, 1);
        let mut obj1 = Objective::new(toy_crf(), &data, 1.0, 1);
        let dim = obj0.dim();
        let w = vec![0.5; dim];
        let mut g0 = vec![0.0; dim];
        let mut g1 = vec![0.0; dim];
        let v0 = obj0.eval(&w, &mut g0);
        let v1 = obj1.eval(&w, &mut g1);
        assert!(v1 > v0, "penalty increases objective");
        for (a, b) in g0.iter().zip(&g1) {
            assert!((b - a - 0.5).abs() < 1e-9, "grad shifted by λw");
        }
    }

    #[test]
    fn empty_instances_are_skipped() {
        let data = vec![Instance::new(Sequence::default(), vec![])];
        let mut obj = Objective::new(toy_crf(), &data, 0.0, 1);
        let w = vec![0.0; obj.dim()];
        let mut g = vec![0.0; obj.dim()];
        let v = obj.eval(&w, &mut g);
        assert_eq!(v, 0.0);
        assert!(g.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mean_log_likelihood_matches_eval() {
        let data = toy_data();
        let mut obj = Objective::new(toy_crf(), &data, 0.0, 1);
        let dim = obj.dim();
        let w: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut g = vec![0.0; dim];
        let v = obj.eval(&w, &mut g);
        let ll = obj.mean_log_likelihood(&w);
        assert!((v + ll).abs() < 1e-10, "value is -mean ll when λ=0");
    }

    #[test]
    fn into_crf_installs_weights() {
        let data = toy_data();
        let obj = Objective::new(toy_crf(), &data, 0.0, 2);
        let dim = obj.dim();
        let w: Vec<f64> = (0..dim).map(|i| i as f64).collect();
        let crf = obj.into_crf(&w);
        assert_eq!(crf.weights(), w.as_slice());
    }
}
