//! Diagnostics: brute-force inference and gradient checking.
//!
//! These routines are exponential in the sequence length and exist to
//! validate the dynamic-programming implementations on tiny inputs. The
//! property-based tests in this crate (and the ablation benches in
//! `whois-bench`) use them as ground truth.
//!
//! Gradient verification is layered: [`crate::objective::NaiveObjective`]
//! is the transparent single-threaded oracle, and
//! [`engine_gradient_check`] runs finite differences **against the
//! optimized engine** — the path the optimizers actually evaluate — so a
//! dedup or scatter bug in the engine cannot hide behind a correct naive
//! implementation.

use crate::engine::TrainEngine;
use crate::model::Crf;
use crate::numerics::log_sum_exp;
use crate::sequence::{Instance, Sequence};

/// Enumerate every label sequence for a chain of length `len` over `n`
/// states, calling `visit(path)` for each.
pub fn enumerate_paths(n: usize, len: usize, mut visit: impl FnMut(&[usize])) {
    if len == 0 {
        visit(&[]);
        return;
    }
    let mut path = vec![0usize; len];
    loop {
        visit(&path);
        // Odometer increment.
        let mut t = 0;
        loop {
            path[t] += 1;
            if path[t] < n {
                break;
            }
            path[t] = 0;
            t += 1;
            if t == len {
                return;
            }
        }
    }
}

/// `log Z(x)` computed by summing over all `n^T` paths (eq. 3 literally).
pub fn brute_force_log_z(crf: &Crf, seq: &Sequence) -> f64 {
    let mut scores = Vec::new();
    enumerate_paths(crf.num_states(), seq.len(), |path| {
        scores.push(crf.path_score(seq, path));
    });
    log_sum_exp(&scores)
}

/// The argmax path found by exhaustive search (ties broken by enumeration
/// order, which matches Viterbi's first-index tie-breaking only when the
/// scores differ; tests should use distinct weights).
pub fn brute_force_viterbi(crf: &Crf, seq: &Sequence) -> (Vec<usize>, f64) {
    let mut best_score = f64::NEG_INFINITY;
    let mut best_path = Vec::new();
    enumerate_paths(crf.num_states(), seq.len(), |path| {
        let s = crf.path_score(seq, path);
        if s > best_score {
            best_score = s;
            best_path = path.to_vec();
        }
    });
    (best_path, best_score)
}

/// Central finite-difference gradient of `f` at `x`.
///
/// `f` may be evaluated many times; this is `O(dim)` evaluations.
pub fn finite_difference_grad<F>(mut f: F, x: &[f64], eps: f64) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    let mut grad = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for k in 0..x.len() {
        let orig = xp[k];
        xp[k] = orig + eps;
        let fp = f(&xp);
        xp[k] = orig - eps;
        let fm = f(&xp);
        xp[k] = orig;
        grad[k] = (fp - fm) / (2.0 * eps);
    }
    grad
}

/// Maximum absolute difference between two equal-length vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Finite-difference check of the **training engine's** gradient at `w`:
/// returns the maximum absolute deviation between the engine's analytic
/// gradient and a central finite difference of the engine's own
/// objective. `O(dim)` engine evaluations — tiny inputs only.
pub fn engine_gradient_check(
    crf: &Crf,
    data: &[Instance],
    l2: f64,
    threads: usize,
    w: &[f64],
    eps: f64,
) -> f64 {
    let mut engine = TrainEngine::new(crf.clone(), data, l2, threads);
    let dim = engine.dim();
    let mut grad = vec![0.0; dim];
    engine.eval(w, &mut grad);
    let mut scratch = vec![0.0; dim];
    let fd = finite_difference_grad(|x| engine.eval(x, &mut scratch), w, eps);
    max_abs_diff(&grad, &fd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{forward, viterbi};

    #[test]
    fn enumerate_counts_paths() {
        let mut count = 0;
        enumerate_paths(3, 4, |_| count += 1);
        assert_eq!(count, 81);
        let mut count = 0;
        enumerate_paths(5, 0, |p| {
            assert!(p.is_empty());
            count += 1;
        });
        assert_eq!(count, 1, "empty chain has exactly the empty path");
    }

    #[test]
    fn brute_force_agrees_with_dp() {
        let mut crf = Crf::new(3, 4, &[true, false, true, false]);
        let dim = crf.dim();
        crf.set_weights(
            (0..dim)
                .map(|i| ((i * 31 % 17) as f64 - 8.0) * 0.13)
                .collect(),
        );
        let seq = Sequence::new(vec![vec![0, 3], vec![1, 2], vec![0], vec![2, 3]]);
        let table = crf.score_table(&seq);
        let fwd = forward(&table);
        assert!((fwd.log_z - brute_force_log_z(&crf, &seq)).abs() < 1e-9);
        let (dp_path, dp_score) = viterbi(&table);
        let (bf_path, bf_score) = brute_force_viterbi(&crf, &seq);
        assert!((dp_score - bf_score).abs() < 1e-9);
        assert_eq!(dp_path, bf_path);
    }

    #[test]
    fn finite_difference_on_quadratic() {
        let grad = finite_difference_grad(|x| x[0] * x[0] + 3.0 * x[1], &[2.0, 5.0], 1e-5);
        assert!((grad[0] - 4.0).abs() < 1e-6);
        assert!((grad[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn engine_gradient_survives_finite_difference_check() {
        let crf = Crf::new(2, 3, &[true, false, true]);
        let data = vec![
            Instance::new(
                Sequence::new(vec![vec![0, 2], vec![1], vec![0, 2]]),
                vec![0, 1, 1],
            ),
            Instance::new(Sequence::new(vec![vec![1], vec![0, 1]]), vec![1, 0]),
            Instance::new(Sequence::default(), vec![]),
        ];
        let w: Vec<f64> = (0..crf.dim())
            .map(|i| (i as f64 * 0.23).sin() * 0.5)
            .collect();
        for threads in [1, 2] {
            let dev = engine_gradient_check(&crf, &data, 0.05, threads, &w, 1e-6);
            assert!(dev < 1e-6, "threads={threads}: max deviation {dev}");
        }
    }
}
