//! Encoded input sequences and training instances.
//!
//! The CRF is agnostic to the WHOIS domain: each position `t` of a sequence
//! carries the *dense ids* of the binary observation features that fire on
//! line `t` (the ids come from `whois-tokenize::Dictionary`). Feature ids
//! within a position must be sorted and unique, which `Dictionary::encode`
//! guarantees.

use serde::{Deserialize, Serialize};

/// An observation sequence: one sorted id-set of active features per
/// position.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequence {
    /// `obs[t]` = active observation-feature ids at position `t`.
    pub obs: Vec<Vec<u32>>,
}

impl Sequence {
    /// Build from per-position feature-id sets.
    pub fn new(obs: Vec<Vec<u32>>) -> Self {
        Sequence { obs }
    }

    /// Sequence length `T`.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// True for the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// The largest feature id appearing anywhere in the sequence, if any.
    pub fn max_feature_id(&self) -> Option<u32> {
        self.obs.iter().flatten().copied().max()
    }
}

/// A labeled training instance: an observation sequence plus its gold label
/// indices (each in `0..num_states`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// The observations.
    pub seq: Sequence,
    /// Gold labels, `labels.len() == seq.len()`.
    pub labels: Vec<usize>,
}

impl Instance {
    /// Build an instance.
    ///
    /// # Panics
    /// Panics if the label sequence length differs from the observation
    /// sequence length.
    pub fn new(seq: Sequence, labels: Vec<usize>) -> Self {
        assert_eq!(
            seq.len(),
            labels.len(),
            "labels must align with observations"
        );
        Instance { seq, labels }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for the empty instance.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_basics() {
        let s = Sequence::new(vec![vec![0, 3], vec![], vec![7]]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.max_feature_id(), Some(7));
        assert_eq!(Sequence::default().max_feature_id(), None);
    }

    #[test]
    fn instance_alignment_enforced() {
        let s = Sequence::new(vec![vec![1], vec![2]]);
        let i = Instance::new(s.clone(), vec![0, 1]);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
        let result = std::panic::catch_unwind(|| Instance::new(s, vec![0]));
        assert!(result.is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let i = Instance::new(Sequence::new(vec![vec![1, 2], vec![3]]), vec![1, 0]);
        let json = serde_json::to_string(&i).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
    }
}
