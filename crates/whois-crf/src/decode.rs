//! The compiled **fast decode tier**: pruned, quantized, SoA weights for
//! the uncached parse floor.
//!
//! Training and the bit-exact cached parse path work on the flat `f64`
//! parameter vector of [`Crf`] — the right layout for optimizers, the
//! wrong one for raw decode throughput. A [`DecodeModel`] is compiled
//! once per installed model and trades exactness for speed in three
//! controlled ways:
//!
//! 1. **Pruning** — emission stripes and pair blocks that are exactly
//!    zero in `f64` (features the trainer never moved, e.g. dictionary
//!    entries only seen in trimmed contexts) are dropped; their slots map
//!    to [`NO_SLOT`] and scoring skips them entirely. Pruning exactly-zero
//!    parameters cannot change any score.
//! 2. **Quantization** — surviving weights are rounded once to `f32`
//!    (structure-of-arrays: each feature's per-label stripe contiguous),
//!    halving memory traffic on the scoring gather.
//! 3. **Batched decoding** — [`viterbi_batch_into`](DecodeModel::viterbi_batch_into)
//!    decodes from *banks* of pre-scored unique-line rows (records score
//!    each distinct line context once), and reports the decode **margin**:
//!    the smallest score gap by which any on-path Viterbi decision won.
//!
//! Quantization is the only lossy step, and the margin bounds its blast
//! radius: a decision with gap `g` in `f32` can only disagree with the
//! `f64` decode if accumulated rounding error reaches `g/2`. Callers
//! compare the returned margin against a guard threshold (orders of
//! magnitude above worst-case rounding for WHOIS-sized records) and
//! re-decode on the exact engine when it is too close to call — ties
//! (margin 0) always fall back, so `f32` tie-breaking never decides a
//! label.

use crate::kernels::{self, KernelLevel};
use crate::model::Crf;

/// Sentinel offset: the feature has no compiled stripe/block (pruned,
/// or not pair-eligible).
pub const NO_SLOT: u32 = u32::MAX;

/// A [`Crf`] compiled for fast decoding: dense `f32` transitions, pruned
/// SoA emission stripes, pruned pair blocks. Immutable once compiled —
/// model hot swaps compile a fresh `DecodeModel` for the new engine.
#[derive(Clone, Debug)]
pub struct DecodeModel {
    n: usize,
    num_obs_features: usize,
    /// Dense base transition matrix, `n × n`.
    trans: Vec<f32>,
    /// Concatenated per-feature emission stripes (each `n` long), kept
    /// features only.
    stripes: Vec<f32>,
    /// Concatenated per-feature pair blocks (each `n²` long), kept
    /// pair-eligible features only.
    pair_blocks: Vec<f32>,
    /// Per feature id: element offset into `stripes`, or [`NO_SLOT`].
    emit_off: Vec<u32>,
    /// Per feature id: element offset into `pair_blocks`, or [`NO_SLOT`].
    pair_off: Vec<u32>,
    pruned_emit: usize,
    pruned_pair: usize,
    /// SIMD level resolved at compile time (bit-exact across levels; see
    /// [`crate::kernels`]).
    kernel: KernelLevel,
}

/// Reusable buffers for batched Viterbi decoding.
#[derive(Default, Debug)]
pub struct DecodeScratch {
    v: Vec<f32>,
    back: Vec<u32>,
    gap: Vec<f32>,
    best: Vec<f32>,
    second: Vec<f32>,
    /// The decoded state path of the last
    /// [`viterbi_batch_into`](DecodeModel::viterbi_batch_into) call.
    pub path: Vec<usize>,
}

impl DecodeScratch {
    /// New empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DecodeModel {
    /// Compile `crf` into the fast tier. `O(dim)` — run once per model
    /// install, not per record. Scoring and decoding run on the
    /// process-wide [`KernelLevel::active`] SIMD level.
    pub fn compile(crf: &Crf) -> Self {
        Self::compile_with_kernel(crf, KernelLevel::active())
    }

    /// Compile with an explicit kernel level — the differential-testing
    /// hook (levels are bit-exact, so this never changes output, only
    /// speed). Unsupported levels degrade to scalar.
    pub fn compile_with_kernel(crf: &Crf, kernel: KernelLevel) -> Self {
        let n = crf.num_states();
        let nn = n * n;
        let w = crf.weights();
        let trans: Vec<f32> = w[..nn].iter().map(|&x| x as f32).collect();

        let f_count = crf.num_obs_features();
        let mut stripes = Vec::new();
        let mut emit_off = Vec::with_capacity(f_count);
        let mut pruned_emit = 0usize;
        for f in 0..f_count as u32 {
            let base = crf.emit_index(f, 0);
            let stripe = &w[base..base + n];
            if stripe.iter().all(|&x| x == 0.0) {
                emit_off.push(NO_SLOT);
                pruned_emit += 1;
            } else {
                emit_off.push(stripes.len() as u32);
                stripes.extend(stripe.iter().map(|&x| x as f32));
            }
        }

        let mut pair_blocks = Vec::new();
        let mut pair_off = Vec::with_capacity(f_count);
        let mut pruned_pair = 0usize;
        for f in 0..f_count as u32 {
            match crf.pair_index(f, 0, 0) {
                None => pair_off.push(NO_SLOT),
                Some(base) => {
                    let block = &w[base..base + nn];
                    if block.iter().all(|&x| x == 0.0) {
                        pair_off.push(NO_SLOT);
                        pruned_pair += 1;
                    } else {
                        pair_off.push(pair_blocks.len() as u32);
                        pair_blocks.extend(block.iter().map(|&x| x as f32));
                    }
                }
            }
        }

        DecodeModel {
            n,
            num_obs_features: f_count,
            trans,
            stripes,
            pair_blocks,
            emit_off,
            pair_off,
            pruned_emit,
            pruned_pair,
            kernel,
        }
    }

    /// Number of states `n`.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// The SIMD kernel level this model scores and decodes with.
    pub fn kernel_level(&self) -> KernelLevel {
        self.kernel
    }

    /// Size of the observation-feature dictionary `F`.
    pub fn num_obs_features(&self) -> usize {
        self.num_obs_features
    }

    /// Emission stripes pruned as exactly zero.
    pub fn pruned_emissions(&self) -> usize {
        self.pruned_emit
    }

    /// Pair blocks pruned as exactly zero.
    pub fn pruned_pairs(&self) -> usize {
        self.pruned_pair
    }

    /// Element offset of feature `f`'s emission stripe in
    /// [`stripes`](Self::stripes), or [`NO_SLOT`] when pruned.
    #[inline]
    pub fn emit_offset(&self, f: u32) -> u32 {
        self.emit_off[f as usize]
    }

    /// Element offset of feature `f`'s pair block in
    /// [`pair_blocks`](Self::pair_blocks), or [`NO_SLOT`].
    #[inline]
    pub fn pair_offset(&self, f: u32) -> u32 {
        self.pair_off[f as usize]
    }

    /// The dense base transition matrix (`n × n`, row-major `[i*n + j]`).
    #[inline]
    pub fn base_trans(&self) -> &[f32] {
        &self.trans
    }

    /// The concatenated emission stripes (index with
    /// [`emit_offset`](Self::emit_offset)).
    #[inline]
    pub fn stripes(&self) -> &[f32] {
        &self.stripes
    }

    /// The concatenated pair blocks (index with
    /// [`pair_offset`](Self::pair_offset)).
    #[inline]
    pub fn pair_blocks(&self) -> &[f32] {
        &self.pair_blocks
    }

    /// Score one feature row: accumulate every feature's emission stripe
    /// into `emit` (length `n`, zeroed first) and, for pair-eligible
    /// features, its pair block on top of the base transitions in `edge`
    /// (length `n²`). The sparse-gather analogue of
    /// [`Crf::emission_row_into`] + [`Crf::edge_row_into`].
    pub fn score_row_into(&self, feats: &[u32], emit: &mut [f32], edge: &mut [f32]) {
        let n = self.n;
        debug_assert_eq!(emit.len(), n);
        debug_assert_eq!(edge.len(), n * n);
        emit.fill(0.0);
        edge.copy_from_slice(&self.trans);
        for &f in feats {
            self.add_feature(f, emit, edge);
        }
    }

    /// Accumulate one feature's stripe (and pair block, when eligible)
    /// into a row pair — the fused-scoring primitive for callers that
    /// stream features instead of materializing id rows.
    #[inline]
    pub fn add_feature(&self, f: u32, emit: &mut [f32], edge: &mut [f32]) {
        let off = self.emit_off[f as usize];
        if off != NO_SLOT {
            let stripe = &self.stripes[off as usize..off as usize + self.n];
            kernels::add_assign_f32(self.kernel, emit, stripe);
        }
        let poff = self.pair_off[f as usize];
        if poff != NO_SLOT {
            let block = &self.pair_blocks[poff as usize..poff as usize + self.n * self.n];
            kernels::add_assign_f32(self.kernel, edge, block);
        }
    }

    /// Batched Viterbi over pre-scored unique-line rows.
    ///
    /// `rows[t]` is the unique-row index of position `t`; position `t`'s
    /// emission potentials are `emit_bank[rows[t]*n ..][..n]` and (for
    /// `t ≥ 1`) its entering edge potentials are
    /// `edge_bank[rows[t]*n*n ..][..n²]` — the layout
    /// [`score_row_into`](Self::score_row_into) fills, one slot per
    /// distinct line context, shared by every position that repeats it.
    ///
    /// The decoded path lands in `scratch.path`; the return value is the
    /// decode margin: the minimum, over the final argmax and every
    /// on-path predecessor decision, of (best − second-best) score. A
    /// margin of `f32::INFINITY` means the decode could not have gone any
    /// other way (empty/single-state sequences); a margin of `0.0` means
    /// a tie was broken arbitrarily and the caller must not trust the
    /// path without re-decoding exactly.
    pub fn viterbi_batch_into(
        &self,
        emit_bank: &[f32],
        edge_bank: &[f32],
        rows: &[u32],
        scratch: &mut DecodeScratch,
    ) -> f32 {
        let n = self.n;
        let nn = n * n;
        let t_len = rows.len();
        scratch.path.clear();
        if t_len == 0 {
            return f32::INFINITY;
        }
        let v = &mut scratch.v;
        let back = &mut scratch.back;
        let gap = &mut scratch.gap;
        let best = &mut scratch.best;
        let second = &mut scratch.second;
        v.clear();
        v.resize(t_len * n, 0.0);
        back.clear();
        back.resize(t_len * n, 0);
        gap.clear();
        gap.resize(t_len * n, f32::INFINITY);
        best.clear();
        best.resize(n, 0.0);
        second.clear();
        second.resize(n, 0.0);

        let r0 = rows[0] as usize;
        v[..n].copy_from_slice(&emit_bank[r0 * n..r0 * n + n]);
        for t in 1..t_len {
            let r = rows[t] as usize;
            let edge = &edge_bank[r * nn..(r + 1) * nn];
            let emit = &emit_bank[r * n..r * n + n];
            let (prev_rows, cur_rows) = v.split_at_mut(t * n);
            let prev = &prev_rows[(t - 1) * n..];
            // One lane per target state j, predecessors i in ascending
            // order with first-max tie-breaking (mirroring
            // `numerics::arg_max`) — bit-identical in every kernel level.
            kernels::maxplus_step_f32(
                self.kernel,
                prev,
                edge,
                best,
                second,
                &mut back[t * n..(t + 1) * n],
            );
            let gap_row = &mut gap[t * n..(t + 1) * n];
            for j in 0..n {
                cur_rows[j] = best[j] + emit[j];
                gap_row[j] = best[j] - second[j]; // INFINITY when n == 1
            }
        }

        let last = &v[(t_len - 1) * n..];
        let mut state = 0usize;
        let mut best = last[0];
        let mut second = f32::NEG_INFINITY;
        for (j, &s) in last.iter().enumerate().skip(1) {
            if s > best {
                second = best;
                best = s;
                state = j;
            } else if s > second {
                second = s;
            }
        }
        let mut margin = best - second; // INFINITY when n == 1

        scratch.path.resize(t_len, 0);
        scratch.path[t_len - 1] = state;
        for t in (1..t_len).rev() {
            margin = margin.min(gap[t * n + state]);
            state = back[t * n + state] as usize;
            scratch.path[t - 1] = state;
        }
        margin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::viterbi;
    use crate::sequence::Sequence;

    /// Deterministic pseudo-random weights, some stripes forced to zero.
    fn model(n: usize, f_count: usize, zero_stripes: &[u32]) -> Crf {
        let pair: Vec<bool> = (0..f_count).map(|f| f % 3 == 0).collect();
        let mut m = Crf::new(n, f_count, &pair);
        let dim = m.dim();
        m.set_weights((0..dim).map(|i| ((i as f64) * 0.61).sin() * 2.3).collect());
        for &f in zero_stripes {
            for j in 0..n {
                let idx = m.emit_index(f, j);
                m.weights_mut()[idx] = 0.0;
            }
        }
        m
    }

    fn banks(dm: &DecodeModel, seq: &Sequence) -> (Vec<f32>, Vec<f32>, Vec<u32>) {
        let n = dm.num_states();
        let mut emit_bank = vec![0.0f32; seq.len() * n];
        let mut edge_bank = vec![0.0f32; seq.len() * n * n];
        let rows: Vec<u32> = (0..seq.len() as u32).collect();
        for (t, feats) in seq.obs.iter().enumerate() {
            let (e, g) = (
                &mut emit_bank[t * n..(t + 1) * n],
                &mut edge_bank[t * n * n..(t + 1) * n * n],
            );
            dm.score_row_into(feats, e, g);
        }
        (emit_bank, edge_bank, rows)
    }

    #[test]
    fn compile_prunes_zero_stripes_and_scores_match_f64_rows() {
        let m = model(3, 7, &[2, 5]);
        let dm = DecodeModel::compile(&m);
        assert_eq!(dm.pruned_emissions(), 2);
        assert_eq!(dm.emit_offset(2), NO_SLOT);
        assert_ne!(dm.emit_offset(1), NO_SLOT);
        // Non-pair-eligible features have no pair slot.
        assert_eq!(dm.pair_offset(1), NO_SLOT);
        assert_ne!(dm.pair_offset(3), NO_SLOT);

        let feats = vec![0u32, 2, 3, 5, 6];
        let n = m.num_states();
        let mut emit = vec![0.0f32; n];
        let mut edge = vec![0.0f32; n * n];
        dm.score_row_into(&feats, &mut emit, &mut edge);

        let mut emit64 = Vec::new();
        let mut edge64 = Vec::new();
        m.emission_row_into(&feats, &mut emit64);
        m.edge_row_into(&feats, &mut edge64);
        for (a, b) in emit.iter().zip(&emit64) {
            assert!((*a as f64 - b).abs() < 1e-5, "{a} vs {b}");
        }
        for (a, b) in edge.iter().zip(&edge64) {
            assert!((*a as f64 - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn batch_viterbi_matches_f64_viterbi_when_margin_is_comfortable() {
        let m = model(4, 9, &[1]);
        let dm = DecodeModel::compile(&m);
        let seq = Sequence::new(vec![
            vec![0, 2, 7],
            vec![3, 4],
            vec![],
            vec![0, 1, 2, 3, 8],
            vec![6],
            vec![3, 4],
        ]);
        let (emit_bank, edge_bank, rows) = banks(&dm, &seq);
        let mut scratch = DecodeScratch::new();
        let margin = dm.viterbi_batch_into(&emit_bank, &edge_bank, &rows, &mut scratch);
        let (want, _) = viterbi(&m.score_table(&seq));
        assert!(margin > 1e-3, "contrived-tie-free model: margin {margin}");
        assert_eq!(scratch.path, want);
    }

    #[test]
    fn repeated_rows_decode_like_repeated_positions() {
        let m = model(3, 6, &[]);
        let dm = DecodeModel::compile(&m);
        // Two distinct rows, pattern a-b-a-a-b.
        let seq = Sequence::new(vec![
            vec![0, 4],
            vec![1, 3],
            vec![0, 4],
            vec![0, 4],
            vec![1, 3],
        ]);
        let n = dm.num_states();
        let mut emit_bank = vec![0.0f32; 2 * n];
        let mut edge_bank = vec![0.0f32; 2 * n * n];
        {
            let (a, b) = emit_bank.split_at_mut(n);
            let (ga, gb) = edge_bank.split_at_mut(n * n);
            dm.score_row_into(&[0, 4], a, ga);
            dm.score_row_into(&[1, 3], b, gb);
        }
        let rows = vec![0u32, 1, 0, 0, 1];
        let mut scratch = DecodeScratch::new();
        let margin = dm.viterbi_batch_into(&emit_bank, &edge_bank, &rows, &mut scratch);
        let (want, _) = viterbi(&m.score_table(&seq));
        assert!(margin > 0.0);
        assert_eq!(scratch.path, want);
    }

    #[test]
    fn tied_scores_report_zero_margin() {
        // All-zero weights: every path scores 0, every decision ties.
        let m = Crf::without_pair_features(3, 2);
        let dm = DecodeModel::compile(&m);
        // All stripes are zero, hence pruned.
        assert_eq!(dm.pruned_emissions(), 2);
        let n = dm.num_states();
        let emit_bank = vec![0.0f32; 2 * n];
        let edge_bank = vec![0.0f32; 2 * n * n];
        let mut scratch = DecodeScratch::new();
        let margin = dm.viterbi_batch_into(&emit_bank, &edge_bank, &[0, 1], &mut scratch);
        assert_eq!(margin, 0.0, "ties must surface as zero margin");
    }

    #[test]
    fn single_position_and_empty_sequences() {
        let m = model(3, 4, &[]);
        let dm = DecodeModel::compile(&m);
        let n = dm.num_states();
        let mut emit = vec![0.0f32; n];
        let mut edge = vec![0.0f32; n * n];
        dm.score_row_into(&[1, 2], &mut emit, &mut edge);
        let mut scratch = DecodeScratch::new();
        let margin = dm.viterbi_batch_into(&emit, &edge, &[0], &mut scratch);
        let (want, _) = viterbi(&m.score_table(&Sequence::new(vec![vec![1, 2]])));
        assert_eq!(scratch.path, want);
        assert!(margin > 0.0);
        // Empty sequence: empty path, infinite margin.
        let margin = dm.viterbi_batch_into(&[], &[], &[], &mut scratch);
        assert!(scratch.path.is_empty());
        assert_eq!(margin, f32::INFINITY);
    }

    #[test]
    fn single_state_margin_is_infinite() {
        let m = Crf::without_pair_features(1, 2);
        let dm = DecodeModel::compile(&m);
        let emit_bank = vec![0.0f32; 3];
        let edge_bank = vec![0.0f32; 3];
        let mut scratch = DecodeScratch::new();
        let margin = dm.viterbi_batch_into(&emit_bank, &edge_bank, &[0, 1, 2], &mut scratch);
        assert_eq!(scratch.path, vec![0, 0, 0]);
        assert_eq!(margin, f32::INFINITY);
    }

    #[test]
    fn margin_lower_bounds_runner_up_gap() {
        // The margin never exceeds the gap between the best and any
        // alternative full path (it is a per-decision lower bound).
        let m = model(3, 5, &[]);
        let dm = DecodeModel::compile(&m);
        let seq = Sequence::new(vec![vec![0, 1], vec![2], vec![3, 4]]);
        let (emit_bank, edge_bank, rows) = banks(&dm, &seq);
        let mut scratch = DecodeScratch::new();
        let margin = dm.viterbi_batch_into(&emit_bank, &edge_bank, &rows, &mut scratch);
        let table = m.score_table(&seq);
        let best = table.path_score(&scratch.path);
        let mut runner_up = f64::NEG_INFINITY;
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let labels = [a, b, c];
                    if labels != scratch.path[..] {
                        runner_up = runner_up.max(table.path_score(&labels));
                    }
                }
            }
        }
        assert!(
            (margin as f64) <= best - runner_up + 1e-4,
            "margin {margin} vs path gap {}",
            best - runner_up
        );
    }
}
