//! # whois-crf
//!
//! A from-scratch **linear-chain conditional random field** — the
//! statistical model of *"Who is .com? Learning to Parse WHOIS Records"*
//! (IMC 2015, §3.1 and appendix A).
//!
//! The paper implemented its own CRF rather than using MALLET/CRF++, with a
//! specialized feature pipeline, stochastic gradient descent, and a
//! parallelized L-BFGS; this crate does the same:
//!
//! * **Model** ([`Crf`]): binary indicator features over
//!   `(y_t, x_t)` (emission), `(y_{t-1}, y_t)` (transition), and
//!   `(y_{t-1}, y_t, x_t)` (observed transition / "pair") tuples. Observation
//!   features arrive as pre-encoded dense ids (see `whois-tokenize`'s
//!   `Dictionary`), so the model itself is domain-agnostic.
//! * **Inference** ([`inference`]): log-space forward–backward for the
//!   partition function `Z(x)` and marginals, and Viterbi decoding with
//!   backtracking — both `O(n²T)` exactly as in appendix A.
//! * **Training** ([`objective`], [`engine`], [`lbfgs`], [`sgd`]): maximum
//!   conditional log-likelihood with L2 regularization. The objective and
//!   gradient are evaluated by a persistent [`TrainEngine`] — per-worker
//!   shards with interned unique lines, pooled scratch lattices, and
//!   observed feature counts precomputed once — mirroring the paper's
//!   parallelized L-BFGS; the optimizers are a limited-memory BFGS
//!   (two-loop recursion, Armijo backtracking) and a sparse SGD.
//! * **Kernels** ([`kernels`]): runtime-dispatched SIMD (SSE2/AVX2 via
//!   `std::arch`, with a portable scalar oracle) for the dense float
//!   loops shared by the fast decode tier and the training engine —
//!   bit-exact across levels by construction.
//! * **Diagnostics** ([`diagnostics`]): brute-force enumeration of tiny
//!   chains and finite-difference gradient checking, used heavily by the
//!   property-based test suite.
//!
//! The model serializes with `serde`, so trained parsers can be saved and
//! reloaded.

#![allow(clippy::needless_range_loop)] // index-based DP loops mirror the appendix-A math

pub mod decode;
pub mod diagnostics;
pub mod engine;
pub mod inference;
pub mod kernels;
pub mod lbfgs;
pub mod model;
pub mod numerics;
pub mod objective;
pub mod scaled;
pub mod scratch;
pub mod sequence;
pub mod sgd;
pub mod train;

pub use decode::{DecodeModel, DecodeScratch, NO_SLOT};
pub use engine::{TrainEngine, TrainScratch};
pub use inference::{
    backward, backward_into, edge_marginals, edge_marginals_into, forward, forward_into,
    node_marginals, node_marginals_into, viterbi, viterbi_into,
};
pub use kernels::KernelLevel;
pub use model::{Crf, ScoreTable};
pub use objective::{NaiveObjective, Objective};
pub use scratch::InferenceScratch;
pub use sequence::{Instance, Sequence};
pub use train::{train, train_warm, TrainConfig, TrainReport, TrainerKind};
