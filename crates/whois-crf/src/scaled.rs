//! Scaled (probability-domain) forward–backward — the classical
//! alternative to log-space inference.
//!
//! Instead of working with log-potentials and log-sum-exp, this variant
//! exponentiates the potentials once and normalizes each α row to sum to
//! 1, accumulating `log Z` from the per-row scale factors (Rabiner-style
//! scaling). It trades one `exp` per table entry for the removal of all
//! `ln`/`exp` calls from the inner recursion — the `crf_inference` bench
//! measures whether that wins.
//!
//! Both implementations must agree to floating-point accuracy; the
//! property tests enforce it.

use crate::model::ScoreTable;

/// Exponentiated potentials with per-row scaling.
#[derive(Clone, Debug)]
pub struct ScaledForward {
    /// Normalized α rows, `len × n` (each row sums to 1).
    pub alpha: Vec<f64>,
    /// `log Z(x)` accumulated from the scale factors.
    pub log_z: f64,
    /// Per-row log scale factors (needed by the scaled backward pass).
    pub log_scales: Vec<f64>,
}

/// Exponentiate the score table once (shared by forward and backward).
///
/// To avoid overflow the per-position emission maxima are subtracted
/// before exponentiation and re-added to `log Z` through the scale
/// accounting.
pub struct ExpTable {
    n: usize,
    len: usize,
    /// `exp(emit - rowmax)`, `len × n`.
    emit: Vec<f64>,
    /// Per-position emission maxima.
    emit_max: Vec<f64>,
    /// `exp(trans)`, `(len-1) × n × n`.
    trans: Vec<f64>,
}

impl ExpTable {
    /// Build from a score table.
    pub fn new(table: &ScoreTable) -> Self {
        let n = table.n;
        let len = table.len;
        let mut emit = vec![0.0; len * n];
        let mut emit_max = vec![0.0; len];
        for t in 0..len {
            let row = table.emit_at(t);
            let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            emit_max[t] = m;
            for j in 0..n {
                emit[t * n + j] = (row[j] - m).exp();
            }
        }
        let trans = table.trans.iter().map(|&x| x.exp()).collect();
        ExpTable {
            n,
            len,
            emit,
            emit_max,
            trans,
        }
    }
}

/// Scaled forward pass.
pub fn forward_scaled(exp: &ExpTable) -> ScaledForward {
    let n = exp.n;
    let len = exp.len;
    if len == 0 {
        return ScaledForward {
            alpha: Vec::new(),
            log_z: 0.0,
            log_scales: Vec::new(),
        };
    }
    let mut alpha = vec![0.0; len * n];
    let mut log_scales = vec![0.0; len];
    let mut log_z = 0.0;

    // t = 0.
    let mut norm = 0.0;
    for j in 0..n {
        alpha[j] = exp.emit[j];
        norm += alpha[j];
    }
    for j in 0..n {
        alpha[j] /= norm;
    }
    log_scales[0] = norm.ln() + exp.emit_max[0];
    log_z += log_scales[0];

    for t in 1..len {
        let edge = &exp.trans[(t - 1) * n * n..t * n * n];
        let mut norm = 0.0;
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..n {
                s += alpha[(t - 1) * n + i] * edge[i * n + j];
            }
            let v = s * exp.emit[t * n + j];
            alpha[t * n + j] = v;
            norm += v;
        }
        for j in 0..n {
            alpha[t * n + j] /= norm;
        }
        log_scales[t] = norm.ln() + exp.emit_max[t];
        log_z += log_scales[t];
    }

    ScaledForward {
        alpha,
        log_z,
        log_scales,
    }
}

/// Scaled backward pass; returns β rows scaled by the same factors as the
/// forward pass (so `alpha[t] .* beta[t]` are the node marginals directly).
pub fn backward_scaled(exp: &ExpTable, fwd: &ScaledForward) -> Vec<f64> {
    let n = exp.n;
    let len = exp.len;
    if len == 0 {
        return Vec::new();
    }
    let mut beta = vec![0.0; len * n];
    for i in 0..n {
        beta[(len - 1) * n + i] = 1.0;
    }
    for t in (0..len - 1).rev() {
        let edge = &exp.trans[t * n * n..(t + 1) * n * n];
        // Scale this row by the forward scale of t+1 (excluding emit_max,
        // which is folded into exp.emit already).
        let scale = (fwd.log_scales[t + 1] - exp.emit_max[t + 1]).exp();
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += edge[i * n + j] * exp.emit[(t + 1) * n + j] * beta[(t + 1) * n + j];
            }
            beta[t * n + i] = s / scale;
        }
    }
    beta
}

/// Node marginals from the scaled quantities.
pub fn node_marginals_scaled(fwd: &ScaledForward, beta: &[f64], n: usize) -> Vec<f64> {
    let len = beta.len() / n.max(1);
    let mut out = vec![0.0; beta.len()];
    for t in 0..len {
        let mut norm = 0.0;
        for j in 0..n {
            let v = fwd.alpha[t * n + j] * beta[t * n + j];
            out[t * n + j] = v;
            norm += v;
        }
        // Normalize defensively (scales cancel analytically; this absorbs
        // floating-point drift).
        if norm > 0.0 {
            for j in 0..n {
                out[t * n + j] /= norm;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{backward, forward, node_marginals};
    use crate::model::Crf;
    use crate::sequence::Sequence;

    fn model_and_seq(scale: f64) -> (Crf, Sequence) {
        let mut m = Crf::new(4, 6, &[true, false, true, false, true, false]);
        let dim = m.dim();
        m.set_weights(
            (0..dim)
                .map(|i| ((i as f64) * 0.618).sin() * scale)
                .collect(),
        );
        let seq = Sequence::new(vec![
            vec![0, 3],
            vec![1, 2, 5],
            vec![4],
            vec![0, 1, 2],
            vec![3, 5],
        ]);
        (m, seq)
    }

    #[test]
    fn scaled_log_z_matches_log_space() {
        for scale in [0.1, 1.0, 5.0] {
            let (m, seq) = model_and_seq(scale);
            let table = m.score_table(&seq);
            let log_fwd = forward(&table);
            let exp = ExpTable::new(&table);
            let scaled = forward_scaled(&exp);
            assert!(
                (log_fwd.log_z - scaled.log_z).abs() < 1e-9,
                "scale {scale}: {} vs {}",
                log_fwd.log_z,
                scaled.log_z
            );
        }
    }

    #[test]
    fn scaled_marginals_match_log_space() {
        let (m, seq) = model_and_seq(2.0);
        let table = m.score_table(&seq);
        let log_fwd = forward(&table);
        let log_beta = backward(&table);
        let expected = node_marginals(&table, &log_fwd, &log_beta);

        let exp = ExpTable::new(&table);
        let fwd = forward_scaled(&exp);
        let beta = backward_scaled(&exp, &fwd);
        let got = node_marginals_scaled(&fwd, &beta, table.n);
        for (a, b) in expected.iter().zip(&got) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn scaled_alpha_rows_are_normalized() {
        let (m, seq) = model_and_seq(1.0);
        let table = m.score_table(&seq);
        let exp = ExpTable::new(&table);
        let fwd = forward_scaled(&exp);
        for t in 0..seq.len() {
            let s: f64 = fwd.alpha[t * 4..(t + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_sequence_is_benign() {
        let (m, _) = model_and_seq(1.0);
        let table = m.score_table(&Sequence::default());
        let exp = ExpTable::new(&table);
        let fwd = forward_scaled(&exp);
        assert_eq!(fwd.log_z, 0.0);
        assert!(backward_scaled(&exp, &fwd).is_empty());
    }

    #[test]
    fn scaled_survives_large_potentials() {
        // Potentials of ±40 would overflow naive exponentiation of path
        // scores; row scaling keeps everything finite.
        let (m, seq) = model_and_seq(40.0);
        let table = m.score_table(&seq);
        let log_fwd = forward(&table);
        let exp = ExpTable::new(&table);
        let scaled = forward_scaled(&exp);
        assert!(scaled.log_z.is_finite());
        assert!(
            (log_fwd.log_z - scaled.log_z).abs() < 1e-6 * log_fwd.log_z.abs().max(1.0),
            "{} vs {}",
            log_fwd.log_z,
            scaled.log_z
        );
    }
}
