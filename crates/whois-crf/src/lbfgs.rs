//! Limited-memory BFGS (L-BFGS) minimizer.
//!
//! The paper estimates its CRF parameters with "iterative, gradient-based
//! methods such as L-BFGS" [Nocedal & Wright], using a modified
//! implementation that runs the gradient in parallel. This is a standard
//! two-loop-recursion L-BFGS with Armijo backtracking line search, written
//! against a simple closure interface so it can minimize any smooth
//! function of `R^d` — in practice the [`crate::objective::Objective`],
//! whose gradient is already parallel.

use crate::numerics::{axpy, dot, l2_norm};

/// Configuration for [`minimize`].
#[derive(Clone, Debug)]
pub struct LbfgsConfig {
    /// History size `m` (number of curvature pairs kept).
    pub memory: usize,
    /// Maximum number of iterations (gradient evaluations may exceed this
    /// due to line search).
    pub max_iters: usize,
    /// Stop when `‖∇f‖ / max(1, ‖x‖)` falls below this.
    pub grad_tol: f64,
    /// Stop when the relative objective decrease falls below this.
    pub obj_tol: f64,
    /// Armijo sufficient-decrease constant `c₁`.
    pub armijo_c1: f64,
    /// Line-search backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Maximum backtracking steps per iteration.
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            memory: 10,
            max_iters: 200,
            grad_tol: 1e-5,
            obj_tol: 1e-8,
            armijo_c1: 1e-4,
            backtrack: 0.5,
            max_line_search: 40,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Gradient norm fell below `grad_tol`.
    GradientConverged,
    /// Relative objective change fell below `obj_tol`.
    ObjectiveConverged,
    /// `max_iters` reached.
    MaxIterations,
    /// The line search could not find a decreasing step (the gradient may
    /// be inconsistent with the objective, or we are at numerical
    /// precision).
    LineSearchFailed,
}

/// Result of a minimization run.
#[derive(Clone, Debug)]
pub struct LbfgsResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Gradient norm at `x`.
    pub grad_norm: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Total objective/gradient evaluations.
    pub evaluations: usize,
    /// Why optimization stopped.
    pub stop: StopReason,
}

/// Minimize `f` starting from `x0`.
///
/// `f(x, grad)` must write `∇f(x)` into `grad` and return `f(x)`.
pub fn minimize<F>(mut f: F, x0: Vec<f64>, cfg: &LbfgsConfig) -> LbfgsResult
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let dim = x0.len();
    let mut x = x0;
    let mut grad = vec![0.0; dim];
    let mut value = f(&x, &mut grad);
    let mut evaluations = 1;

    // Curvature history (s_k = x_{k+1} - x_k, y_k = g_{k+1} - g_k).
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    let mut direction = vec![0.0; dim];
    let mut x_new = vec![0.0; dim];
    let mut grad_new = vec![0.0; dim];

    for iter in 0..cfg.max_iters {
        let gnorm = l2_norm(&grad);
        if gnorm / l2_norm(&x).max(1.0) < cfg.grad_tol {
            return LbfgsResult {
                x,
                value,
                grad_norm: gnorm,
                iterations: iter,
                evaluations,
                stop: StopReason::GradientConverged,
            };
        }

        // Two-loop recursion: direction = -H·grad.
        direction.copy_from_slice(&grad);
        let k = s_hist.len();
        let mut alphas = vec![0.0; k];
        for i in (0..k).rev() {
            alphas[i] = rho_hist[i] * dot(&s_hist[i], &direction);
            axpy(-alphas[i], &y_hist[i], &mut direction);
        }
        if k > 0 {
            // Initial Hessian scaling γ = sᵀy / yᵀy.
            let last = k - 1;
            let gamma = dot(&s_hist[last], &y_hist[last]) / dot(&y_hist[last], &y_hist[last]);
            for d in direction.iter_mut() {
                *d *= gamma;
            }
        }
        for i in 0..k {
            let beta = rho_hist[i] * dot(&y_hist[i], &direction);
            axpy(alphas[i] - beta, &s_hist[i], &mut direction);
        }
        for d in direction.iter_mut() {
            *d = -*d;
        }

        // Ensure a descent direction; fall back to steepest descent.
        let mut dir_dot_grad = dot(&direction, &grad);
        if dir_dot_grad >= 0.0 {
            for (d, g) in direction.iter_mut().zip(&grad) {
                *d = -g;
            }
            dir_dot_grad = -dot(&grad, &grad);
        }

        // Backtracking Armijo line search.
        let mut step = if k == 0 { (1.0 / gnorm).min(1.0) } else { 1.0 };
        let mut found = false;
        let mut value_new = value;
        for _ in 0..cfg.max_line_search {
            for ((xn, &xi), &di) in x_new.iter_mut().zip(&x).zip(&direction) {
                *xn = xi + step * di;
            }
            value_new = f(&x_new, &mut grad_new);
            evaluations += 1;
            if value_new <= value + cfg.armijo_c1 * step * dir_dot_grad {
                found = true;
                break;
            }
            step *= cfg.backtrack;
        }
        if !found {
            return LbfgsResult {
                x,
                value,
                grad_norm: gnorm,
                iterations: iter,
                evaluations,
                stop: StopReason::LineSearchFailed,
            };
        }

        // Update curvature history.
        let mut s = vec![0.0; dim];
        for ((si, &xn), &xi) in s.iter_mut().zip(&x_new).zip(&x) {
            *si = xn - xi;
        }
        let mut y = vec![0.0; dim];
        for ((yi, &gn), &gi) in y.iter_mut().zip(&grad_new).zip(&grad) {
            *yi = gn - gi;
        }
        let ys = dot(&y, &s);
        if ys > 1e-10 {
            if s_hist.len() == cfg.memory {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / ys);
            s_hist.push(s);
            y_hist.push(y);
        }

        let rel_decrease = (value - value_new).abs() / value.abs().max(1.0);
        x.copy_from_slice(&x_new);
        grad.copy_from_slice(&grad_new);
        value = value_new;

        if rel_decrease < cfg.obj_tol {
            return LbfgsResult {
                grad_norm: l2_norm(&grad),
                x,
                value,
                iterations: iter + 1,
                evaluations,
                stop: StopReason::ObjectiveConverged,
            };
        }
    }

    LbfgsResult {
        grad_norm: l2_norm(&grad),
        x,
        value,
        iterations: cfg.max_iters,
        evaluations,
        stop: StopReason::MaxIterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_exactly() {
        // f(x) = ½ Σ a_i (x_i - c_i)², minimum at c.
        let a = [1.0, 10.0, 0.5];
        let c = [3.0, -2.0, 7.0];
        let result = minimize(
            |x, g| {
                let mut v = 0.0;
                for i in 0..3 {
                    g[i] = a[i] * (x[i] - c[i]);
                    v += 0.5 * a[i] * (x[i] - c[i]).powi(2);
                }
                v
            },
            vec![0.0; 3],
            &LbfgsConfig::default(),
        );
        for i in 0..3 {
            assert!(
                (result.x[i] - c[i]).abs() < 1e-4,
                "dim {i}: {}",
                result.x[i]
            );
        }
        assert!(result.value < 1e-8);
        assert!(matches!(
            result.stop,
            StopReason::GradientConverged | StopReason::ObjectiveConverged
        ));
    }

    #[test]
    fn minimizes_rosenbrock() {
        let result = minimize(
            |x, g| {
                let (a, b) = (1.0, 100.0);
                g[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
                g[1] = 2.0 * b * (x[1] - x[0] * x[0]);
                (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2)
            },
            vec![-1.2, 1.0],
            &LbfgsConfig {
                max_iters: 500,
                obj_tol: 1e-14,
                ..Default::default()
            },
        );
        assert!(
            (result.x[0] - 1.0).abs() < 1e-3 && (result.x[1] - 1.0).abs() < 1e-3,
            "converged to {:?} after {} iters ({:?})",
            result.x,
            result.iterations,
            result.stop
        );
    }

    #[test]
    fn converges_in_few_iterations_on_convex_logistic() {
        // 1-D logistic-style convex function: f(x) = ln(1 + e^x) - 0.3 x.
        let result = minimize(
            |x, g| {
                let s = 1.0 / (1.0 + (-x[0]).exp());
                g[0] = s - 0.3;
                (1.0 + x[0].exp()).ln() - 0.3 * x[0]
            },
            vec![5.0],
            &LbfgsConfig::default(),
        );
        // Minimum where sigmoid(x) = 0.3 → x = ln(0.3/0.7).
        let expected = (0.3_f64 / 0.7).ln();
        assert!((result.x[0] - expected).abs() < 1e-4);
        assert!(result.iterations < 50);
    }

    #[test]
    fn respects_max_iters() {
        let cfg = LbfgsConfig {
            max_iters: 2,
            grad_tol: 0.0,
            obj_tol: 0.0,
            ..Default::default()
        };
        let result = minimize(
            |x, g| {
                g[0] = 2.0 * x[0];
                x[0] * x[0]
            },
            vec![100.0],
            &cfg,
        );
        assert_eq!(result.stop, StopReason::MaxIterations);
        assert_eq!(result.iterations, 2);
    }

    #[test]
    fn already_at_minimum_stops_immediately() {
        let result = minimize(
            |x, g| {
                g[0] = 2.0 * x[0];
                x[0] * x[0]
            },
            vec![0.0],
            &LbfgsConfig::default(),
        );
        assert_eq!(result.stop, StopReason::GradientConverged);
        assert_eq!(result.iterations, 0);
        assert_eq!(result.evaluations, 1);
    }
}
