//! High-level training entry point.
//!
//! Wraps the two optimizers behind one configuration type so callers
//! (the WHOIS parser, the benches) can switch between the paper's L-BFGS
//! and SGD without caring about their internals. The L-BFGS path
//! evaluates its objective through the persistent
//! [`crate::engine::TrainEngine`]: workers, interned line shards, and
//! scratch lattices are built once per `train` call and reused across
//! every optimizer iteration.

use crate::lbfgs::{self, LbfgsConfig, StopReason};
use crate::model::Crf;
use crate::objective::Objective;
use crate::sequence::Instance;
use crate::sgd::{train_sgd, SgdConfig};
use std::time::Instant;

/// Which optimizer to run.
#[derive(Clone, Debug)]
pub enum TrainerKind {
    /// Batch L-BFGS over the full (parallelized) objective.
    Lbfgs(LbfgsConfig),
    /// Stochastic gradient descent.
    Sgd(SgdConfig),
}

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// L2 regularization strength λ. For [`TrainerKind::Sgd`] this
    /// overrides the λ inside the SGD config so both paths share one knob.
    pub l2: f64,
    /// Worker threads for the batch objective (`0` = all cores).
    pub threads: usize,
    /// The optimizer.
    pub kind: TrainerKind,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            l2: 1e-3,
            threads: 0,
            kind: TrainerKind::Lbfgs(LbfgsConfig::default()),
        }
    }
}

impl TrainConfig {
    /// Default SGD configuration (10 epochs).
    pub fn sgd() -> Self {
        TrainConfig {
            l2: 1e-4,
            threads: 0,
            kind: TrainerKind::Sgd(SgdConfig::default()),
        }
    }

    /// Configuration for the §5.3 maintenance loop: a short, bounded
    /// L-BFGS refinement intended to run warm from the incumbent's
    /// weights (see [`train_warm`]). The iteration cap keeps a
    /// background retrain from monopolizing cores; from a good starting
    /// point the objective typically converges well before it.
    pub fn incremental() -> Self {
        TrainConfig {
            l2: 1e-3,
            threads: 0,
            kind: TrainerKind::Lbfgs(LbfgsConfig {
                max_iters: 40,
                ..LbfgsConfig::default()
            }),
        }
    }
}

/// Summary of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Final value of the (regularized, mean) objective — for SGD this is
    /// the online NLL estimate of the last epoch.
    pub final_objective: f64,
    /// Optimizer iterations (L-BFGS) or gradient steps (SGD).
    pub iterations: usize,
    /// Whether the optimizer reported convergence (always `true` for SGD,
    /// which runs a fixed number of epochs).
    pub converged: bool,
    /// Wall-clock training time in seconds.
    pub seconds: f64,
}

/// Train `crf` in place on `data`.
///
/// Returns a [`TrainReport`]. Training an empty dataset is a no-op that
/// reports zero iterations.
pub fn train(crf: &mut Crf, data: &[Instance], cfg: &TrainConfig) -> TrainReport {
    let start = Instant::now();
    if data.is_empty() {
        return TrainReport {
            final_objective: 0.0,
            iterations: 0,
            converged: true,
            seconds: start.elapsed().as_secs_f64(),
        };
    }
    match &cfg.kind {
        TrainerKind::Lbfgs(lcfg) => {
            let mut obj = Objective::new(crf.clone(), data, cfg.l2, cfg.threads);
            let x0 = crf.weights().to_vec();
            let result = lbfgs::minimize(|w, g| obj.eval(w, g), x0, lcfg);
            crf.set_weights(result.x);
            TrainReport {
                final_objective: result.value,
                iterations: result.iterations,
                converged: matches!(
                    result.stop,
                    StopReason::GradientConverged | StopReason::ObjectiveConverged
                ),
                seconds: start.elapsed().as_secs_f64(),
            }
        }
        TrainerKind::Sgd(scfg) => {
            let mut scfg = scfg.clone();
            scfg.l2 = cfg.l2;
            let report = train_sgd(crf, data, &scfg);
            TrainReport {
                final_objective: report.final_mean_nll,
                iterations: report.steps,
                converged: true,
                seconds: start.elapsed().as_secs_f64(),
            }
        }
    }
}

/// Warm-start training entry point for the continual-learning loop:
/// seed `crf` with `base_weights` (the incumbent model's weights), then
/// run [`train`] from that point. This makes the §5.3 "add the examples
/// and retrain" step explicit — a drifted-schema refit starts from
/// everything the incumbent already knows instead of from zero, so a
/// bounded [`TrainConfig::incremental`] run suffices.
///
/// # Panics
/// Panics if `base_weights` does not match the CRF's dimension.
pub fn train_warm(
    crf: &mut Crf,
    base_weights: &[f64],
    data: &[Instance],
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(
        base_weights.len(),
        crf.dim(),
        "warm-start weights must match the CRF dimension"
    );
    crf.set_weights(base_weights.to_vec());
    train(crf, data, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::viterbi;
    use crate::sequence::Sequence;

    fn data() -> Vec<Instance> {
        let mut out = Vec::new();
        for _ in 0..10 {
            out.push(Instance::new(
                Sequence::new(vec![vec![0], vec![1], vec![2]]),
                vec![0, 1, 2],
            ));
            out.push(Instance::new(
                Sequence::new(vec![vec![2], vec![2]]),
                vec![2, 2],
            ));
        }
        out
    }

    #[test]
    fn lbfgs_training_fits_data() {
        let mut crf = Crf::without_pair_features(3, 3);
        let report = train(&mut crf, &data(), &TrainConfig::default());
        assert!(report.converged, "L-BFGS should converge on a toy task");
        assert!(report.iterations > 0);
        let (path, _) = viterbi(&crf.score_table(&Sequence::new(vec![vec![0], vec![1], vec![2]])));
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn sgd_training_fits_data() {
        let mut crf = Crf::without_pair_features(3, 3);
        let report = train(&mut crf, &data(), &TrainConfig::sgd());
        assert!(report.converged);
        let (path, _) = viterbi(&crf.score_table(&Sequence::new(vec![vec![2], vec![2]])));
        assert_eq!(path, vec![2, 2]);
    }

    #[test]
    fn both_optimizers_reach_similar_objectives() {
        let d = data();
        let mut a = Crf::without_pair_features(3, 3);
        let mut b = Crf::without_pair_features(3, 3);
        train(&mut a, &d, &TrainConfig::default());
        train(
            &mut b,
            &d,
            &TrainConfig {
                l2: 1e-3,
                threads: 1,
                kind: TrainerKind::Sgd(SgdConfig {
                    epochs: 50,
                    ..Default::default()
                }),
            },
        );
        let mut obj = Objective::new(a.clone(), &d, 1e-3, 1);
        let mut g = vec![0.0; a.dim()];
        let fa = obj.eval(a.weights(), &mut g);
        let fb = obj.eval(b.weights(), &mut g);
        assert!(
            (fa - fb).abs() < 0.1,
            "optimizers should approach the same convex optimum: {fa} vs {fb}"
        );
    }

    #[test]
    fn empty_data_is_noop() {
        let mut crf = Crf::without_pair_features(2, 2);
        let report = train(&mut crf, &[], &TrainConfig::default());
        assert_eq!(report.iterations, 0);
        assert!(report.converged);
        assert!(crf.weights().iter().all(|&w| w == 0.0));
    }

    #[test]
    fn warm_start_converges_faster_than_cold_on_a_refit() {
        // The §5.3 loop's key property: refitting from the incumbent's
        // weights takes fewer iterations than refitting from zero, and
        // both land on models that decode the task.
        let d = data();
        let mut incumbent = Crf::without_pair_features(3, 3);
        train(&mut incumbent, &d, &TrainConfig::default());
        let base = incumbent.weights().to_vec();

        let mut extended = d.clone();
        extended.push(Instance::new(Sequence::new(vec![vec![1]]), vec![1]));

        let mut warm = Crf::without_pair_features(3, 3);
        let warm_report = train_warm(&mut warm, &base, &extended, &TrainConfig::incremental());
        let mut cold = Crf::without_pair_features(3, 3);
        let cold_report = train(&mut cold, &extended, &TrainConfig::default());

        assert!(warm_report.converged, "warm refit should converge");
        assert!(
            warm_report.iterations <= cold_report.iterations,
            "warm start ({}) should need no more iterations than cold ({})",
            warm_report.iterations,
            cold_report.iterations
        );
        let (path, _) = viterbi(&warm.score_table(&Sequence::new(vec![vec![0], vec![1], vec![2]])));
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn warm_start_rejects_mismatched_weights() {
        let mut crf = Crf::without_pair_features(3, 3);
        train_warm(&mut crf, &[0.0; 3], &data(), &TrainConfig::default());
    }

    #[test]
    fn training_resumes_from_existing_weights() {
        // Incremental adaptation (§5.3): training again with more data
        // starts from the current weights rather than zero.
        let mut crf = Crf::without_pair_features(3, 3);
        train(&mut crf, &data(), &TrainConfig::default());
        let w1 = crf.weights().to_vec();
        // One more record with a new pattern; a short run should keep the
        // old behaviour and learn the new one.
        let mut extended = data();
        extended.push(Instance::new(Sequence::new(vec![vec![1]]), vec![1]));
        train(&mut crf, &extended, &TrainConfig::default());
        assert_ne!(crf.weights(), w1.as_slice());
        let (path, _) = viterbi(&crf.score_table(&Sequence::new(vec![vec![0], vec![1], vec![2]])));
        assert_eq!(path, vec![0, 1, 2]);
    }
}
