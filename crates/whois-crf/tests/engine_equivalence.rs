//! Property tests pinning [`whois_crf::TrainEngine`] (via the
//! engine-backed [`whois_crf::Objective`]) to the transparent
//! [`whois_crf::NaiveObjective`] oracle.
//!
//! The engine reorders work aggressively — unique-line dedup, per-shard
//! accumulation, sparse observed-count subtraction — so the two paths
//! share no code beyond the primitive DP kernels. Agreement within 1e-9
//! across random model shapes, corpora (including empty and single-line
//! records), worker counts, and L2 strengths is therefore strong
//! evidence that the optimizations are semantics-preserving.

use proptest::prelude::*;
use whois_crf::{Crf, Instance, NaiveObjective, Objective, Sequence};

const NUM_FEATURES: usize = 6;
/// Fixed pair-eligibility mask: a mix of pair-eligible and emission-only
/// features so both gradient blocks are exercised.
const PAIR_MASK: [bool; NUM_FEATURES] = [true, false, true, false, true, false];

/// Raw generated corpus: per record, per line, (feature ids, raw label).
/// Labels are normalized mod `n` at build time so the strategy does not
/// depend on the generated state count.
type RawCorpus = Vec<Vec<(Vec<u32>, usize)>>;

fn build_instances(raw: &RawCorpus, n: usize) -> Vec<Instance> {
    raw.iter()
        .map(|lines| {
            let obs: Vec<Vec<u32>> = lines.iter().map(|(feats, _)| feats.clone()).collect();
            let labels: Vec<usize> = lines.iter().map(|(_, raw)| raw % n).collect();
            Instance::new(Sequence::new(obs), labels)
        })
        .collect()
}

/// Deterministic pseudo-random weight vector from a seed.
fn weights_from_seed(dim: usize, seed: u64) -> Vec<f64> {
    (0..dim)
        .map(|i| (((i as f64) + 1.0) * ((seed % 997) as f64 + 1.0) * 0.618).sin() * 0.5)
        .collect()
}

fn raw_corpus_strategy() -> impl Strategy<Value = RawCorpus> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                proptest::collection::vec(0u32..NUM_FEATURES as u32, 0..4),
                0usize..8,
            ),
            0..6, // includes empty and single-line records
        ),
        0..7, // includes the empty corpus
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine objective and gradient equal the naive oracle within 1e-9,
    /// for every worker count, independent of L2 strength.
    #[test]
    fn engine_matches_naive_for_any_worker_count(
        raw in raw_corpus_strategy(),
        n in 2usize..=3,
        threads in 1usize..=4,
        l2_idx in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let l2 = [0.0, 0.1, 1.0][l2_idx];
        let data = build_instances(&raw, n);
        let crf = Crf::new(n, NUM_FEATURES, &PAIR_MASK);
        let w = weights_from_seed(crf.dim(), seed);

        let mut naive = NaiveObjective::new(crf.clone(), &data, l2, 1);
        let mut engine = Objective::new(crf, &data, l2, threads);

        let mut g_naive = vec![0.0; naive.dim()];
        let mut g_engine = vec![0.0; engine.dim()];
        let f_naive = naive.eval(&w, &mut g_naive);
        let f_engine = engine.eval(&w, &mut g_engine);

        prop_assert!(
            (f_naive - f_engine).abs() < 1e-9,
            "objective mismatch: naive {} vs engine {}", f_naive, f_engine
        );
        for (k, (a, b)) in g_naive.iter().zip(&g_engine).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-9,
                "gradient[{}] mismatch: naive {} vs engine {}", k, a, b
            );
        }

        let ll_naive = naive.mean_log_likelihood(&w);
        let ll_engine = engine.mean_log_likelihood(&w);
        prop_assert!(
            (ll_naive - ll_engine).abs() < 1e-9,
            "mean ll mismatch: naive {} vs engine {}", ll_naive, ll_engine
        );
    }

    /// Repeated engine evaluations at the same weights are bit-identical:
    /// shard partition, in-shard order, and reply merge order are all
    /// fixed, so not even floating-point reassociation can vary between
    /// calls.
    #[test]
    fn repeated_engine_evals_are_bit_identical(
        raw in raw_corpus_strategy(),
        n in 2usize..=3,
        threads in 1usize..=4,
        seed in 0u64..10_000,
    ) {
        let data = build_instances(&raw, n);
        let crf = Crf::new(n, NUM_FEATURES, &PAIR_MASK);
        let w = weights_from_seed(crf.dim(), seed);

        let mut engine = Objective::new(crf, &data, 0.3, threads);
        let mut g1 = vec![0.0; engine.dim()];
        let mut g2 = vec![0.0; engine.dim()];
        // Perturbed eval in between ensures scratch reuse can't leak
        // state from one evaluation into the next.
        let w_other = weights_from_seed(engine.dim(), seed ^ 0x5bd1e995);
        let f1 = engine.eval(&w, &mut g1);
        let _ = engine.eval(&w_other, &mut g2);
        let f2 = engine.eval(&w, &mut g2);

        prop_assert_eq!(f1.to_bits(), f2.to_bits(), "objective not bit-identical");
        for (k, (a, b)) in g1.iter().zip(&g2).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "gradient[{}] not bit-identical: {} vs {}", k, a, b
            );
        }
        let l1 = engine.mean_log_likelihood(&w);
        let l2_ = engine.mean_log_likelihood(&w);
        prop_assert_eq!(l1.to_bits(), l2_.to_bits(), "mean ll not bit-identical");
    }
}
