//! Property tests pinning every SIMD kernel level to the scalar oracle
//! **bit for bit**.
//!
//! The kernels in [`whois_crf::kernels`] are element-wise (one IEEE
//! rounding per slot in every level) or reproduce the scalar iteration
//! order exactly (the max-plus step), so SSE2/AVX2 must return the same
//! bits as scalar on every input — not merely close values. These tests
//! drive every dispatchable level over every remainder length from 0 to
//! twice the widest lane count (so full vectors, the 4-lane middle step,
//! and every scalar tail are all hit), with values drawn from finite
//! ranges that include denormals. Unsupported levels degrade to scalar
//! inside the dispatcher, so running all of [`KernelLevel::ALL`] is safe
//! on any host.

use proptest::prelude::*;
use whois_crf::kernels::{self, KernelLevel};

/// Finite `f32`s: moderate magnitudes plus positive/negative denormals
/// (and zeros), the rounding-hostile corner of the format.
fn val_f32() -> impl Strategy<Value = f32> {
    (0u8..3, -1e3f32..1e3f32, 0u32..0x0080_0000).prop_map(|(which, normal, denorm)| match which {
        0 => normal,
        1 => f32::from_bits(denorm),
        _ => f32::from_bits(denorm | 0x8000_0000),
    })
}

/// Finite `f64`s with denormals, mirroring [`val_f32`].
fn val_f64() -> impl Strategy<Value = f64> {
    (0u8..3, -1e3f64..1e3f64, 0u64..(1u64 << 52)).prop_map(|(which, normal, denorm)| match which {
        0 => normal,
        1 => f64::from_bits(denorm),
        _ => f64::from_bits(denorm | (1u64 << 63)),
    })
}

/// Two equal-length `f32` vectors covering every remainder length
/// 0..=2·(AVX2 f32 lanes) = 0..=16.
fn pair_f32() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (0usize..=16).prop_flat_map(|len| {
        (
            proptest::collection::vec(val_f32(), len),
            proptest::collection::vec(val_f32(), len),
        )
    })
}

/// Two equal-length `f64` vectors covering every remainder length
/// 0..=2·(AVX2 f64 lanes) = 0..=8.
fn pair_f64() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0usize..=8).prop_flat_map(|len| {
        (
            proptest::collection::vec(val_f64(), len),
            proptest::collection::vec(val_f64(), len),
        )
    })
}

fn bits32(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn bits64(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_assign_f32_is_bit_exact_at_every_level((acc, src) in pair_f32()) {
        let mut want = acc.clone();
        kernels::add_assign_f32(KernelLevel::Scalar, &mut want, &src);
        for &level in &KernelLevel::ALL {
            let mut got = acc.clone();
            kernels::add_assign_f32(level, &mut got, &src);
            prop_assert_eq!(bits32(&got), bits32(&want), "level {}", level.name());
        }
    }

    #[test]
    fn add_assign_f64_is_bit_exact_at_every_level((acc, src) in pair_f64()) {
        let mut want = acc.clone();
        kernels::add_assign_f64(KernelLevel::Scalar, &mut want, &src);
        for &level in &KernelLevel::ALL {
            let mut got = acc.clone();
            kernels::add_assign_f64(level, &mut got, &src);
            prop_assert_eq!(bits64(&got), bits64(&want), "level {}", level.name());
        }
    }

    #[test]
    fn scale_f64_is_bit_exact_at_every_level(
        (xs, _) in pair_f64(),
        s in val_f64(),
    ) {
        let mut want = xs.clone();
        kernels::scale_f64(KernelLevel::Scalar, &mut want, s);
        for &level in &KernelLevel::ALL {
            let mut got = xs.clone();
            kernels::scale_f64(level, &mut got, s);
            prop_assert_eq!(bits64(&got), bits64(&want), "level {}", level.name());
        }
    }

    #[test]
    fn finish_grad_f64_is_bit_exact_at_every_level(
        (grad, w) in pair_f64(),
        r in 1.0f64..1e6,
        l2 in 0.0f64..10.0,
    ) {
        let mut want = grad.clone();
        kernels::finish_grad_f64(KernelLevel::Scalar, &mut want, &w, r, l2);
        for &level in &KernelLevel::ALL {
            let mut got = grad.clone();
            kernels::finish_grad_f64(level, &mut got, &w, r, l2);
            prop_assert_eq!(bits64(&got), bits64(&want), "level {}", level.name());
        }
    }

    /// The max-plus step must match scalar in scores *and* in argmax
    /// backpointers — including the first-predecessor-wins tie rule —
    /// for every state count (full 8-lane vectors, the 4-lane step, and
    /// scalar tails). Duplicated values make ties common.
    #[test]
    fn maxplus_step_f32_is_bit_exact_at_every_level(
        n in 1usize..=19,
        seed_vals in proptest::collection::vec(val_f32(), 1..=8),
    ) {
        // Build prev (n) and edge (n·n) from a small value pool so
        // repeated entries force tie-breaking through the argmax.
        let prev: Vec<f32> = (0..n).map(|i| seed_vals[i % seed_vals.len()]).collect();
        let edge: Vec<f32> = (0..n * n)
            .map(|i| seed_vals[(i * 7 + 3) % seed_vals.len()])
            .collect();

        let mut want_best = vec![0.0f32; n];
        let mut want_second = vec![0.0f32; n];
        let mut want_back = vec![0u32; n];
        kernels::maxplus_step_f32(
            KernelLevel::Scalar,
            &prev,
            &edge,
            &mut want_best,
            &mut want_second,
            &mut want_back,
        );
        for &level in &KernelLevel::ALL {
            let mut best = vec![0.0f32; n];
            let mut second = vec![0.0f32; n];
            let mut back = vec![0u32; n];
            kernels::maxplus_step_f32(level, &prev, &edge, &mut best, &mut second, &mut back);
            prop_assert_eq!(bits32(&best), bits32(&want_best), "best, level {}", level.name());
            prop_assert_eq!(
                bits32(&second),
                bits32(&want_second),
                "second, level {}",
                level.name()
            );
            prop_assert_eq!(back.clone(), want_back.clone(), "back, level {}", level.name());
        }
    }
}
