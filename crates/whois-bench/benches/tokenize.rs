//! Tokenization throughput: line annotation and dictionary encoding
//! (the front half of the parse path, relevant to the "102M records"
//! feasibility claim).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use whois_bench::{corpus, first_level_examples};
use whois_parser::{Encoder, FeatureOptions};

fn bench_tokenize(c: &mut Criterion) {
    let domains = corpus(7, 300);
    let texts: Vec<String> = domains.iter().map(|d| d.rendered.text()).collect();
    let bytes: usize = texts.iter().map(String::len).sum();

    let mut group = c.benchmark_group("tokenize");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("annotate_300_records", |b| {
        b.iter(|| {
            let mut lines = 0usize;
            for t in &texts {
                lines += whois_tokenize::annotate_record(t).len();
            }
            lines
        })
    });

    let encoder = Encoder::fit(
        first_level_examples(&domains)
            .iter()
            .map(|e| e.text.as_str()),
        FeatureOptions::default(),
        2,
    );
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("encode_300_records", |b| {
        b.iter_batched(
            || texts.clone(),
            |texts| {
                let mut positions = 0usize;
                for t in &texts {
                    positions += encoder.encode_text(t).len();
                }
                positions
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_tokenize);
criterion_main!(benches);
