//! Crawl resilience under injected faults: coverage and throughput as
//! the fault rate climbs.
//!
//! The fault-tolerant crawl path (retries + salvage passes + per-server
//! circuit breakers) is supposed to buy coverage back from a lossy
//! network without giving up determinism. This bench runs the two-step
//! thin→thick pipeline over loopback [`whois_net::WhoisServer`] fleets
//! whose registry *and* registrars drop connections with probability
//! 0.0 / 0.1 / 0.3 (keyed deterministic fates, so a given seed always
//! produces the same fault pattern), at 1/2/4 workers.
//!
//! The summary (`results/BENCH_crawl_faults.json`) records domains/sec
//! and the achieved coverage per (drop rate, workers) cell.
//! `WHOIS_BENCH_SMOKE=1` swaps in a seconds-long correctness check:
//! fault-free crawls reach coverage 1.0, drop-rate-0.3 crawls still
//! clear 0.99, and two seeded faulty runs produce byte-identical
//! canonical summaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_bench::{corpus, kernel_level_name};
use whois_net::{
    BreakerConfig, Crawler, CrawlerConfig, FaultConfig, InMemoryStore, ServerConfig, WhoisClient,
    WhoisServer,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const DROP_RATES: [f64; 3] = [0.0, 0.1, 0.3];
/// Domains per measured crawl.
const ZONE_SIZE: usize = 60;

struct Fleet {
    _registry: WhoisServer,
    _registrars: Vec<WhoisServer>,
    registry_addr: std::net::SocketAddr,
    resolver: HashMap<String, std::net::SocketAddr>,
    zone: Vec<String>,
}

fn fleet(n: usize, drop_chance: f64, seed: u64) -> Fleet {
    let domains = corpus(29, n);
    let mut thin = InMemoryStore::new();
    let mut per_reg: HashMap<&str, InMemoryStore> = HashMap::new();
    for d in &domains {
        thin.insert(&d.facts.domain, d.thin_text());
        per_reg
            .entry(d.registrar.whois_server)
            .or_default()
            .insert(&d.facts.domain, d.rendered.text());
    }
    let cfg = |seed_offset: u64| ServerConfig {
        faults: FaultConfig {
            drop_chance,
            ..FaultConfig::none()
        },
        fault_seed: seed + seed_offset,
        ..Default::default()
    };
    let registry = WhoisServer::start(thin, cfg(0)).unwrap();
    let mut resolver = HashMap::new();
    let mut registrars = Vec::new();
    // Sort by host: HashMap order is randomized, and the per-registrar
    // seed offset must be stable for runs to be reproducible.
    let mut per_reg: Vec<_> = per_reg.into_iter().collect();
    per_reg.sort_by_key(|(host, _)| *host);
    for (i, (host, store)) in per_reg.into_iter().enumerate() {
        let server = WhoisServer::start(store, cfg(1 + i as u64)).unwrap();
        resolver.insert(host.to_string(), server.addr());
        registrars.push(server);
    }
    Fleet {
        registry_addr: registry.addr(),
        _registry: registry,
        _registrars: registrars,
        resolver,
        zone: domains.iter().map(|d| d.facts.domain.clone()).collect(),
    }
}

/// The fault-tolerant crawl config used throughout: tight pacing (this
/// is loopback), breakers on, two salvage passes.
fn crawler_cfg(workers: usize) -> CrawlerConfig {
    CrawlerConfig {
        workers,
        retries: 3,
        max_delay: Duration::from_millis(5),
        retry_pause: Duration::from_millis(1),
        client: WhoisClient {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            ..Default::default()
        },
        breaker: Some(BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(10),
        }),
        salvage_passes: 2,
        ..Default::default()
    }
}

fn run_crawl(fleet: &Fleet, workers: usize) -> whois_net::CrawlReport {
    let crawler = Arc::new(Crawler::new(
        fleet.registry_addr,
        fleet.resolver.clone(),
        crawler_cfg(workers),
    ));
    crawler.crawl(&fleet.zone)
}

/// `WHOIS_BENCH_SMOKE=1`: correctness, not speed — coverage holds up
/// under faults and seeded faulty crawls are reproducible.
fn smoke() {
    let clean = fleet(20, 0.0, 7);
    let report = run_crawl(&clean, 2);
    assert!(
        (report.coverage() - 1.0).abs() < 1e-9,
        "smoke: fault-free crawl must reach full coverage, got {}",
        report.coverage()
    );

    let faulty = fleet(20, 0.3, 7);
    let first = run_crawl(&faulty, 2);
    assert!(
        first.coverage() >= 0.99,
        "smoke: drop-rate-0.3 crawl must clear 0.99 coverage, got {}",
        first.coverage()
    );
    let again = fleet(20, 0.3, 7);
    let second = run_crawl(&again, 4);
    assert_eq!(
        first.canonical_summary(),
        second.canonical_summary(),
        "smoke: same seed must give byte-identical summaries across worker counts"
    );
    eprintln!("[crawl_faults] smoke ok: full fault-free coverage, >=0.99 faulty, reproducible");
}

fn bench_crawl_faults(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let mut group = c.benchmark_group("crawl_faults");
    group.sample_size(10);
    for drop_chance in DROP_RATES {
        let fleet = fleet(ZONE_SIZE, drop_chance, 7);
        group.throughput(Throughput::Elements(fleet.zone.len() as u64));
        let label = format!("drop_{drop_chance:.1}_w4");
        group.bench_function(BenchmarkId::new("crawl", label), |b| {
            b.iter(|| {
                let report = run_crawl(&fleet, 4);
                assert!(report.coverage() > 0.95, "coverage {}", report.coverage());
                report.results.len()
            })
        });
    }
    group.finish();

    write_summary();
}

/// Best-of-3 wall-clock domains/sec plus the (deterministic) coverage
/// for one (drop rate, workers) cell.
fn measure(drop_chance: f64, workers: usize) -> (f64, f64) {
    let fleet = fleet(ZONE_SIZE, drop_chance, 7);
    let coverage = run_crawl(&fleet, workers).coverage();
    let rate = (0..3)
        .map(|_| {
            let start = Instant::now();
            criterion::black_box(run_crawl(&fleet, workers));
            ZONE_SIZE as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max);
    (rate, coverage)
}

fn write_summary() {
    let mut entries = String::new();
    for drop_chance in DROP_RATES {
        for workers in WORKER_COUNTS {
            let (rate, coverage) = measure(drop_chance, workers);
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"drop_chance\": {drop_chance:.1}, \"workers\": {workers}, \
                 \"domains_per_sec\": {rate:.1}, \"coverage\": {coverage:.4}}}"
            ));
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"crawl_faults\",\n  \"zone_size\": {ZONE_SIZE},\n  \
         \"retries\": 3,\n  \"salvage_passes\": 2,\n  \"breaker_threshold\": 5,\n  \
         \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \"runs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_crawl_faults.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[crawl_faults] summary written to {path}"),
        Err(e) => eprintln!("[crawl_faults] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_crawl_faults);
criterion_main!(benches);
