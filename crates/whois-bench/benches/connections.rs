//! Connection scaling: how many concurrent sockets can one serving
//! core hold, and what does a pipelined sweep cost at each level?
//!
//! The event-loop core multiplexes every connection on a single
//! acceptor thread, so thousands of mostly-idle connections (the shape
//! of real WHOIS/abuse-pipeline clients: long-lived, bursty) should
//! cost file descriptors, not threads. This bench holds `conns` open
//! connections against a [`whois_serve::ParseService`] — a small
//! active set pipelines `depth` `PARSE` requests each, the rest sit
//! idle — and records wall-clock requests/sec plus the process thread
//! count mid-serve (from `/proc/self/status`). The blocking
//! thread-per-connection core runs at a small level for contrast.
//!
//! The client side is itself poller-driven (one thread for the whole
//! fleet, reusing [`whois_net::EventConn`]), so the bench measures the
//! server, not client thread-spawn overhead.
//!
//! Writes `results/BENCH_connections.json`. `WHOIS_BENCH_SMOKE=1`
//! swaps in a seconds-long correctness check: exact reply counts at a
//! few hundred connections, zero sheds/idle-closes, bounded threads.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_bench::{corpus, first_level_examples, kernel_level_name, second_level_examples};
use whois_net::event::{Interest, Poller};
use whois_net::{Chunk, EventConn, ServingMode};
use whois_parser::{ParserConfig, WhoisParser};
use whois_serve::{ModelRegistry, ParseService, ServeConfig};

/// Connection levels for the event loop (the paper-scale sweep).
const EVENT_LEVELS: [usize; 3] = [1024, 4096, 8192];
/// The blocking core's contrast level (a thread per connection — kept
/// small so the bench doesn't drown the host in threads).
const BLOCKING_LEVEL: usize = 256;
/// Connections actively pipelining during a sweep.
const ACTIVE: usize = 128;
/// Pipelined requests per active connection per sweep.
const DEPTH: usize = 10;

fn bench_parser() -> WhoisParser {
    let train = corpus(13, 60);
    WhoisParser::train(
        &first_level_examples(&train),
        &second_level_examples(&train),
        &ParserConfig::default(),
    )
}

fn start_service(mode: ServingMode) -> ParseService {
    let registry = Arc::new(ModelRegistry::new(bench_parser(), "bench", 1));
    ParseService::start(
        registry,
        ServeConfig {
            mode,
            workers: 1,
            queue_capacity: 1024,
            cache_capacity: 1 << 12,
            // Idle connections are the point here — keep the slowloris
            // guard well clear of the measurement window.
            read_timeout: Duration::from_secs(120),
            ..Default::default()
        },
        0,
    )
    .expect("start bench service")
}

/// `Threads:` from `/proc/self/status` (0 where unavailable).
fn thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse().ok())
        })
        .unwrap_or(0)
}

/// A fleet of persistent client connections driven by one poller
/// thread: `active` of them pipeline requests, the rest hold idle.
struct ClientFleet {
    poller: Poller,
    conns: Vec<EventConn>,
    active: usize,
    /// `depth` pre-encoded request lines, sent as one write.
    payload: Vec<u8>,
    depth: usize,
}

impl ClientFleet {
    fn connect(addr: SocketAddr, total: usize, active: usize, line: &str, depth: usize) -> Self {
        use std::os::unix::io::AsRawFd;
        let poller = Poller::new().expect("client poller");
        let mut conns = Vec::with_capacity(total);
        for token in 0..total {
            let stream = TcpStream::connect(addr).expect("connect");
            let conn = EventConn::new(stream, addr, token as u64, BytesMut::with_capacity(4096))
                .expect("wrap client conn");
            poller
                .register(conn.stream.as_raw_fd(), token as u64, Interest::READ)
                .expect("register client conn");
            conns.push(conn);
        }
        let payload = line.repeat(depth).into_bytes();
        ClientFleet {
            poller,
            conns,
            active,
            payload,
            depth,
        }
    }

    /// One pipelined sweep: every active connection sends `depth`
    /// requests in a single write and reads `depth` reply lines.
    /// Returns requests completed (panics on a stuck sweep).
    fn sweep(&mut self) -> u64 {
        use std::os::unix::io::AsRawFd;
        let mut remaining = vec![0usize; self.conns.len()];
        for (i, slot) in remaining.iter_mut().enumerate().take(self.active) {
            let c = &mut self.conns[i];
            c.queue(Chunk::Owned(self.payload.clone().into()));
            *slot = self.depth;
            // Try the whole write inline; fall back to writable events.
            let _ = c.flush();
            let want = if c.pending_out() > 0 {
                Interest::READ_WRITE
            } else {
                Interest::READ
            };
            let _ = self.poller.reregister(c.stream.as_raw_fd(), i as u64, want);
        }
        let mut outstanding: usize = self.active * self.depth;
        let mut events = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        let deadline = Instant::now() + Duration::from_secs(120);
        while outstanding > 0 {
            assert!(
                Instant::now() < deadline,
                "sweep stuck: {outstanding} replies outstanding"
            );
            events.clear();
            let _ = self
                .poller
                .wait(&mut events, Some(Duration::from_millis(100)));
            for ev in events.iter().copied() {
                let idx = ev.token as usize;
                let c = &mut self.conns[idx];
                if ev.writable && c.pending_out() > 0 {
                    let _ = c.flush();
                    if c.pending_out() == 0 {
                        let _ =
                            self.poller
                                .reregister(c.stream.as_raw_fd(), ev.token, Interest::READ);
                    }
                }
                if ev.readable {
                    let status = c.fill(&mut scratch).expect("client read");
                    // Replies are newline-terminated JSON lines; the
                    // content was verified in smoke/differential tests,
                    // so the sweep only counts terminators.
                    let got = c.buf.iter().filter(|&&b| b == b'\n').count();
                    c.buf.clear();
                    let got = got.min(remaining[idx]);
                    remaining[idx] -= got;
                    outstanding -= got;
                    assert!(!status.eof || remaining[idx] == 0, "server hung up early");
                }
            }
        }
        (self.active * self.depth) as u64
    }
}

/// Body every `PARSE` in the sweep carries: one cache entry serves the
/// whole fleet, so the bench measures the serving core, not the parser.
fn request_line() -> String {
    let req = whois_serve::Request::Parse(whois_serve::ParseRequest {
        domain: "bench.example.com".into(),
        text: "Domain Name: BENCH.EXAMPLE.COM\nRegistrar: Bench Registrar Inc.\n".into(),
    });
    format!("{}\n", req.encode())
}

struct LevelResult {
    mode: &'static str,
    conns: usize,
    requests_per_sec: f64,
    threads_during_serve: u64,
    sweeps: usize,
}

/// Hold `conns` connections against a fresh service in `mode`, run
/// `sweeps` pipelined sweeps, and report the best rate + thread count.
fn run_level(mode: ServingMode, conns: usize, sweeps: usize) -> LevelResult {
    let mut service = start_service(mode);
    let line = request_line();
    let mut fleet = ClientFleet::connect(service.addr(), conns, ACTIVE.min(conns), &line, DEPTH);

    // Wait for the server to see every connection (the gauges are the
    // handshake): the sweep then measures serving, not accepting.
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.stats().connections.open < conns as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let open = service.stats().connections.open;
    assert_eq!(open, conns as u64, "server never saw all connections");

    let mut best = 0.0f64;
    let mut threads = 0;
    for _ in 0..sweeps {
        let start = Instant::now();
        let requests = fleet.sweep();
        best = best.max(requests as f64 / start.elapsed().as_secs_f64());
        threads = threads.max(thread_count());
    }
    let stats = service.stats();
    assert_eq!(stats.sheds, 0, "bench queue must never shed");
    assert_eq!(stats.connections.idle_closed, 0, "no idle closes mid-bench");

    // Tear the fleet down before the service so per-connection threads
    // (blocking mode) exit on EOF instead of lingering into the next
    // level's thread counts.
    drop(fleet);
    let gone = Instant::now() + Duration::from_secs(30);
    while service.stats().connections.open > 0 && Instant::now() < gone {
        std::thread::sleep(Duration::from_millis(10));
    }
    service.shutdown();
    LevelResult {
        mode: match mode {
            ServingMode::EventLoop => "event",
            ServingMode::Blocking => "blocking",
        },
        conns,
        requests_per_sec: best,
        threads_during_serve: threads,
        sweeps,
    }
}

/// `WHOIS_BENCH_SMOKE=1`: correctness at a few hundred connections.
fn smoke() {
    let result = run_level(ServingMode::EventLoop, 256, 2);
    assert!(
        result.threads_during_serve < 64,
        "event loop must hold 256 conns with bounded threads, saw {}",
        result.threads_during_serve
    );
    let blocking = run_level(ServingMode::Blocking, 32, 1);
    eprintln!(
        "[connections] smoke ok: event 256 conns @ {:.0} req/s on {} threads; \
         blocking 32 conns on {} threads",
        result.requests_per_sec, result.threads_during_serve, blocking.threads_during_serve
    );
}

fn bench_connections(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    // Criterion timings at the smallest event level: setup once, each
    // iteration is one pipelined sweep over the held connections.
    {
        let service = start_service(ServingMode::EventLoop);
        let line = request_line();
        let mut fleet = ClientFleet::connect(service.addr(), 1024, ACTIVE, &line, DEPTH);
        let deadline = Instant::now() + Duration::from_secs(60);
        while service.stats().connections.open < 1024 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut group = c.benchmark_group("connections");
        group.sample_size(10);
        group.throughput(Throughput::Elements((ACTIVE * DEPTH) as u64));
        group.bench_function(BenchmarkId::new("event_pipelined_sweep", 1024), |b| {
            b.iter(|| fleet.sweep())
        });
        group.finish();
    }

    write_summary();
}

fn write_summary() {
    let mut results = Vec::new();
    for conns in EVENT_LEVELS {
        results.push(run_level(ServingMode::EventLoop, conns, 3));
    }
    results.push(run_level(ServingMode::Blocking, BLOCKING_LEVEL, 3));

    for r in &results {
        if r.mode == "event" && r.conns >= 1024 {
            assert!(
                r.threads_during_serve < 100,
                "event loop at {} conns must keep threads bounded, saw {}",
                r.conns,
                r.threads_during_serve
            );
        }
    }

    let entries: Vec<String> =
        results
            .iter()
            .map(|r| {
                format!(
                "    {{\"mode\": \"{}\", \"conns\": {}, \"active\": {}, \"pipeline_depth\": {}, \
                 \"sweeps\": {}, \"requests_per_sec\": {:.1}, \"threads_during_serve\": {}}}",
                r.mode, r.conns, ACTIVE.min(r.conns), DEPTH, r.sweeps, r.requests_per_sec,
                r.threads_during_serve
            )
            })
            .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"connections\",\n  \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \
         \"levels\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_connections.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[connections] summary written to {path}"),
        Err(e) => eprintln!("[connections] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_connections);
criterion_main!(benches);
