//! Batch parsing: the `ParseEngine` against the naive per-record loop.
//!
//! The engine wins twice: per-worker scratch reuse removes the per-record
//! feature/lattice allocations (visible even at 1 worker), and crossbeam
//! fan-out scales across cores (visible only when the machine has them).
//! Besides the criterion timings, the bench writes a machine-readable
//! summary to `results/BENCH_batch_parse.json` with the measured
//! records/sec per worker count and the speedup over the naive loop, so
//! runs on different hardware can be compared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Instant;
use whois_bench::*;
use whois_model::RawRecord;
use whois_parser::{ParseEngine, ParserConfig, WhoisParser};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn setup() -> (WhoisParser, Vec<RawRecord>) {
    let train = corpus(13, 300);
    let test = corpus(29, 300);
    let parser = WhoisParser::train(
        &first_level_examples(&train),
        &second_level_examples(&train),
        &ParserConfig::default(),
    );
    let raws = test.iter().map(|d| d.raw()).collect();
    (parser, raws)
}

fn bench_batch_parse(c: &mut Criterion) {
    let (parser, raws) = setup();

    let mut group = c.benchmark_group("batch_parse");
    group.sample_size(10);
    group.throughput(Throughput::Elements(raws.len() as u64));
    group.bench_function("naive_loop", |b| {
        b.iter(|| {
            raws.iter()
                .map(|r| parser.parse(r).has_registrant() as usize)
                .sum::<usize>()
        })
    });
    for workers in WORKER_COUNTS {
        let engine = ParseEngine::with_workers(parser.clone(), workers);
        group.bench_function(BenchmarkId::new("engine", workers), |b| {
            b.iter(|| engine.parse_batch(&raws).len())
        });
    }
    group.finish();

    write_summary(&parser, &raws);
}

/// Best-of-3 wall-clock records/sec for one run of `f`.
fn best_rate(records: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn write_summary(parser: &WhoisParser, raws: &[RawRecord]) {
    let naive = best_rate(raws.len(), || {
        for r in raws {
            criterion::black_box(parser.parse(r));
        }
    });
    let mut engine_entries = String::new();
    for workers in WORKER_COUNTS {
        let engine = ParseEngine::with_workers(parser.clone(), workers);
        let rate = best_rate(raws.len(), || {
            criterion::black_box(engine.parse_batch(raws));
        });
        if !engine_entries.is_empty() {
            engine_entries.push_str(",\n");
        }
        engine_entries.push_str(&format!(
            "    {{\"workers\": {workers}, \"records_per_sec\": {rate:.1}, \"speedup_vs_naive\": {:.3}}}",
            rate / naive
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"batch_parse\",\n  \"records\": {},\n  \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \
         \"naive_records_per_sec\": {naive:.1},\n  \"engine\": [\n{engine_entries}\n  ]\n}}\n",
        raws.len()
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_batch_parse.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[batch_parse] summary written to {path}"),
        Err(e) => eprintln!("[batch_parse] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_batch_parse);
criterion_main!(benches);
