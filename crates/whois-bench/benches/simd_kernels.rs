//! SIMD kernel levels: the same fast-decode and training workloads run
//! at every dispatchable [`KernelLevel`], scalar included.
//!
//! The kernels in `whois-crf::kernels` are bit-exact across levels by
//! construction, so this bench is pure speed: it compiles the fast tier
//! and the training objective per level via the explicit-level
//! constructors (`FastParser::compile_with_kernel` /
//! `Objective::with_kernel`) and reports records/sec and evals/sec per
//! level, plus each level's speedup over scalar, to
//! `results/BENCH_simd_kernels.json`. The `kernel` header field records
//! what runtime dispatch picked on this host (honoring
//! `WHOIS_FORCE_SCALAR=1`).
//!
//! `WHOIS_BENCH_SMOKE=1` swaps in a seconds-long correctness check:
//! every supported level's parse output and objective value/gradient
//! are bit-identical to scalar's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Instant;
use whois_bench::{corpus, first_level_examples, kernel_level_name, second_level_examples};
use whois_crf::{Crf, Instance, KernelLevel, Objective};
use whois_model::{Label, RawRecord};
use whois_parser::{
    DecodeCounters, DecodeTier, Encoder, FeatureOptions, LineCache, ParseEngine, ParserConfig,
    WhoisParser,
};

/// Records in the uniform decode corpus (every record distinct).
const CORPUS_RECORDS: usize = 1200;
const L2: f64 = 1e-3;

fn supported_levels() -> Vec<KernelLevel> {
    KernelLevel::ALL
        .into_iter()
        .filter(|l| l.is_supported())
        .collect()
}

fn trained_parser() -> WhoisParser {
    let train = corpus(13, 300);
    WhoisParser::train(
        &first_level_examples(&train),
        &second_level_examples(&train),
        &ParserConfig::default(),
    )
}

fn uniform_corpus(n: usize) -> Vec<RawRecord> {
    corpus(97, n).iter().map(|d| d.raw()).collect()
}

/// Uncached fast-tier engine pinned to one kernel level.
fn engine_at(parser: &WhoisParser, level: KernelLevel) -> ParseEngine {
    ParseEngine::with_decode_tier(
        parser.clone(),
        1,
        Arc::new(LineCache::disabled()),
        DecodeTier::Fast,
        Arc::new(DecodeCounters::new()),
    )
    .with_kernel_level(level)
}

/// Training objective inputs on the first-level feature space.
fn train_instances(seed: u64, n: usize) -> (Crf, Vec<Instance>) {
    let domains = corpus(seed, n);
    let examples = first_level_examples(&domains);
    let encoder = Encoder::fit(
        examples.iter().map(|e| e.text.as_str()),
        FeatureOptions::default(),
        1,
    );
    let crf = Crf::new(
        whois_model::BlockLabel::COUNT,
        encoder.dictionary().len(),
        &encoder.pair_eligibility(),
    );
    let data = examples
        .iter()
        .map(|e| {
            Instance::new(
                encoder.encode_text(&e.text),
                e.labels.iter().map(|l| l.index()).collect(),
            )
        })
        .collect();
    (crf, data)
}

fn weights(dim: usize) -> Vec<f64> {
    (0..dim).map(|i| ((i as f64) * 0.37).sin() * 0.1).collect()
}

/// `WHOIS_BENCH_SMOKE=1`: bit-identity across levels instead of speed.
fn smoke() {
    let parser = trained_parser();
    let records = uniform_corpus(60);
    let scalar = engine_at(&parser, KernelLevel::Scalar);
    let want = scalar.parse_batch(&records);
    let (crf, data) = train_instances(11, 12);
    let w = weights(crf.dim());
    let mut g_scalar = vec![0.0; crf.dim()];
    let mut obj_scalar = Objective::with_kernel(crf.clone(), &data, L2, 1, KernelLevel::Scalar);
    let f_scalar = obj_scalar.eval(&w, &mut g_scalar);
    for level in supported_levels() {
        let engine = engine_at(&parser, level);
        assert_eq!(
            engine.parse_batch(&records),
            want,
            "smoke: {} parse output must be bit-identical to scalar",
            level.name()
        );
        let mut g = vec![0.0; crf.dim()];
        let mut obj = Objective::with_kernel(crf.clone(), &data, L2, 1, level);
        let f = obj.eval(&w, &mut g);
        assert_eq!(
            f.to_bits(),
            f_scalar.to_bits(),
            "smoke: {} objective must be bit-identical to scalar",
            level.name()
        );
        for (i, (a, b)) in g.iter().zip(&g_scalar).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "smoke: {} gradient[{i}] must be bit-identical to scalar",
                level.name()
            );
        }
    }
    eprintln!(
        "[simd_kernels] smoke ok: {} levels bit-identical to scalar (active: {})",
        supported_levels().len(),
        kernel_level_name()
    );
}

fn bench_simd_kernels(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let parser = trained_parser();
    let records = uniform_corpus(CORPUS_RECORDS);
    let mut group = c.benchmark_group("simd_kernels");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    for level in supported_levels() {
        let engine = engine_at(&parser, level);
        group.bench_function(BenchmarkId::new("fast_decode", level.name()), |b| {
            b.iter(|| engine.parse_batch(&records).len())
        });
    }
    let (crf, data) = train_instances(11, 200);
    let w = weights(crf.dim());
    for level in supported_levels() {
        group.bench_function(BenchmarkId::new("engine_eval", level.name()), |b| {
            let mut obj = Objective::with_kernel(crf.clone(), &data, L2, 1, level);
            let mut g = vec![0.0; crf.dim()];
            b.iter(|| obj.eval(&w, &mut g))
        });
    }
    group.finish();

    write_summary(&parser);
}

/// Best-of-3 wall-clock rate for `units` of work per run, after warm-up.
fn best_rate(units: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            units as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn write_summary(parser: &WhoisParser) {
    let records = uniform_corpus(CORPUS_RECORDS);
    let (crf, data) = train_instances(11, 200);
    let w = weights(crf.dim());
    let evals = 5;

    let mut decode_rates = Vec::new();
    let mut eval_rates = Vec::new();
    for level in supported_levels() {
        let engine = engine_at(parser, level);
        decode_rates.push((
            level,
            best_rate(records.len(), || {
                criterion::black_box(engine.parse_batch(&records));
            }),
        ));
        let mut obj = Objective::with_kernel(crf.clone(), &data, L2, 1, level);
        let mut g = vec![0.0; crf.dim()];
        eval_rates.push((
            level,
            best_rate(evals, || {
                for _ in 0..evals {
                    criterion::black_box(obj.eval(&w, &mut g));
                }
            }),
        ));
    }
    let scalar_decode = decode_rates[0].1;
    let scalar_eval = eval_rates[0].1;
    let mut entries = String::new();
    for ((level, decode), (_, eval)) in decode_rates.iter().zip(&eval_rates) {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"level\": \"{}\", \"fast_decode_records_per_sec\": {decode:.1}, \
             \"decode_speedup_vs_scalar\": {:.3}, \"engine_evals_per_sec\": {eval:.2}, \
             \"eval_speedup_vs_scalar\": {:.3}}}",
            level.name(),
            decode / scalar_decode,
            eval / scalar_eval,
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"simd_kernels\",\n  \"records\": {CORPUS_RECORDS},\n  \
         \"train_records\": {},\n  \"dim\": {},\n  \"available_cores\": {cores},\n  \
         \"kernel\": \"{kernel}\",\n  \"levels\": [\n{entries}\n  ]\n}}\n",
        data.len(),
        crf.dim(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_simd_kernels.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[simd_kernels] summary written to {path}"),
        Err(e) => eprintln!("[simd_kernels] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_simd_kernels);
criterion_main!(benches);
