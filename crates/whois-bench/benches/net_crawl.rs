//! Crawl throughput over loopback TCP: the two-step thin→thick pipeline
//! in domains per second, with and without server-side rate limiting.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use whois_bench::corpus;
use whois_net::{
    Crawler, CrawlerConfig, InMemoryStore, RateLimitConfig, ServerConfig, WhoisServer,
};

struct Fleet {
    _registry: WhoisServer,
    _registrars: Vec<WhoisServer>,
    registry_addr: std::net::SocketAddr,
    resolver: HashMap<String, std::net::SocketAddr>,
    zone: Vec<String>,
}

fn fleet(n: usize, limited: bool) -> Fleet {
    let domains = corpus(29, n);
    let mut thin = InMemoryStore::new();
    let mut per_reg: HashMap<&str, InMemoryStore> = HashMap::new();
    for d in &domains {
        thin.insert(&d.facts.domain, d.thin_text());
        per_reg
            .entry(d.registrar.whois_server)
            .or_default()
            .insert(&d.facts.domain, d.rendered.text());
    }
    let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
    let mut resolver = HashMap::new();
    let mut registrars = Vec::new();
    for (host, store) in per_reg {
        let cfg = if limited {
            ServerConfig {
                rate_limit: RateLimitConfig {
                    burst: 16,
                    per_second: 2000.0,
                    penalty: Duration::from_millis(5),
                },
                ..Default::default()
            }
        } else {
            ServerConfig::default()
        };
        let server = WhoisServer::start(store, cfg).unwrap();
        resolver.insert(host.to_string(), server.addr());
        registrars.push(server);
    }
    Fleet {
        registry_addr: registry.addr(),
        _registry: registry,
        _registrars: registrars,
        resolver,
        zone: domains.iter().map(|d| d.facts.domain.clone()).collect(),
    }
}

fn bench_crawl(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_crawl");
    group.sample_size(10);

    let open = fleet(100, false);
    group.throughput(Throughput::Elements(open.zone.len() as u64));
    group.bench_function("crawl_100_domains_unlimited", |b| {
        b.iter(|| {
            let crawler = Arc::new(Crawler::new(
                open.registry_addr,
                open.resolver.clone(),
                CrawlerConfig {
                    workers: 4,
                    ..Default::default()
                },
            ));
            let report = crawler.crawl(&open.zone);
            assert!(report.coverage() > 0.85, "coverage {}", report.coverage());
            report.results.len()
        })
    });

    let limited = fleet(100, true);
    group.throughput(Throughput::Elements(limited.zone.len() as u64));
    group.bench_function("crawl_100_domains_rate_limited", |b| {
        b.iter(|| {
            let crawler = Arc::new(Crawler::new(
                limited.registry_addr,
                limited.resolver.clone(),
                CrawlerConfig {
                    workers: 4,
                    retry_pause: Duration::from_millis(8),
                    ..Default::default()
                },
            ));
            let report = crawler.crawl(&limited.zone);
            assert!(report.coverage() > 0.75, "coverage {}", report.coverage());
            report.results.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crawl);
criterion_main!(benches);
