//! The closed continual-learning loop under a schema-drift ramp:
//! accuracy before / during / after self-healing, and the serving-path
//! overhead of the drift monitor.
//!
//! The scenario mirrors `whois-serve/tests/drift_loop.rs` at full size:
//! a loop-enabled and a loop-disabled daemon serve the same traffic —
//! clean batches, then an abrupt ramp to 90% drift-mutated records
//! (§2.3's "large registrar modifying their schema significantly").
//! The loop detects the sustained low-confidence regime, queues the
//! offending records crash-safely, relabels them with the
//! rule/template baselines, refits from the incumbent's weights, gates
//! the candidate on the golden set, and hot-swaps. The summary
//! (`results/BENCH_drift_loop.json`) records per-phase field accuracy,
//! the recovery ratio, the wall-clock of the retrain cycle, and the
//! zero-dropped-request count for both daemons.
//!
//! The criterion group measures what the loop costs when nothing is
//! wrong: `observe_parse` on confident records (the drift monitor's
//! per-record serving overhead) and on low-confidence records (monitor
//! plus a crash-safe queue append).
//!
//! `WHOIS_BENCH_SMOKE=1` swaps in a seconds-long correctness run of the
//! same scenario: the loop must deploy exactly one gated retrain,
//! recover to ≥90% of pre-drift accuracy with zero dropped or failed
//! requests, and leave the baseline degraded. The smoke run writes the
//! same summary file.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_bench::kernel_level_name;
use whois_gen::corpus::{generate_corpus, DriftRamp, GenConfig};
use whois_model::{BlockLabel, Label, RegistrantLabel};
use whois_parser::{ParserConfig, TrainExample, WhoisParser};
use whois_serve::{
    ModelRegistry, ParseService, RetrainConfig, RetrainHub, RetrainOutcome, ServeClient,
    ServeConfig,
};
use whois_templates::TemplateParser;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("whois-drift-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn first_level(corpus: &[whois_gen::corpus::GeneratedDomain]) -> Vec<TrainExample<BlockLabel>> {
    corpus
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect()
}

fn train_parser(corpus: &[whois_gen::corpus::GeneratedDomain]) -> WhoisParser {
    let first = first_level(corpus);
    let second: Vec<TrainExample<RegistrantLabel>> = corpus
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            (!reg.is_empty()).then(|| TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    WhoisParser::train(&first, &second, &ParserConfig::default())
}

fn templates_from(corpus: &[whois_gen::corpus::GeneratedDomain]) -> TemplateParser {
    let mut templates = TemplateParser::new();
    for d in corpus {
        let text = d.rendered.text();
        let lines: Vec<&str> = whois_model::non_empty_lines(&text);
        templates.add_example(d.registrar.name, &lines, &d.block_labels().labels());
    }
    templates
}

/// Field accuracy of one served batch: the fraction of ground-truth
/// labeled lines the reply filed under the right block. Failed or
/// record-less replies count toward `failures`.
fn batch_accuracy(
    client: &mut ServeClient,
    docs: &[whois_gen::corpus::GeneratedDomain],
    failures: &mut u64,
) -> f64 {
    let mut lines = 0usize;
    let mut correct = 0usize;
    for d in docs {
        let text = d.rendered.text();
        let record = match client.parse(&d.facts.domain, &text) {
            Ok(reply) => match reply.record {
                Some(record) => record,
                None => {
                    *failures += 1;
                    continue;
                }
            },
            Err(_) => {
                *failures += 1;
                continue;
            }
        };
        let truth = d.block_labels();
        for (line, label) in truth.texts().iter().zip(truth.labels()) {
            lines += 1;
            if record
                .blocks
                .get(label.name())
                .is_some_and(|bucket| bucket.iter().any(|l| l == line))
            {
                correct += 1;
            }
        }
    }
    correct as f64 / lines.max(1) as f64
}

/// One full drift-ramp scenario at the given scale.
struct ScenarioResult {
    train_docs: usize,
    batch_size: usize,
    pre_drift: f64,
    degraded: f64,
    recovered: f64,
    baseline_after: f64,
    retrain_ms: f64,
    labeled: u64,
    queue_acked: u64,
    deployed: u64,
    looped_failures: u64,
    baseline_failures: u64,
    sheds: u64,
}

impl ScenarioResult {
    fn recovery_ratio(&self) -> f64 {
        self.recovered / self.pre_drift.max(1e-12)
    }
}

fn run_scenario(tag: &str, train_docs: usize, batch_size: usize) -> ScenarioResult {
    let dir = bench_dir(tag);
    let base_seed = 0x10_5EED;
    let clean = generate_corpus(GenConfig::new(base_seed, train_docs));
    let parser = train_parser(&clean);
    let golden = first_level(&generate_corpus(GenConfig::new(base_seed + 1, 30)));

    let cfg = RetrainConfig {
        window: 24,
        low_confidence: 0.8,
        drift_fraction: 0.5,
        min_batch: 8,
        max_batch: 96,
        // The scenario drives ticks by hand; park the background loop.
        interval: Duration::from_secs(3600),
        golden_first: golden,
        templates: templates_from(&clean),
        ..RetrainConfig::new(dir.clone())
    };

    let looped_registry = Arc::new(ModelRegistry::new(parser.clone(), "model-0001", 1));
    let mut looped = ParseService::start(
        looped_registry,
        ServeConfig {
            workers: 2,
            retrain: Some(cfg),
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let mut baseline = ParseService::start(
        Arc::new(ModelRegistry::new(parser, "model-0001", 1)),
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
        0,
    )
    .unwrap();
    let retrainer = looped.retrainer().expect("loop configured").clone();

    let mut looped_client = ServeClient::connect(looped.addr()).unwrap();
    let mut baseline_client = ServeClient::connect(baseline.addr()).unwrap();
    let mut looped_failures = 0u64;
    let mut baseline_failures = 0u64;

    let ramp = DriftRamp::new(2, 1, 0.9);
    let traffic = |batch: usize| -> Vec<whois_gen::corpus::GeneratedDomain> {
        generate_corpus(ramp.config_at(base_seed + 100, batch_size, batch))
    };

    // Clean traffic, then drift, then the timed retrain cycle, then
    // post-swap traffic.
    let mut pre_drift = 0.0;
    for batch in 0..2 {
        let docs = traffic(batch);
        pre_drift = batch_accuracy(&mut looped_client, &docs, &mut looped_failures);
        batch_accuracy(&mut baseline_client, &docs, &mut baseline_failures);
        retrainer.tick();
    }
    let mut degraded = 1.0f64;
    for batch in 2..5 {
        let docs = traffic(batch);
        let acc = batch_accuracy(&mut looped_client, &docs, &mut looped_failures);
        degraded = degraded.min(acc);
        batch_accuracy(&mut baseline_client, &docs, &mut baseline_failures);
    }
    let start = Instant::now();
    let outcome = retrainer.tick();
    let retrain_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        matches!(outcome, RetrainOutcome::Deployed(_)),
        "drift + full queue must produce a gated deploy, got {outcome:?}"
    );
    let mut recovered = 0.0;
    let mut baseline_after = 0.0;
    for batch in 5..7 {
        let docs = traffic(batch);
        recovered = batch_accuracy(&mut looped_client, &docs, &mut looped_failures);
        baseline_after = batch_accuracy(&mut baseline_client, &docs, &mut baseline_failures);
    }

    let snap = looped.retrain_hub().unwrap().snapshot();
    let sheds = looped_client.stats().unwrap().sheds;
    let result = ScenarioResult {
        train_docs,
        batch_size,
        pre_drift,
        degraded,
        recovered,
        baseline_after,
        retrain_ms,
        labeled: snap.labeled,
        queue_acked: snap.queue_acked,
        deployed: snap.deployed,
        looped_failures,
        baseline_failures,
        sheds,
    };
    drop(looped_client);
    drop(baseline_client);
    looped.shutdown();
    baseline.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn summary_entry(r: &ScenarioResult) -> String {
    format!(
        "    {{\"train_docs\": {}, \"batch_size\": {}, \
         \"pre_drift_accuracy\": {:.4}, \"degraded_accuracy\": {:.4}, \
         \"recovered_accuracy\": {:.4}, \"baseline_after_accuracy\": {:.4}, \
         \"recovery_ratio\": {:.4}, \"retrain_ms\": {:.1}, \
         \"labeled\": {}, \"queue_acked\": {}, \"deployed\": {}, \
         \"looped_failures\": {}, \"baseline_failures\": {}, \"sheds\": {}}}",
        r.train_docs,
        r.batch_size,
        r.pre_drift,
        r.degraded,
        r.recovered,
        r.baseline_after,
        r.recovery_ratio(),
        r.retrain_ms,
        r.labeled,
        r.queue_acked,
        r.deployed,
        r.looped_failures,
        r.baseline_failures,
        r.sheds,
    )
}

fn write_summary(results: &[ScenarioResult]) {
    let entries: Vec<String> = results.iter().map(summary_entry).collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"drift_loop\",\n  \"available_cores\": {cores},\n  \
         \"kernel\": \"{kernel}\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_drift_loop.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[drift_loop] summary written to {path}"),
        Err(e) => eprintln!("[drift_loop] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

/// The smoke run asserts the acceptance envelope on the small scale.
fn assert_scenario(r: &ScenarioResult) {
    assert!(
        r.pre_drift > 0.9,
        "clean traffic parses well: {}",
        r.pre_drift
    );
    assert_eq!(r.deployed, 1, "exactly one gated deploy");
    assert!(
        r.recovered >= 0.9 * r.pre_drift,
        "loop must recover to ≥90% of pre-drift accuracy: {} vs {}",
        r.recovered,
        r.pre_drift
    );
    assert!(
        r.baseline_after <= r.pre_drift - 0.05,
        "baseline stays degraded: {} vs pre-drift {}",
        r.baseline_after,
        r.pre_drift
    );
    assert!(
        r.recovered > r.baseline_after,
        "the loop must out-parse the baseline"
    );
    assert_eq!(r.looped_failures, 0, "zero dropped requests (looped)");
    assert_eq!(r.baseline_failures, 0, "zero dropped requests (baseline)");
    assert_eq!(r.sheds, 0, "zero sheds during the whole timeline");
}

fn smoke() {
    let result = run_scenario("smoke", 90, 40);
    assert_scenario(&result);
    write_summary(std::slice::from_ref(&result));
    eprintln!(
        "[drift_loop] smoke ok: recovery ratio {:.3} (pre {:.4} → degraded {:.4} → \
         recovered {:.4}), baseline stayed at {:.4}, 0 dropped requests",
        result.recovery_ratio(),
        result.pre_drift,
        result.degraded,
        result.recovered,
        result.baseline_after,
    );
}

fn bench_drift_loop(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    // Serving-path overhead of the hub when nothing is wrong: the
    // monitor alone (confident records) and monitor + crash-safe queue
    // append (low-confidence records).
    let dir = bench_dir("observe");
    let hub = RetrainHub::open(&RetrainConfig::new(dir.clone())).unwrap();
    let body = "Domain Name: EXAMPLE.COM\nRegistrar: Example Registrar, LLC\n";
    let mut group = c.benchmark_group("drift_loop");
    group.throughput(Throughput::Elements(1));
    group.bench_function("observe_confident", |b| {
        b.iter(|| hub.observe_parse("example.com", body, criterion::black_box(0.97)))
    });
    group.bench_function("observe_low_queued", |b| {
        b.iter(|| hub.observe_parse("example.com", body, criterion::black_box(0.05)))
    });
    group.finish();
    drop(hub);
    let _ = std::fs::remove_dir_all(&dir);

    // The macro summary: the full ramp scenario at two scales.
    let results = vec![
        run_scenario("sum-small", 90, 40),
        run_scenario("sum-large", 180, 80),
    ];
    write_summary(&results);
}

criterion_group!(benches, bench_drift_loop);
criterion_main!(benches);
