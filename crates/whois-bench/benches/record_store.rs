//! The disk tier's cost model: append (spill), lookup (disk hit),
//! recovery (reopen + index rebuild), and compaction.
//!
//! The record store sits under the serve cache, so its three hot
//! numbers are the spill cost a cache eviction pays, the lookup cost a
//! RAM miss pays, and the reopen cost a restart pays before it can
//! serve warm. Compaction is the background tax. This bench measures
//! all four on generated WHOIS bodies and writes
//! `results/BENCH_record_store.json` with records/sec and reopen
//! latency per store size. `WHOIS_BENCH_SMOKE=1` swaps in a
//! seconds-long correctness check: write → reopen → every record
//! survives byte-identical → compaction preserves the live set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::path::PathBuf;
use std::time::Instant;
use whois_bench::*;
use whois_store::{cache_key, RecordStore};

/// Records per measured store (summary mode sweeps multiples).
const STORE_RECORDS: usize = 2000;
const MODEL: &str = "bench-model";

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("whois-store-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Generated (domain, body, body_key) triples — realistic WHOIS record
/// shapes and sizes, not synthetic padding.
fn records(n: usize) -> Vec<(String, String, u64)> {
    corpus(31, n)
        .iter()
        .map(|d| {
            let domain = d.facts.domain.clone();
            let body = d.rendered.text();
            let key = cache_key(0, &domain, &body);
            (domain, body, key)
        })
        .collect()
}

/// Fill a fresh store: every body as a raw record, every serialized
/// "reply" as a parsed entry (the spill path writes both shapes).
fn fill(dir: &PathBuf, recs: &[(String, String, u64)]) -> RecordStore {
    let store = RecordStore::open_for_model(dir, MODEL, 0, false).unwrap();
    for (domain, body, key) in recs {
        store.put_raw(domain, body).unwrap();
        store.put_parsed(*key, body).unwrap();
    }
    store
}

/// `WHOIS_BENCH_SMOKE=1`: correctness, not speed — write, kill, reopen,
/// verify byte-identity, compact, verify again.
fn smoke() {
    let dir = bench_dir("smoke");
    let recs = records(150);
    {
        let store = fill(&dir, &recs);
        store.sync().unwrap();
    }
    let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
    for (domain, body, key) in &recs {
        assert_eq!(
            store.get_raw(domain).as_deref(),
            Some(body.as_str()),
            "smoke: raw record must survive reopen byte-identical"
        );
        assert_eq!(
            store.get_parsed(*key).as_deref(),
            Some(body.as_str()),
            "smoke: parsed record must survive reopen byte-identical"
        );
    }
    assert!(store.verify().ok(), "smoke: reopened store must verify");
    // Overwrite half the raw tier to create dead bytes, then compact.
    for (domain, _, _) in recs.iter().take(recs.len() / 2) {
        store.put_raw(domain, "Domain Name: REWRITTEN\n").unwrap();
    }
    let report = store.compact().unwrap();
    assert!(
        report.bytes_after <= report.bytes_before,
        "smoke: compaction must not grow the store"
    );
    for (domain, _, _) in recs.iter().take(recs.len() / 2) {
        assert_eq!(
            store.get_raw(domain).as_deref(),
            Some("Domain Name: REWRITTEN\n"),
            "smoke: compaction keeps last-write-wins values"
        );
    }
    assert!(store.verify().ok(), "smoke: compacted store must verify");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("[record_store] smoke ok: reopen byte-identical, compaction preserves live set");
}

fn bench_record_store(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let recs = records(STORE_RECORDS);

    let mut group = c.benchmark_group("record_store");
    group.sample_size(10);
    group.throughput(Throughput::Elements(recs.len() as u64));

    group.bench_function(BenchmarkId::new("append", recs.len()), |b| {
        b.iter_batched(
            || bench_dir("append"),
            |dir| {
                let store = fill(&dir, &recs);
                let n = store.stats().raw_entries;
                let _ = std::fs::remove_dir_all(&dir);
                n
            },
            criterion::BatchSize::PerIteration,
        )
    });

    let dir = bench_dir("lookup");
    let store = fill(&dir, &recs);
    group.bench_function(BenchmarkId::new("get_parsed", recs.len()), |b| {
        b.iter(|| {
            recs.iter()
                .map(|(_, _, key)| store.get_parsed(*key).map_or(0, |v| v.len()))
                .sum::<usize>()
        })
    });
    drop(store);
    group.bench_function(BenchmarkId::new("reopen", recs.len()), |b| {
        b.iter(|| {
            RecordStore::open_for_model(&dir, MODEL, 0, false)
                .unwrap()
                .stats()
                .raw_entries
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();

    write_summary();
}

/// Best-of-3 wall-clock records/sec for one run of `f` (after a
/// warm-up run).
fn best_rate(records: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn write_summary() {
    let mut entries = String::new();
    for scale in [1usize, 4] {
        let n = STORE_RECORDS * scale;
        let recs = records(n);

        // Append: records/sec to build a fresh store of n entries.
        let dir = bench_dir(&format!("sum-append-{n}"));
        let append_rate = {
            let start = Instant::now();
            let store = fill(&dir, &recs);
            let rate = n as f64 / start.elapsed().as_secs_f64();
            store.sync().unwrap();
            rate
        };
        let total_bytes = {
            let store = RecordStore::open_readonly(&dir).unwrap();
            store.stats().total_bytes
        };

        // Lookup: warm-index get_parsed sweep.
        let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
        let get_rate = best_rate(n, || {
            let total: usize = recs
                .iter()
                .map(|(_, _, key)| store.get_parsed(*key).map_or(0, |v| v.len()))
                .sum();
            criterion::black_box(total);
        });
        drop(store);

        // Reopen: the restart tax — segment scan + index rebuild.
        let mut reopen_ms = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
            reopen_ms = reopen_ms.min(start.elapsed().as_secs_f64() * 1e3);
            criterion::black_box(store.stats().raw_entries);
        }

        // Compaction: overwrite half the raw tier, then rewrite.
        let store = RecordStore::open_for_model(&dir, MODEL, 0, false).unwrap();
        for (domain, _, _) in recs.iter().take(n / 2) {
            store.put_raw(domain, "Domain Name: REWRITTEN\n").unwrap();
        }
        let start = Instant::now();
        let report = store.compact().unwrap();
        let compact_ms = start.elapsed().as_secs_f64() * 1e3;
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);

        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"records\": {n}, \"store_bytes\": {total_bytes}, \
             \"append_records_per_sec\": {append_rate:.1}, \
             \"get_parsed_records_per_sec\": {get_rate:.1}, \
             \"reopen_ms\": {reopen_ms:.2}, \
             \"compact_ms\": {compact_ms:.2}, \
             \"compact_bytes_before\": {}, \"compact_bytes_after\": {}}}",
            report.bytes_before, report.bytes_after,
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"record_store\",\n  \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \
         \"sync\": false,\n  \"runs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_record_store.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[record_store] summary written to {path}"),
        Err(e) => eprintln!("[record_store] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_record_store);
criterion_main!(benches);
