//! The parse *service* against the raw parse engine: what does serving
//! over loopback TCP cost, and what does the result cache buy back?
//!
//! Three measured paths, all over the same test corpus:
//!
//! - `uncached_engine`: `ParseEngine::parse_batch` in-process — the
//!   library ceiling, no wire, no cache.
//! - `service cold`: every request is a cache miss (first sweep).
//! - `service warm`: every request is a cache hit (repeat sweeps) — the
//!   steady state for the repeated-domain workloads WHOIS consumers
//!   actually run (abuse pipelines re-checking the same zones).
//!
//! Besides criterion timings, writes `results/BENCH_parse_service.json`
//! with cold/warm records/sec at 1/2/4 service workers, the measured
//! cache-hit rate over the repeated corpus, and the warm speedup over
//! the uncached engine. `WHOIS_BENCH_SMOKE=1` swaps in a seconds-long
//! correctness check (byte-identical replies, exact hit accounting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Instant;
use whois_bench::*;
use whois_model::RawRecord;
use whois_parser::{ParseEngine, ParserConfig, WhoisParser};
use whois_serve::{
    ModelRegistry, ParseRequest, ParseService, Reply, Request, ServeClient, ServeConfig,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Total sweeps over the corpus in the summary run: 1 cold + 9 warm,
/// so the steady-state hit rate lands at 90%.
const SWEEPS: usize = 10;

fn setup(train_docs: usize, test_docs: usize) -> (WhoisParser, Vec<RawRecord>) {
    let train = corpus(13, train_docs);
    let test = corpus(29, test_docs);
    let parser = WhoisParser::train(
        &first_level_examples(&train),
        &second_level_examples(&train),
        &ParserConfig::default(),
    );
    (parser, test.iter().map(|d| d.raw()).collect())
}

/// Pre-encoded `PARSE` request lines for the corpus.
fn request_lines(raws: &[RawRecord]) -> Vec<String> {
    raws.iter()
        .map(|r| {
            Request::Parse(ParseRequest {
                domain: r.domain.clone(),
                text: r.text.clone(),
            })
            .encode()
        })
        .collect()
}

fn start_service(parser: WhoisParser, workers: usize) -> ParseService {
    let registry = Arc::new(ModelRegistry::new(parser, "bench", 1));
    ParseService::start(
        registry,
        ServeConfig {
            workers,
            queue_capacity: 512,
            cache_capacity: 1 << 16,
            ..Default::default()
        },
        0,
    )
    .expect("start bench service")
}

/// One sweep: every request line once, fanned over `conns` connections.
/// Returns wall-clock records/sec.
fn sweep(addr: std::net::SocketAddr, lines: &Arc<Vec<String>>, conns: usize) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let lines = lines.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for line in lines.iter().skip(c).step_by(conns) {
                    let reply = client.request_line(line).expect("reply");
                    assert!(reply.starts_with("{\"ok\":true"), "{reply}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    lines.len() as f64 / start.elapsed().as_secs_f64()
}

/// `WHOIS_BENCH_SMOKE=1`: correctness, not speed — cached replies are
/// byte-identical to uncached ones and hit accounting is exact.
fn smoke() {
    let (parser, raws) = setup(60, 40);
    let service = start_service(parser, 1);
    let lines = request_lines(&raws);
    let mut client = ServeClient::connect(service.addr()).unwrap();
    let first: Vec<String> = lines
        .iter()
        .map(|l| client.request_line(l).unwrap())
        .collect();
    let second: Vec<String> = lines
        .iter()
        .map(|l| client.request_line(l).unwrap())
        .collect();
    assert_eq!(
        first, second,
        "smoke: cached replies must be byte-identical"
    );
    for line in &first {
        let reply = Reply::decode(line).unwrap();
        assert!(reply.ok && reply.record.is_some());
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, raws.len() as u64);
    assert_eq!(stats.cache_hits, raws.len() as u64);
    assert_eq!(
        stats.parses,
        raws.len() as u64,
        "smoke: hits must not re-parse"
    );
    eprintln!(
        "[parse_service] smoke ok: {} records, hit rate {:.2}, byte-identical replies",
        raws.len(),
        stats.cache_hit_rate
    );
}

fn bench_parse_service(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let (parser, raws) = setup(300, 200);
    let lines = Arc::new(request_lines(&raws));

    let mut group = c.benchmark_group("parse_service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(raws.len() as u64));
    group.bench_function("uncached_engine", |b| {
        let engine = ParseEngine::with_workers(parser.clone(), 1);
        b.iter(|| engine.parse_batch(&raws).len())
    });
    for workers in WORKER_COUNTS {
        let service = start_service(parser.clone(), workers);
        let conns = workers.max(2);
        // Prime the cache so the criterion loop measures the warm path.
        sweep(service.addr(), &lines, conns);
        group.bench_function(BenchmarkId::new("service_warm", workers), |b| {
            b.iter(|| sweep(service.addr(), &lines, conns))
        });
    }
    group.finish();

    write_summary(&parser, &raws, &lines);
}

/// Best-of-3 wall-clock records/sec for one run of `f`.
fn best_rate(records: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn write_summary(parser: &WhoisParser, raws: &[RawRecord], lines: &Arc<Vec<String>>) {
    let engine = ParseEngine::with_workers(parser.clone(), 1);
    let uncached = best_rate(raws.len(), || {
        criterion::black_box(engine.parse_batch(raws));
    });

    let mut entries = String::new();
    for workers in WORKER_COUNTS {
        let service = start_service(parser.clone(), workers);
        let conns = workers.max(2);
        let mut cold = 0.0;
        let mut warm = 0.0f64;
        for s in 0..SWEEPS {
            let rate = sweep(service.addr(), lines, conns);
            if s == 0 {
                cold = rate;
            } else {
                warm = warm.max(rate);
            }
        }
        let mut client = ServeClient::connect(service.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(
            stats.parses,
            raws.len() as u64,
            "only the cold sweep parses"
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workers\": {workers}, \"cold_records_per_sec\": {cold:.1}, \
             \"warm_records_per_sec\": {warm:.1}, \"hit_rate\": {:.4}, \
             \"warm_speedup_vs_uncached\": {:.3}}}",
            stats.cache_hit_rate,
            warm / uncached
        ));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"parse_service\",\n  \"records\": {},\n  \"sweeps\": {SWEEPS},\n  \
         \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \"uncached_engine_records_per_sec\": {uncached:.1},\n  \
         \"service\": [\n{entries}\n  ]\n}}\n",
        raws.len()
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_parse_service.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[parse_service] summary written to {path}"),
        Err(e) => eprintln!("[parse_service] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_parse_service);
criterion_main!(benches);
