//! Line-memoization cache: cached engine vs uncached engine.
//!
//! WHOIS output is rendered from a few thousand registrar templates, so
//! across records most lines repeat verbatim in the same context. The
//! [`whois_parser::LineCache`] memoizes each distinct (line, layout
//! context, previous line)'s feature row and CRF potentials; this bench
//! measures what that buys on two corpus shapes:
//!
//! - `skewed`: a small record pool swept repeatedly — the
//!   template-skewed workload (abuse pipelines re-checking the same
//!   zones, bulk parses of a registrar's whole portfolio) where nearly
//!   every line is a repeat.
//! - `uniform`: the same number of records, all distinct — repetition
//!   comes only from template structure shared across domains.
//!
//! Both shapes run cached and uncached at 1/2/4 workers; the summary
//! (`results/BENCH_line_cache.json`) records records/sec, the speedup,
//! and the measured hit rate. `WHOIS_BENCH_SMOKE=1` swaps in a
//! seconds-long correctness check: cached output bit-identical to
//! uncached, hit accounting exact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Instant;
use whois_bench::*;
use whois_model::RawRecord;
use whois_parser::{
    LineCache, ParseEngine, ParserConfig, WhoisParser, DEFAULT_LINE_CACHE_CAPACITY,
    DEFAULT_LINE_CACHE_SHARDS,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Records per measured corpus (both shapes).
const CORPUS_RECORDS: usize = 1200;
/// Distinct records in the skewed pool; tiled to `CORPUS_RECORDS`.
const SKEWED_POOL: usize = 120;

fn trained_parser() -> WhoisParser {
    let train = corpus(13, 300);
    WhoisParser::train(
        &first_level_examples(&train),
        &second_level_examples(&train),
        &ParserConfig::default(),
    )
}

/// The template-skewed corpus: a small pool swept ten times.
fn skewed_corpus() -> Vec<RawRecord> {
    let pool: Vec<RawRecord> = corpus(29, SKEWED_POOL).iter().map(|d| d.raw()).collect();
    pool.iter().cycle().take(CORPUS_RECORDS).cloned().collect()
}

/// The uniform corpus: every record distinct.
fn uniform_corpus() -> Vec<RawRecord> {
    corpus(97, CORPUS_RECORDS).iter().map(|d| d.raw()).collect()
}

fn cached_engine(parser: &WhoisParser, workers: usize) -> ParseEngine {
    ParseEngine::with_line_cache(
        parser.clone(),
        workers,
        Arc::new(LineCache::new(
            DEFAULT_LINE_CACHE_CAPACITY,
            DEFAULT_LINE_CACHE_SHARDS,
        )),
    )
}

fn uncached_engine(parser: &WhoisParser, workers: usize) -> ParseEngine {
    ParseEngine::with_line_cache(parser.clone(), workers, Arc::new(LineCache::disabled()))
}

/// `WHOIS_BENCH_SMOKE=1`: correctness, not speed — the cached engine's
/// output is bit-identical to the uncached engine's, and the hit
/// counters add up.
fn smoke() {
    let parser = trained_parser();
    let pool: Vec<RawRecord> = corpus(29, 40).iter().map(|d| d.raw()).collect();
    let raws: Vec<RawRecord> = pool.iter().cycle().take(120).cloned().collect();
    for workers in [1, 2] {
        let cached = cached_engine(&parser, workers);
        let uncached = uncached_engine(&parser, workers);
        let want = uncached.parse_batch(&raws);
        assert_eq!(
            cached.parse_batch(&raws),
            want,
            "smoke: cold cached parse must be bit-identical ({workers} workers)"
        );
        assert_eq!(
            cached.parse_batch(&raws),
            want,
            "smoke: warm cached parse must be bit-identical ({workers} workers)"
        );
        let stats = cached.line_cache().stats();
        let lookups = stats.l1_hits + stats.l2_hits + stats.misses;
        assert!(lookups > 0, "smoke: cache was never consulted");
        assert!(
            stats.l1_hits + stats.l2_hits > stats.misses,
            "smoke: a tiled corpus must be hit-dominated: {stats:?}"
        );
        let un = uncached.line_cache().stats();
        assert_eq!(
            un.l1_hits + un.l2_hits + un.misses,
            0,
            "smoke: a disabled cache must never be consulted"
        );
    }
    eprintln!("[line_cache] smoke ok: bit-identical output, hit-dominated accounting");
}

fn bench_line_cache(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let parser = trained_parser();
    let skewed = skewed_corpus();

    let mut group = c.benchmark_group("line_cache");
    group.sample_size(10);
    group.throughput(Throughput::Elements(skewed.len() as u64));
    for workers in WORKER_COUNTS {
        let engine = uncached_engine(&parser, workers);
        group.bench_function(BenchmarkId::new("skewed_uncached", workers), |b| {
            b.iter(|| engine.parse_batch(&skewed).len())
        });
        let engine = cached_engine(&parser, workers);
        engine.parse_batch(&skewed); // warm the cache
        group.bench_function(BenchmarkId::new("skewed_cached", workers), |b| {
            b.iter(|| engine.parse_batch(&skewed).len())
        });
    }
    group.finish();

    write_summary(&parser);
}

/// Best-of-3 wall-clock records/sec for one run of `f` (after a warm-up
/// run that also primes the cache on the cached engines).
fn best_rate(records: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn write_summary(parser: &WhoisParser) {
    let mut entries = String::new();
    for (shape, raws) in [("skewed", skewed_corpus()), ("uniform", uniform_corpus())] {
        for workers in WORKER_COUNTS {
            let uncached = uncached_engine(parser, workers);
            let base = best_rate(raws.len(), || {
                criterion::black_box(uncached.parse_batch(&raws));
            });
            let cached = cached_engine(parser, workers);
            let rate = best_rate(raws.len(), || {
                criterion::black_box(cached.parse_batch(&raws));
            });
            let stats = cached.line_cache().stats();
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"corpus\": \"{shape}\", \"workers\": {workers}, \
                 \"uncached_records_per_sec\": {base:.1}, \
                 \"cached_records_per_sec\": {rate:.1}, \
                 \"speedup\": {:.3}, \"hit_rate\": {:.4}, \
                 \"l1_hits\": {}, \"l2_hits\": {}, \"misses\": {}, \
                 \"evictions\": {}}}",
                rate / base,
                stats.hit_rate,
                stats.l1_hits,
                stats.l2_hits,
                stats.misses,
                stats.evictions
            ));
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"line_cache\",\n  \"records\": {CORPUS_RECORDS},\n  \
         \"skewed_pool\": {SKEWED_POOL},\n  \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \
         \"capacity\": {DEFAULT_LINE_CACHE_CAPACITY},\n  \"runs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_line_cache.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[line_cache] summary written to {path}"),
        Err(e) => eprintln!("[line_cache] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_line_cache);
criterion_main!(benches);
