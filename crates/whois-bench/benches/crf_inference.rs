//! CRF inference latency: Viterbi and forward–backward as a function of
//! sequence length (appendix A's `O(n²T)` claim: time should scale
//! linearly in `T` for fixed `n`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whois_crf::{backward, forward, viterbi, Crf, Sequence};

fn model(states: usize, feats: usize) -> Crf {
    let pair: Vec<bool> = (0..feats).map(|f| f % 3 == 0).collect();
    let mut m = Crf::new(states, feats, &pair);
    let dim = m.dim();
    m.set_weights((0..dim).map(|i| ((i as f64) * 0.137).sin() * 0.1).collect());
    m
}

fn sequence(len: usize, feats: usize) -> Sequence {
    Sequence::new(
        (0..len)
            .map(|t| {
                let mut v: Vec<u32> = (0..12).map(|k| ((t * 31 + k * 7) % feats) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect(),
    )
}

fn bench_inference(c: &mut Criterion) {
    let m6 = model(6, 5000);
    let m12 = model(12, 2000);

    let mut group = c.benchmark_group("crf_inference");
    group.sample_size(30);
    for len in [20usize, 60, 120] {
        let seq = sequence(len, 5000);
        group.bench_with_input(BenchmarkId::new("viterbi_n6", len), &seq, |b, seq| {
            b.iter(|| {
                let table = m6.score_table(seq);
                viterbi(&table)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("forward_backward_n6", len),
            &seq,
            |b, seq| {
                b.iter(|| {
                    let table = m6.score_table(seq);
                    let fwd = forward(&table);
                    let beta = backward(&table);
                    (fwd.log_z, beta.len())
                })
            },
        );
    }
    let seq = sequence(60, 2000);
    group.bench_function("viterbi_n12_len60", |b| {
        b.iter(|| {
            let table = m12.score_table(&seq);
            viterbi(&table)
        })
    });

    // Ablation: log-space vs scaled (Rabiner) forward-backward.
    let seq = sequence(60, 5000);
    let table = m6.score_table(&seq);
    group.bench_function("fb_logspace_n6_len60", |b| {
        b.iter(|| {
            let fwd = forward(&table);
            let beta = backward(&table);
            (fwd.log_z, beta.len())
        })
    });
    group.bench_function("fb_scaled_n6_len60", |b| {
        b.iter(|| {
            let exp = whois_crf::scaled::ExpTable::new(&table);
            let fwd = whois_crf::scaled::forward_scaled(&exp);
            let beta = whois_crf::scaled::backward_scaled(&exp, &fwd);
            (fwd.log_z, beta.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
