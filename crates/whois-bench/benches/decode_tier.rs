//! Decode tiers: fast (pruned f32 SoA + batched Viterbi) vs exact.
//!
//! The line cache (see `line_cache.rs`) wins when records repeat, but a
//! uniform corpus — every record distinct, repetition only from shared
//! template structure — pays the full tokenize + score + Viterbi cost
//! for most lines. The fast tier attacks that uncached floor: a
//! compiled [`whois_parser::FastParser`] fuses tokenization with sparse
//! f32 scoring over zero-pruned weight stripes, interns each record's
//! unique lines, and runs a batched Viterbi over the deduplicated rows.
//! Records whose decode margin falls under the guard threshold
//! transparently re-decode on the exact engine, so served output is
//! byte-identical to the exact tier.
//!
//! This bench measures both tiers, uncached, on the two corpus shapes
//! at 1/2/4 workers and writes `results/BENCH_decode_tier.json` with
//! records/sec, the speedup, and the fast-tier fallback rate.
//! `WHOIS_BENCH_SMOKE=1` swaps in a seconds-long correctness check:
//! fast-tier output bit-identical to exact, counters consistent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Instant;
use whois_bench::*;
use whois_model::RawRecord;
use whois_parser::{DecodeCounters, DecodeTier, LineCache, ParseEngine, ParserConfig, WhoisParser};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Records per measured corpus (both shapes).
const CORPUS_RECORDS: usize = 1200;
/// Distinct records in the skewed pool; tiled to `CORPUS_RECORDS`.
const SKEWED_POOL: usize = 120;

fn trained_parser() -> WhoisParser {
    let train = corpus(13, 300);
    WhoisParser::train(
        &first_level_examples(&train),
        &second_level_examples(&train),
        &ParserConfig::default(),
    )
}

/// The uniform corpus: every record distinct — the uncached floor.
fn uniform_corpus() -> Vec<RawRecord> {
    corpus(97, CORPUS_RECORDS).iter().map(|d| d.raw()).collect()
}

/// The template-skewed corpus: a small pool swept ten times. Uncached
/// here, this shows what per-record unique-line interning buys on its
/// own (repeats *within* a record, not across records).
fn skewed_corpus() -> Vec<RawRecord> {
    let pool: Vec<RawRecord> = corpus(29, SKEWED_POOL).iter().map(|d| d.raw()).collect();
    pool.iter().cycle().take(CORPUS_RECORDS).cloned().collect()
}

/// An uncached engine pinned to one decode tier.
fn engine(parser: &WhoisParser, workers: usize, tier: DecodeTier) -> ParseEngine {
    ParseEngine::with_decode_tier(
        parser.clone(),
        workers,
        Arc::new(LineCache::disabled()),
        tier,
        Arc::new(DecodeCounters::new()),
    )
}

/// `WHOIS_BENCH_SMOKE=1`: correctness, not speed — the fast tier's
/// output is bit-identical to the exact tier's on both corpus shapes,
/// and the decode counters account for every record.
fn smoke() {
    let parser = trained_parser();
    let uniform: Vec<RawRecord> = corpus(97, 80).iter().map(|d| d.raw()).collect();
    for workers in [1, 2] {
        let exact = engine(&parser, workers, DecodeTier::Exact);
        let fast = engine(&parser, workers, DecodeTier::Fast);
        assert!(
            fast.fast_tier_active(),
            "smoke: fast tier must compile under default feature options"
        );
        assert_eq!(
            fast.parse_batch(&uniform),
            exact.parse_batch(&uniform),
            "smoke: fast tier must be bit-identical to exact ({workers} workers)"
        );
        let c = fast.decode_counters();
        let decoded = (c.fast_decodes() + c.exact_fallbacks()) as usize;
        assert!(
            decoded >= uniform.len(),
            "smoke: at least one counted decode per record, got {decoded} for {}",
            uniform.len()
        );
        let ec = exact.decode_counters();
        assert_eq!(
            ec.fast_decodes() + ec.exact_fallbacks(),
            0,
            "smoke: the exact tier must never touch the fast counters"
        );
    }
    eprintln!("[decode_tier] smoke ok: bit-identical output, counters consistent");
}

fn bench_decode_tier(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let parser = trained_parser();
    let uniform = uniform_corpus();

    let mut group = c.benchmark_group("decode_tier");
    group.sample_size(10);
    group.throughput(Throughput::Elements(uniform.len() as u64));
    for workers in WORKER_COUNTS {
        let exact = engine(&parser, workers, DecodeTier::Exact);
        group.bench_function(BenchmarkId::new("uniform_exact", workers), |b| {
            b.iter(|| exact.parse_batch(&uniform).len())
        });
        let fast = engine(&parser, workers, DecodeTier::Fast);
        group.bench_function(BenchmarkId::new("uniform_fast", workers), |b| {
            b.iter(|| fast.parse_batch(&uniform).len())
        });
    }
    group.finish();

    write_summary(&parser);
}

/// Best-of-3 wall-clock records/sec for one run of `f` (after a
/// warm-up run).
fn best_rate(records: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            records as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn write_summary(parser: &WhoisParser) {
    let mut entries = String::new();
    for (shape, raws) in [("uniform", uniform_corpus()), ("skewed", skewed_corpus())] {
        for workers in WORKER_COUNTS {
            let exact = engine(parser, workers, DecodeTier::Exact);
            let base = best_rate(raws.len(), || {
                criterion::black_box(exact.parse_batch(&raws));
            });
            let fast = engine(parser, workers, DecodeTier::Fast);
            let rate = best_rate(raws.len(), || {
                criterion::black_box(fast.parse_batch(&raws));
            });
            let counters = fast.decode_counters();
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"corpus\": \"{shape}\", \"workers\": {workers}, \
                 \"exact_records_per_sec\": {base:.1}, \
                 \"fast_records_per_sec\": {rate:.1}, \
                 \"speedup\": {:.3}, \"fallback_rate\": {:.4}}}",
                rate / base,
                counters.fallback_rate(),
            ));
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"decode_tier\",\n  \"records\": {CORPUS_RECORDS},\n  \
         \"skewed_pool\": {SKEWED_POOL},\n  \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \
         \"line_cache\": \"disabled\",\n  \"runs\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_decode_tier.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[decode_tier] summary written to {path}"),
        Err(e) => eprintln!("[decode_tier] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_decode_tier);
criterion_main!(benches);
