//! End-to-end parse throughput: statistical vs. rule-based vs.
//! template-based, in records per second — the practical side of
//! applying a parser to a 102M-record crawl.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use whois_bench::*;
use whois_parser::{ParserConfig, WhoisParser};
use whois_rules::RuleBasedParser;
use whois_templates::TemplateParser;

fn bench_parse(c: &mut Criterion) {
    let train = corpus(13, 400);
    let test = corpus(17, 200);
    let raws: Vec<whois_model::RawRecord> = test.iter().map(|d| d.raw()).collect();

    let statistical = WhoisParser::train(
        &first_level_examples(&train),
        &second_level_examples(&train),
        &ParserConfig::default(),
    );
    let rules = RuleBasedParser::full();
    let mut templates = TemplateParser::new();
    for (reg, text, gold) in template_examples(&train) {
        let lines = whois_model::non_empty_lines(&text);
        templates.add_example(&reg, &lines, &gold);
    }
    let template_keys: Vec<String> = test.iter().map(|d| d.registrar.name.to_string()).collect();

    let mut group = c.benchmark_group("parse_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(raws.len() as u64));
    group.bench_function("statistical_200_records", |b| {
        b.iter(|| {
            raws.iter()
                .map(|r| statistical.parse(r).has_registrant() as usize)
                .sum::<usize>()
        })
    });
    group.bench_function("rule_based_200_records", |b| {
        b.iter(|| {
            raws.iter()
                .map(|r| rules.parse(r).has_registrant() as usize)
                .sum::<usize>()
        })
    });
    group.bench_function("template_200_records", |b| {
        b.iter(|| {
            raws.iter()
                .zip(&template_keys)
                .filter(|(r, key)| {
                    let lines = r.lines();
                    templates.label_blocks(key, &lines).is_some()
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
