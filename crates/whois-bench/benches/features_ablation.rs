//! Feature-family ablation (DESIGN.md §4): how much accuracy the
//! title/value suffixes, layout markers, word classes, and pair features
//! each contribute, and what they cost in training time.
//!
//! Criterion measures the *training* cost per configuration; the bench
//! also prints held-out accuracy per configuration once at startup, so a
//! single run yields both halves of the ablation table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whois_bench::*;
use whois_parser::{FeatureOptions, LevelParser, ParserConfig};

fn configs() -> Vec<(&'static str, FeatureOptions)> {
    let full = FeatureOptions::default();
    vec![
        ("full", full),
        (
            "no_title_value",
            FeatureOptions {
                title_value: false,
                ..full
            },
        ),
        (
            "no_markers",
            FeatureOptions {
                markers: false,
                ..full
            },
        ),
        (
            "no_classes",
            FeatureOptions {
                classes: false,
                ..full
            },
        ),
        (
            "no_pair_features",
            FeatureOptions {
                pair_features: false,
                ..full
            },
        ),
        (
            "no_prev_line",
            FeatureOptions {
                prev_line: false,
                ..full
            },
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    // Small training set so feature families actually matter.
    let train_domains = corpus(19, 60);
    let test_domains = corpus(23, 400);
    let train = first_level_examples(&train_domains);
    let test = first_level_examples(&test_domains);

    println!("\nfeature ablation, 60 training / 400 test records:");
    println!("{:<18} {:>10} {:>10}", "config", "line_err", "dict_size");
    for (name, opts) in configs() {
        let cfg = ParserConfig {
            features: opts,
            ..Default::default()
        };
        let parser = LevelParser::train(&train, &cfg);
        let stats = parser.evaluate(&test);
        println!(
            "{:<18} {:>10.5} {:>10}",
            name,
            stats.line_error_rate(),
            parser.encoder().dictionary().len()
        );
    }

    let mut group = c.benchmark_group("features_ablation_training");
    group.sample_size(10);
    for (name, opts) in configs() {
        let cfg = ParserConfig {
            features: opts,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("train60", name), &cfg, |b, cfg| {
            b.iter(|| LevelParser::train(&train, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
