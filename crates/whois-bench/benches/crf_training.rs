//! Training cost: one parallel objective/gradient evaluation (the unit
//! of L-BFGS work) and one SGD epoch, as a function of corpus size —
//! plus the L-BFGS vs. SGD ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use whois_bench::{corpus, first_level_examples};
use whois_crf::{Crf, Instance, Objective};
use whois_model::Label;
use whois_parser::{Encoder, FeatureOptions};

fn instances(n: usize) -> (Crf, Vec<Instance>) {
    let domains = corpus(11, n);
    let examples = first_level_examples(&domains);
    let encoder = Encoder::fit(
        examples.iter().map(|e| e.text.as_str()),
        FeatureOptions::default(),
        1,
    );
    let crf = Crf::new(
        whois_model::BlockLabel::COUNT,
        encoder.dictionary().len(),
        &encoder.pair_eligibility(),
    );
    let data = examples
        .iter()
        .map(|e| {
            Instance::new(
                encoder.encode_text(&e.text),
                e.labels.iter().map(|l| l.index()).collect(),
            )
        })
        .collect();
    (crf, data)
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("crf_training");
    group.sample_size(10);
    for n in [50usize, 200] {
        let (crf, data) = instances(n);
        let dim = crf.dim();
        group.bench_with_input(
            BenchmarkId::new("objective_eval_parallel", n),
            &n,
            |b, _| {
                let mut obj = Objective::new(crf.clone(), &data, 1e-3, 0);
                let w = vec![0.0; dim];
                let mut g = vec![0.0; dim];
                b.iter(|| obj.eval(&w, &mut g))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("objective_eval_single_thread", n),
            &n,
            |b, _| {
                let mut obj = Objective::new(crf.clone(), &data, 1e-3, 1);
                let w = vec![0.0; dim];
                let mut g = vec![0.0; dim];
                b.iter(|| obj.eval(&w, &mut g))
            },
        );
        group.bench_with_input(BenchmarkId::new("sgd_epoch", n), &n, |b, _| {
            b.iter(|| {
                let mut m = crf.clone();
                whois_crf::sgd::train_sgd(
                    &mut m,
                    &data,
                    &whois_crf::sgd::SgdConfig {
                        epochs: 1,
                        ..Default::default()
                    },
                )
                .steps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
