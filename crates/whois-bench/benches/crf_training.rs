//! Training cost: the persistent `TrainEngine` against the naive
//! re-allocating objective, per worker count.
//!
//! One objective/gradient evaluation is the unit of L-BFGS work, so
//! "evaluations per second" is training throughput. The engine wins
//! twice: scratch pooling + interned-line dedup + precomputed observed
//! counts remove almost all per-evaluation allocation and redundant
//! lattice work (visible even at 1 worker), and its persistent worker
//! pool scales across cores without per-evaluation thread spawns
//! (visible only when the machine has them). Besides the criterion
//! timings, the bench writes a machine-readable summary to
//! `results/BENCH_crf_training.json` so runs on different hardware can
//! be compared.
//!
//! Set `WHOIS_BENCH_SMOKE=1` to run a seconds-long correctness smoke
//! (one tiny engine-vs-naive evaluation, 1e-9 agreement) instead of the
//! full measurement — used by CI, which has no stable clock to bench on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use whois_bench::{corpus, first_level_examples, kernel_level_name};
use whois_crf::{Crf, Instance, NaiveObjective, Objective};
use whois_model::Label;
use whois_parser::{Encoder, FeatureOptions};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const L2: f64 = 1e-3;

fn instances(seed: u64, n: usize) -> (Crf, Vec<Instance>) {
    let domains = corpus(seed, n);
    let examples = first_level_examples(&domains);
    let encoder = Encoder::fit(
        examples.iter().map(|e| e.text.as_str()),
        FeatureOptions::default(),
        1,
    );
    let crf = Crf::new(
        whois_model::BlockLabel::COUNT,
        encoder.dictionary().len(),
        &encoder.pair_eligibility(),
    );
    let data = examples
        .iter()
        .map(|e| {
            Instance::new(
                encoder.encode_text(&e.text),
                e.labels.iter().map(|l| l.index()).collect(),
            )
        })
        .collect();
    (crf, data)
}

/// Deterministic non-zero weights so the exp/log work is realistic.
fn weights(dim: usize) -> Vec<f64> {
    (0..dim).map(|i| ((i as f64) * 0.37).sin() * 0.1).collect()
}

/// `WHOIS_BENCH_SMOKE=1`: a tiny engine-vs-naive agreement check instead
/// of measurement. Keeps CI's bench job meaningful without timing noise.
fn smoke() {
    let (crf, data) = instances(11, 12);
    let w = weights(crf.dim());
    let mut g_naive = vec![0.0; crf.dim()];
    let mut g_engine = vec![0.0; crf.dim()];
    let mut naive = NaiveObjective::new(crf.clone(), &data, L2, 1);
    let f_naive = naive.eval(&w, &mut g_naive);
    for threads in [1, 2] {
        let mut engine = Objective::new(crf.clone(), &data, L2, threads);
        let f_engine = engine.eval(&w, &mut g_engine);
        assert!(
            (f_naive - f_engine).abs() < 1e-9,
            "smoke: objective mismatch at {threads} workers: {f_naive} vs {f_engine}"
        );
        let max_dev = g_naive
            .iter()
            .zip(&g_engine)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(
            max_dev < 1e-9,
            "smoke: gradient deviates by {max_dev} at {threads} workers"
        );
    }
    eprintln!(
        "[crf_training] smoke ok: engine matches naive within 1e-9 \
         ({} records, dim {})",
        data.len(),
        crf.dim()
    );
}

fn bench_training(c: &mut Criterion) {
    if std::env::var_os("WHOIS_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let mut group = c.benchmark_group("crf_training");
    group.sample_size(10);
    for n in [50usize, 200] {
        let (crf, data) = instances(11, n);
        let w = weights(crf.dim());
        for workers in WORKER_COUNTS {
            group.bench_with_input(
                BenchmarkId::new(format!("naive_eval_w{workers}"), n),
                &n,
                |b, _| {
                    let mut obj = NaiveObjective::new(crf.clone(), &data, L2, workers);
                    let mut g = vec![0.0; crf.dim()];
                    b.iter(|| obj.eval(&w, &mut g))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("engine_eval_w{workers}"), n),
                &n,
                |b, _| {
                    let mut obj = Objective::new(crf.clone(), &data, L2, workers);
                    let mut g = vec![0.0; crf.dim()];
                    b.iter(|| obj.eval(&w, &mut g))
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("sgd_epoch", n), &n, |b, _| {
            b.iter(|| {
                let mut m = crf.clone();
                whois_crf::sgd::train_sgd(
                    &mut m,
                    &data,
                    &whois_crf::sgd::SgdConfig {
                        epochs: 1,
                        ..Default::default()
                    },
                )
                .steps
            })
        });
    }
    group.finish();

    write_summary();
}

/// Best-of-3 evaluations/sec, `evals` calls per timed run, after warm-up.
fn best_rate(evals: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..evals {
                f();
            }
            evals as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn write_summary() {
    let (crf, data) = instances(11, 200);
    let w = weights(crf.dim());
    let evals = 5;

    let mut entries = String::new();
    for workers in WORKER_COUNTS {
        let mut naive = NaiveObjective::new(crf.clone(), &data, L2, workers);
        let mut g = vec![0.0; crf.dim()];
        let naive_rate = best_rate(evals, || {
            criterion::black_box(naive.eval(&w, &mut g));
        });
        let mut engine = Objective::new(crf.clone(), &data, L2, workers);
        let engine_rate = best_rate(evals, || {
            criterion::black_box(engine.eval(&w, &mut g));
        });
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workers\": {workers}, \"naive_evals_per_sec\": {naive_rate:.2}, \
             \"engine_evals_per_sec\": {engine_rate:.2}, \"speedup_vs_naive\": {:.3}}}",
            engine_rate / naive_rate
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = kernel_level_name();
    let summary = format!(
        "{{\n  \"bench\": \"crf_training\",\n  \"records\": {},\n  \"dim\": {},\n  \
         \"available_cores\": {cores},\n  \"kernel\": \"{kernel}\",\n  \"objective_evals\": [\n{entries}\n  ]\n}}\n",
        data.len(),
        crf.dim()
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_crf_training.json"
    );
    match std::fs::write(path, &summary) {
        Ok(()) => eprintln!("[crf_training] summary written to {path}"),
        Err(e) => eprintln!("[crf_training] could not write {path}: {e}"),
    }
    eprint!("{summary}");
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
