//! Ablation study over the design choices DESIGN.md calls out:
//! feature families (§3.3), dictionary trimming, and L-BFGS vs. SGD.
//!
//! ```text
//! repro-ablation [--train 100] [--test 1000] [--seed 42]
//! ```
//!
//! Expected shape: the `@T`/`@V` suffixes and layout markers carry real
//! accuracy at small training sizes; pair features help block-boundary
//! detection; both optimizers converge to similar accuracy with SGD
//! cheaper per pass.

use std::time::Instant;
use whois_bench::*;
use whois_crf::lbfgs::LbfgsConfig;
use whois_crf::sgd::SgdConfig;
use whois_crf::{TrainConfig, TrainerKind};
use whois_parser::{FeatureOptions, LevelParser, ParserConfig};

fn main() {
    let args = Args::from_env();
    let train_n: usize = args.get_or("train", 100);
    let test_n: usize = args.get_or("test", 1000);
    let seed: u64 = args.get_or("seed", 42);

    let train_domains = corpus(seed, train_n);
    let test_domains = corpus(seed ^ 0xab1a, test_n);
    let train = first_level_examples(&train_domains);
    let test = first_level_examples(&test_domains);
    // The generalization test sets: drifted schemas and unseen TLD
    // formats — where the paper's feature families earn their keep
    // (in-distribution, word features alone already separate the known
    // registrar formats).
    let drifted = first_level_examples(&whois_gen::corpus::generate_corpus(
        whois_gen::corpus::GenConfig {
            drift_fraction: 1.0,
            ..whois_gen::corpus::GenConfig::new(seed ^ 0xd1f7, test_n.min(400))
        },
    ));
    let tld_tests: Vec<_> = whois_model::Tld::TABLE2_TLDS
        .iter()
        .map(|tld| {
            let s = whois_gen::tlds::tld_sample(tld, seed).unwrap();
            whois_parser::TrainExample {
                text: s.text(),
                labels: s.block_labels().labels(),
            }
        })
        .collect();

    println!("# Ablation study ({train_n} train / {test_n} test records)\n");

    // --- Feature families ---
    println!("## Feature families");
    println!(
        "{:<20} {:>10} {:>11} {:>11} {:>10} {:>9}",
        "config", "line_err", "drift_err", "newtld_err", "features", "train_s"
    );
    let full = FeatureOptions::default();
    let configs = [
        ("full", full),
        (
            "no_title_value",
            FeatureOptions {
                title_value: false,
                ..full
            },
        ),
        (
            "no_markers",
            FeatureOptions {
                markers: false,
                ..full
            },
        ),
        (
            "no_classes",
            FeatureOptions {
                classes: false,
                ..full
            },
        ),
        (
            "no_pair_features",
            FeatureOptions {
                pair_features: false,
                ..full
            },
        ),
        (
            "no_prev_line",
            FeatureOptions {
                prev_line: false,
                ..full
            },
        ),
        (
            "words_only",
            FeatureOptions {
                title_value: false,
                markers: false,
                classes: false,
                pair_features: false,
                prev_line: false,
            },
        ),
    ];
    for (name, features) in configs {
        let cfg = ParserConfig {
            features,
            ..Default::default()
        };
        let t0 = Instant::now();
        let parser = LevelParser::train(&train, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let stats = parser.evaluate(&test);
        let drift_stats = parser.evaluate(&drifted);
        let tld_stats = parser.evaluate(&tld_tests);
        println!(
            "{:<20} {:>10.5} {:>11.5} {:>11.5} {:>10} {:>9.1}",
            name,
            stats.line_error_rate(),
            drift_stats.line_error_rate(),
            tld_stats.line_error_rate(),
            parser.encoder().dictionary().len(),
            secs
        );
    }

    // --- Dictionary trimming ---
    println!("\n## Dictionary trim threshold (min word count)");
    println!("{:<8} {:>10} {:>10}", "min", "line_err", "features");
    for min in [1u32, 2, 3, 5, 10] {
        let cfg = ParserConfig {
            min_word_count: min,
            ..Default::default()
        };
        let parser = LevelParser::train(&train, &cfg);
        let stats = parser.evaluate(&test);
        println!(
            "{:<8} {:>10.5} {:>10}",
            min,
            stats.line_error_rate(),
            parser.encoder().dictionary().len()
        );
    }

    // --- Optimizers ---
    println!("\n## Optimizer (same data, same features)");
    println!(
        "{:<24} {:>10} {:>10} {:>9}",
        "optimizer", "line_err", "doc_err", "train_s"
    );
    let optimizers: Vec<(&str, TrainConfig)> = vec![
        ("lbfgs(default)", TrainConfig::default()),
        (
            "lbfgs(maxiter=25)",
            TrainConfig {
                kind: TrainerKind::Lbfgs(LbfgsConfig {
                    max_iters: 25,
                    ..Default::default()
                }),
                ..Default::default()
            },
        ),
        (
            "sgd(10 epochs)",
            TrainConfig {
                l2: 1e-4,
                threads: 0,
                kind: TrainerKind::Sgd(SgdConfig::default()),
            },
        ),
        (
            "sgd(40 epochs)",
            TrainConfig {
                l2: 1e-4,
                threads: 0,
                kind: TrainerKind::Sgd(SgdConfig {
                    epochs: 40,
                    ..Default::default()
                }),
            },
        ),
    ];
    for (name, train_cfg) in optimizers {
        let cfg = ParserConfig {
            train: train_cfg,
            ..Default::default()
        };
        let t0 = Instant::now();
        let parser = LevelParser::train(&train, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let stats = parser.evaluate(&test);
        println!(
            "{:<24} {:>10.5} {:>10.5} {:>9.1}",
            name,
            stats.line_error_rate(),
            stats.document_error_rate(),
            secs
        );
    }
}
