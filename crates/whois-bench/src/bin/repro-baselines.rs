//! §2.3 baseline measurements:
//!
//! * Template coverage and fragility — deft-whois had templates covering
//!   94% of test records, but "minor changes in formats since the
//!   templates were written cause the parser to fail on the vast
//!   majority"; we learn templates from an early snapshot and evaluate on
//!   a drifted later snapshot.
//! * pythonwhois-style registrant extraction — "it correctly identifies
//!   the registrant only 59% of the time".
//!
//! ```text
//! repro-baselines [--corpus 4000] [--drift 0.35] [--seed 42]
//! ```

use whois_bench::*;
use whois_gen::corpus::{generate_corpus, GenConfig};
use whois_templates::TemplateParser;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("corpus", 4000);
    let drift: f64 = args.get_or("drift", 0.35);
    let seed: u64 = args.get_or("seed", 42);

    // Era 1: the snapshot the template corpus was written against.
    let era1 = corpus(seed, n);
    // Era 2: same ecosystem months later — a fraction of registrars have
    // drifted their schema.
    let era2 = generate_corpus(GenConfig {
        drift_fraction: drift,
        ..GenConfig::new(seed ^ 0xe7a2, n)
    });

    // --- Template-based (deft-whois style) ---
    let mut templates = TemplateParser::new();
    for (reg, text, gold) in template_examples(&era1) {
        let lines = whois_model::non_empty_lines(&text);
        templates.add_example(&reg, &lines, &gold);
    }
    println!("# Baseline study (paper section 2.3)");
    println!(
        "templates learned: {} across {} registrars",
        templates.template_count(),
        templates.registrars()
    );

    let (cov1, err1) = templates.evaluate(&template_examples(&era1));
    println!(
        "era-1 (no drift): coverage {:.1}%  success {:.1}%  line-err {:.4}",
        100.0 * cov1.coverage_rate(),
        100.0 * cov1.success_rate(),
        err1.line_error_rate()
    );
    let (cov2, err2) = templates.evaluate(&template_examples(&era2));
    println!(
        "era-2 ({:.0}% registrars drifted): coverage {:.1}%  success {:.1}%  line-err {:.4}",
        100.0 * drift,
        100.0 * cov2.coverage_rate(),
        100.0 * cov2.success_rate(),
        err2.line_error_rate()
    );
    println!("  -> paper: 94% coverage, but failure on the vast majority after drift\n");

    // --- pythonwhois-style registrant extraction ---
    let mut found = 0usize;
    let mut correct = 0usize;
    let mut with_registrant = 0usize;
    for d in &era1 {
        // All generated records carry registrant info, mirroring the
        // paper's filter to records with a registrant field.
        with_registrant += 1;
        if let Some(c) = whois_rules::registrant_extractor(&d.rendered.text()) {
            found += 1;
            let gold_name = &d.facts.registrant.name;
            let gold_email = &d.facts.registrant.email;
            if c.name.as_deref() == Some(gold_name.as_str())
                || c.email.as_deref() == Some(gold_email.as_str())
            {
                correct += 1;
            }
        }
    }
    println!("pythonwhois-style extractor over {with_registrant} records:");
    println!(
        "  found a registrant: {:.1}%   correct registrant: {:.1}%",
        100.0 * found as f64 / with_registrant as f64,
        100.0 * correct as f64 / with_registrant as f64
    );
    println!("  -> paper: correctly identifies the registrant only 59% of the time");
}
