//! §4.1 crawl reproduction: the two-step thin→thick crawl against a
//! loopback fleet of rate-limited, fault-injected WHOIS servers — one
//! registry plus one server per registrar — followed by parsing the
//! crawled thick records.
//!
//! ```text
//! repro-crawl [--domains 400] [--train 400] [--workers 4] [--seed 42]
//! ```
//!
//! Shape to reproduce: coverage a bit over 90%, failures in the single-
//! digit percent range (paper: ~7.5%), and per-server pacing that backs
//! off after refusals instead of being banned forever.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use whois_bench::*;
use whois_model::RawRecord;
use whois_net::crawler::CrawlStatus;
use whois_net::{
    Crawler, CrawlerConfig, FaultConfig, InMemoryStore, RateLimitConfig, ServerConfig, WhoisServer,
};
use whois_parser::{ParserConfig, WhoisParser};

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("domains", 400);
    let train_n: usize = args.get_or("train", 400);
    let workers: usize = args.get_or("workers", 4);
    let seed: u64 = args.get_or("seed", 42);

    eprintln!("[crawl] generating {n} domains and spinning up the server fleet");
    let domains = corpus(seed, n);

    // Thin registry store.
    let mut thin = InMemoryStore::new();
    let mut per_registrar: HashMap<&str, InMemoryStore> = HashMap::new();
    for d in &domains {
        thin.insert(&d.facts.domain, d.thin_text());
        per_registrar
            .entry(d.registrar.whois_server)
            .or_default()
            .insert(&d.facts.domain, d.rendered.text());
    }

    // The registry tolerates bulk queries better than registrars do.
    let registry = WhoisServer::start(
        thin,
        ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 64,
                per_second: 4000.0,
                penalty: Duration::from_millis(20),
            },
            ..Default::default()
        },
    )
    .expect("registry server");

    // Registrar servers: tight limits and real-world faults.
    let mut resolver = HashMap::new();
    let mut servers = Vec::new();
    for (i, (host, store)) in per_registrar.into_iter().enumerate() {
        let cfg = ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 8,
                per_second: 400.0,
                penalty: Duration::from_millis(25),
            },
            faults: FaultConfig {
                drop_chance: 0.05,
                empty_chance: 0.03,
                garble_chance: 0.01,
                ..FaultConfig::none()
            },
            fault_seed: seed ^ i as u64,
            limit_replies_error: i % 2 == 0, // both refusal styles exist
            ..Default::default()
        };
        let server = WhoisServer::start(store, cfg).expect("registrar server");
        resolver.insert(host.to_string(), server.addr());
        servers.push(server);
    }
    eprintln!("[crawl] {} registrar servers up", servers.len());

    let crawler = Arc::new(Crawler::new(
        registry.addr(),
        resolver,
        CrawlerConfig {
            workers,
            retry_pause: Duration::from_millis(30),
            ..Default::default()
        },
    ));
    // The crawl input is a zone-file snapshot, as in the paper.
    let zone_text = whois_gen::zonefile::render(&domains);
    let zone = whois_gen::zonefile::registered_domains(&zone_text);
    eprintln!(
        "[crawl] zone snapshot: {} lines, {} registered domains",
        zone_text.lines().count(),
        zone.len()
    );
    let report = crawler.crawl(&zone);

    println!("# Section 4.1 crawl over {} domains", report.results.len());
    println!(
        "full: {}  thin-only: {}  no-match: {}  failed: {}",
        report.count(CrawlStatus::Full),
        report.count(CrawlStatus::ThinOnly),
        report.count(CrawlStatus::NoMatch),
        report.count(CrawlStatus::Failed),
    );
    println!(
        "coverage: {:.1}% (paper: a bit over 90%)   failure: {:.1}% (paper: ~7.5%)",
        100.0 * report.coverage(),
        100.0 * report.failure_rate()
    );
    let total_attempts: u32 = report.results.iter().map(|r| r.attempts).sum();
    println!(
        "queries issued: {total_attempts} ({:.2} per domain)   wall clock: {:.1}s ({:.0} domains/s)",
        total_attempts as f64 / report.results.len() as f64,
        report.elapsed.as_secs_f64(),
        report.results.len() as f64 / report.elapsed.as_secs_f64()
    );
    let mut delays: Vec<Duration> = report.inferred_delays.values().copied().collect();
    delays.sort();
    println!(
        "inferred per-server delays: min {:?}  median {:?}  max {:?}",
        delays.first().copied().unwrap_or_default(),
        delays.get(delays.len() / 2).copied().unwrap_or_default(),
        delays.last().copied().unwrap_or_default()
    );

    // Parse what we crawled, proving the crawl output feeds the parser.
    let train = &domains[..train_n.min(domains.len())];
    let parser = WhoisParser::train(
        &first_level_examples(train),
        &second_level_examples(train),
        &ParserConfig::default(),
    );
    let mut parsed_ok = 0usize;
    let mut thick_count = 0usize;
    for r in &report.results {
        if let Some(thick) = &r.thick {
            thick_count += 1;
            let parsed = parser.parse(&RawRecord::new(r.domain.clone(), thick.clone()));
            if parsed.registrar.is_some() && parsed.has_registrant() {
                parsed_ok += 1;
            }
        }
    }
    println!(
        "parsed crawled thick records: {parsed_ok}/{thick_count} with registrar+registrant extracted"
    );
}
