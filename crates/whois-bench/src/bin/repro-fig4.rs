//! Figure 4: (a) the creation-date histogram and (b) per-year country /
//! privacy proportions, from parsed records.
//!
//! ```text
//! repro-fig4 [--corpus 40000] [--train 1500] [--seed 42]
//! ```
//!
//! Shape to reproduce: registrations grow dramatically with a 2000 bump;
//! the US proportion declines over time while China grows; the privacy
//! proportion rises past 20% by 2014.

use whois_bench::*;
use whois_parser::{ParserConfig, WhoisParser};
use whois_survey::Survey;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("corpus", 40000);
    let train_n: usize = args.get_or("train", 1500);
    let seed: u64 = args.get_or("seed", 42);

    eprintln!("[fig4] generating {n} records, training on {train_n}");
    let domains = corpus(seed, n);
    let train = &domains[..train_n.min(domains.len())];
    let parser = WhoisParser::train(
        &first_level_examples(train),
        &second_level_examples(train),
        &ParserConfig::default(),
    );

    let mut survey = Survey::new();
    for d in &domains {
        survey.add(&parser.parse(&d.raw()), false);
    }

    println!("{}", survey.render_year_histogram());

    println!("Figure 4b: per-year proportions");
    let buckets = [
        "United States",
        "China",
        "United Kingdom",
        "France",
        "Germany",
    ];
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "year", "US", "CN", "GB", "FR", "DE", "Private", "Unknown", "Other"
    );
    let rows = survey.year_proportions(&buckets);
    let years: std::collections::BTreeSet<i32> = rows.iter().map(|r| r.year).collect();
    for y in years {
        let get = |bucket: &str| {
            rows.iter()
                .find(|r| r.year == y && r.bucket == bucket)
                .map_or(0.0, |r| r.proportion)
        };
        println!(
            "{:<6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            y,
            100.0 * get("United States"),
            100.0 * get("China"),
            100.0 * get("United Kingdom"),
            100.0 * get("France"),
            100.0 * get("Germany"),
            100.0 * get("Private"),
            100.0 * get("Unknown"),
            100.0 * get("Other"),
        );
    }
}
