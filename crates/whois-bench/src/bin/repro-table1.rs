//! Table 1: the heaviest-weight word features per first-level label.
//!
//! ```text
//! repro-table1 [--train 2000] [--seed 42] [--topk 10]
//! ```
//!
//! Shape to reproduce: `registrant@T`/`organization@T` cue the registrant
//! block, `registrar@T`/URL cues the registrar block, year/date tokens
//! cue dates, `admin@T`/`tech@T`/`billing@T` cue other contacts, and
//! legalese words cue null.

use whois_bench::*;
use whois_parser::{inspect, LevelParser, ParserConfig};

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("train", 2000);
    let seed: u64 = args.get_or("seed", 42);
    let topk: usize = args.get_or("topk", 10);

    eprintln!("[table1] training first-level CRF on {n} records");
    let domains = corpus(seed, n);
    let examples = first_level_examples(&domains);
    let parser = LevelParser::train(&examples, &ParserConfig::default());

    println!("# Table 1: heavily weighted emission features per label");
    print!("{}", inspect::render_emission_table(&parser, topk));
}
