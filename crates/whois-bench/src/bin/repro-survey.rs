//! §6 survey: Tables 3–9 and Figure 5, end-to-end.
//!
//! The full pipeline: generate the corpus (the 102M-crawl stand-in),
//! train the statistical parser on a labeled sample, parse *every*
//! record with it, aggregate the parsed output (not the generator's
//! ground truth!), and print the paper's tables.
//!
//! ```text
//! repro-survey [--corpus 40000] [--train 1500] [--seed 42] [--dbl-rate 0.02]
//! ```

use rand::SeedableRng;
use whois_bench::*;
use whois_gen::blacklist::DblSampler;
use whois_gen::distributions::BRAND_COMPANIES;
use whois_parser::{ParserConfig, WhoisParser};
use whois_survey::Survey;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("corpus", 40000);
    let train_n: usize = args.get_or("train", 1500);
    let seed: u64 = args.get_or("seed", 42);
    let dbl_rate: f64 = args.get_or("dbl-rate", 0.02);

    eprintln!("[survey] generating {n} records, training on {train_n}");
    let domains = corpus(seed, n);
    let train = &domains[..train_n.min(domains.len())];
    let parser = WhoisParser::train(
        &first_level_examples(train),
        &second_level_examples(train),
        &ParserConfig::default(),
    );

    eprintln!("[survey] sampling synthetic DBL (base rate {dbl_rate})");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xdb1);
    let dbl = DblSampler::with_rate(dbl_rate).build(&domains, &mut rng);

    eprintln!("[survey] parsing and aggregating {} records", domains.len());
    let mut survey = Survey::new();
    let t0 = std::time::Instant::now();
    for d in &domains {
        let parsed = parser.parse(&d.raw());
        survey.add(&parsed, dbl.contains(&d.facts.domain));
    }
    let secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "[survey] parsed {} records in {:.1}s ({:.0} records/s)",
        domains.len(),
        secs,
        domains.len() as f64 / secs
    );

    println!("# Section 6 survey over {} parsed records\n", survey.total);
    println!(
        "{}",
        survey
            .country_all
            .render_table("Table 3 (left): top registrant countries, all time", 10)
    );
    println!(
        "{}",
        survey.country_2014.render_table(
            "Table 3 (right): top registrant countries, 2014 creations",
            10
        )
    );

    println!("Table 4: brand companies with the most domains");
    let brands: Vec<&str> = BRAND_COMPANIES.iter().map(|(b, _)| *b).collect();
    for (brand, count) in survey.brand_counts(&brands) {
        println!("{:<44} {:>8}", brand, count);
    }
    println!();

    println!(
        "{}",
        survey
            .registrar_all
            .render_table("Table 5 (left): top registrars, all time", 10)
    );
    println!(
        "{}",
        survey
            .registrar_2014
            .render_table("Table 5 (right): top registrars, 2014 creations", 10)
    );
    println!(
        "{}",
        survey
            .privacy_registrars
            .render_table("Table 6: registrars of privacy-protected domains", 10)
    );
    println!(
        "{}",
        survey
            .privacy_services
            .render_table("Table 7: privacy-protection services", 10)
    );
    println!(
        "privacy adoption overall: {:.1}% (paper: 20%)\n",
        100.0 * survey.privacy_services.total() as f64 / survey.total.max(1) as f64
    );
    println!(
        "{}",
        survey.dbl_country.render_table(
            "Table 8: registrant countries of DBL-listed 2014 domains",
            10
        )
    );
    println!(
        "{}",
        survey
            .dbl_registrar
            .render_table("Table 9: registrars of DBL-listed 2014 domains", 10)
    );

    println!(
        "{}",
        survey.render_registrar_mix(&["eNom", "HiChina", "GMO", "Melbourne"])
    );
}
