//! Figures 2 & 3: line and document error rate vs. number of labeled
//! training examples, k-fold cross-validated, rule-based vs. statistical.
//!
//! ```text
//! repro-fig2 [--corpus 8000] [--folds 3] [--sizes 20,100,1000,5000]
//!            [--test-per-fold 1500] [--seed 42]
//! ```
//!
//! Paper shape to reproduce: the statistical parser dominates the
//! rule-based one at every training size, reaching >97–98% line accuracy
//! at 100 examples and >99% at 1000.

use std::time::Instant;
use whois_bench::*;
use whois_parser::{LevelParser, ParserConfig};
use whois_rules::RuleBasedParser;

fn main() {
    let args = Args::from_env();
    let corpus_size: usize = args.get_or("corpus", 8000);
    let k: usize = args.get_or("folds", 3);
    let sizes = args.get_list("sizes", &[20, 100, 1000, 5000]);
    let test_cap: usize = args.get_or("test-per-fold", 1500);
    let seed: u64 = args.get_or("seed", 42);

    eprintln!("[fig2] corpus={corpus_size} folds={k} sizes={sizes:?} test-per-fold={test_cap}");
    let domains = corpus(seed, corpus_size);
    let rule_ex = rule_examples(&domains);
    let stat_ex = first_level_examples(&domains);
    let fold_idx = folds(domains.len(), k, seed ^ 0xf01d);

    println!("# Figures 2 and 3: error rate vs number of labeled examples");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "size",
        "parser",
        "line_err",
        "line_std",
        "doc_err",
        "doc_std",
        "line_acc%",
        "folds",
        "test_docs",
        "train_s"
    );

    for &size in &sizes {
        let mut stat_line = Vec::new();
        let mut stat_doc = Vec::new();
        let mut rule_line = Vec::new();
        let mut rule_doc = Vec::new();
        let mut train_secs = 0.0;
        for (f, test_fold) in fold_idx.iter().enumerate() {
            // Training pool: everything outside the test fold.
            let pool: Vec<usize> = (0..domains.len())
                .filter(|i| !test_fold.contains(i))
                .collect();
            let order = shuffled_indices(pool.len(), seed ^ (f as u64) << 8 ^ size as u64);
            let train_idx: Vec<usize> = order.iter().take(size).map(|&i| pool[i]).collect();
            let test_idx: Vec<usize> = test_fold.iter().copied().take(test_cap).collect();

            // Statistical parser.
            let train_set: Vec<_> = train_idx.iter().map(|&i| stat_ex[i].clone()).collect();
            let test_set: Vec<_> = test_idx.iter().map(|&i| stat_ex[i].clone()).collect();
            let t0 = Instant::now();
            let parser = LevelParser::train(&train_set, &ParserConfig::default());
            train_secs += t0.elapsed().as_secs_f64();
            let stats = parser.evaluate(&test_set);
            stat_line.push(stats.line_error_rate());
            stat_doc.push(stats.document_error_rate());

            // Rule-based parser, rolled back to this training subset.
            let rule_train: Vec<_> = train_idx.iter().map(|&i| rule_ex[i].clone()).collect();
            let rule_test: Vec<_> = test_idx.iter().map(|&i| rule_ex[i].clone()).collect();
            let rules = RuleBasedParser::fit(&rule_train);
            let rstats = rules.evaluate(&rule_test);
            rule_line.push(rstats.line_error_rate());
            rule_doc.push(rstats.document_error_rate());
        }
        for (name, line, doc, secs) in [
            ("rule", &rule_line, &rule_doc, 0.0),
            ("statistical", &stat_line, &stat_doc, train_secs / k as f64),
        ] {
            let (lm, ls) = mean_std(line);
            let (dm, ds) = mean_std(doc);
            println!(
                "{:<8} {:>10} {:>12.5} {:>12.5} {:>12.5} {:>12.5} {:>12.2} {:>12} {:>12} {:>12.1}",
                size,
                name,
                lm,
                ls,
                dm,
                ds,
                100.0 * (1.0 - lm),
                k,
                test_cap,
                secs
            );
        }
    }
}
