//! Second-level CRF evaluation: registrant sub-field accuracy with a
//! per-label confusion matrix.
//!
//! The paper trains the twelve-state second-level CRF (§3.2) but reports
//! accuracy only for the first level; this binary records where our
//! second level stands so EXPERIMENTS.md can document both.
//!
//! ```text
//! repro-level2 [--train 1000] [--test 1000] [--seed 42]
//! ```

use whois_bench::*;
use whois_parser::{LevelParser, ParserConfig};

fn main() {
    let args = Args::from_env();
    let train_n: usize = args.get_or("train", 1000);
    let test_n: usize = args.get_or("test", 1000);
    let seed: u64 = args.get_or("seed", 42);

    let train_domains = corpus(seed, train_n);
    let test_domains = corpus(seed ^ 0x12e7, test_n);
    let train = second_level_examples(&train_domains);
    let test = second_level_examples(&test_domains);
    eprintln!(
        "[level2] {} training / {} test registrant blocks",
        train.len(),
        test.len()
    );

    let parser = LevelParser::train(&train, &ParserConfig::default());
    let stats = parser.evaluate(&test);
    println!("# Second-level (registrant sub-field) CRF");
    println!(
        "line error {:.5}  block error {:.5}  over {} blocks / {} lines\n",
        stats.line_error_rate(),
        stats.document_error_rate(),
        stats.documents,
        stats.lines
    );
    println!("{}", parser.confusion(&test).render());
}
