//! Table 2: generalization to new, unseen TLDs.
//!
//! Both parsers are built from `com` data only, then evaluated on one
//! sample record from each of the twelve new TLDs (each TLD has a single
//! consistent template, so one record suffices — exactly the paper's
//! setup). Reported as `errors/total` mislabeled lines per TLD.
//!
//! ```text
//! repro-table2 [--train 2000] [--seed 42]
//! ```
//!
//! Shape to reproduce: the statistical parser is never worse than the
//! rule-based one and both make errors on some TLDs, with the rule-based
//! parser far worse on several (the paper: asia, biz, coop, travel, us).

use whois_bench::*;
use whois_gen::tlds;
use whois_model::Tld;
use whois_parser::{LevelParser, ParserConfig, TrainExample};
use whois_rules::RuleBasedParser;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("train", 2000);
    let seed: u64 = args.get_or("seed", 42);

    eprintln!("[table2] building both parsers from {n} com records");
    let domains = corpus(seed, n);
    let stat = LevelParser::train(&first_level_examples(&domains), &ParserConfig::default());
    let rules = RuleBasedParser::fit(&rule_examples(&domains));

    println!("# Table 2: mislabeled lines on records from new TLDs (errors/total)");
    println!("{:<10} {:>12} {:>12}", "tld", "rule-based", "statistical");
    let mut rule_worse = 0;
    let mut stat_worse = 0;
    for tld in Tld::TABLE2_TLDS {
        let sample = tlds::tld_sample(tld, seed).expect("table-2 tld");
        let gold = sample.block_labels();
        let text = sample.text();
        let example = TrainExample {
            text: text.clone(),
            labels: gold.labels(),
        };
        let stat_err = stat.evaluate(std::slice::from_ref(&example)).line_errors;
        let rule_err = rules.evaluate(&[(text, gold.labels())]).line_errors;
        let total = gold.len();
        println!(
            "{:<10} {:>9}/{:<3} {:>9}/{:<3}",
            tld, rule_err, total, stat_err, total
        );
        if rule_err > stat_err {
            rule_worse += 1;
        }
        if stat_err > rule_err {
            stat_worse += 1;
        }
    }
    println!(
        "\nstatistical better on {rule_worse} TLDs, worse on {stat_worse} \
         (paper: rule-based never better, far worse on 5)"
    );
}
