//! Figure 1: the transition-detecting features between blocks.
//!
//! ```text
//! repro-fig1 [--train 2000] [--seed 42] [--per-edge 3]
//! ```
//!
//! Shape to reproduce: words like `created` detect the start of the date
//! block, `admin`/`administrative`/`contact` the other-contacts block,
//! and layout markers (`NL`, `SHL`, `SYM`) detect block boundaries.

use whois_bench::*;
use whois_parser::{inspect, LevelParser, ParserConfig};

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("train", 2000);
    let seed: u64 = args.get_or("seed", 42);
    let per_edge: usize = args.get_or("per-edge", 3);

    eprintln!("[fig1] training first-level CRF on {n} records");
    let domains = corpus(seed, n);
    let examples = first_level_examples(&domains);
    let parser = LevelParser::train(&examples, &ParserConfig::default());

    println!("# Figure 1: top transition-detecting features between blocks");
    print!("{}", inspect::render_transition_graph(&parser, per_edge));
}
