//! §5.3 maintainability: fixing new-TLD errors by retraining with a
//! handful of labeled examples.
//!
//! The paper: the statistical parser erred on 4 of the 12 new TLDs;
//! "after retraining the model with just four additional labeled examples
//! the resulting statistical parser has no errors." The rule-based
//! parser would instead need a human to revise its rule base per TLD.
//!
//! ```text
//! repro-adapt [--train 2000] [--seed 42]
//! ```

use whois_bench::*;
use whois_gen::tlds;
use whois_model::Tld;
use whois_parser::{LevelParser, ParserConfig, TrainExample};

fn main() {
    let args = Args::from_env();
    let n: usize = args.get_or("train", 2000);
    let seed: u64 = args.get_or("seed", 42);

    eprintln!("[adapt] training first-level CRF on {n} com records");
    let domains = corpus(seed, n);
    let mut examples = first_level_examples(&domains);
    // The maintenance loop keeps singleton words: a single added example
    // of a new format must contribute its discriminating words even on a
    // large base corpus.
    let cfg = ParserConfig {
        min_word_count: 1,
        ..Default::default()
    };
    let mut parser = LevelParser::train(&examples, &cfg);

    // Evaluate on every new TLD; collect the failing ones.
    let tld_example = |tld: &str, s: u64| {
        let sample = tlds::tld_sample(tld, s).expect("tld sample");
        TrainExample {
            text: sample.text(),
            labels: sample.block_labels().labels(),
        }
    };
    let mut failing = Vec::new();
    println!("# Section 5.3: adaptation to new TLD formats");
    println!("before retraining:");
    for tld in Tld::TABLE2_TLDS {
        let ex = tld_example(tld, seed);
        let errs = parser.evaluate(std::slice::from_ref(&ex)).line_errors;
        println!("  {tld:<8} {errs:>3}/{} mislabeled lines", ex.labels.len());
        if errs > 0 {
            failing.push(tld);
        }
    }
    println!("failing TLDs: {failing:?}");

    // Add ONE labeled example from each failing TLD and retrain.
    for tld in &failing {
        examples.push(tld_example(tld, seed));
    }
    parser.retrain(&examples, &cfg);

    println!(
        "\nafter retraining with {} additional labeled examples:",
        failing.len()
    );
    let mut remaining = 0;
    for tld in Tld::TABLE2_TLDS {
        // Evaluate on a *different* record from the TLD (same template,
        // new values) so the check is generalization, not memorization.
        let ex = tld_example(tld, seed ^ 0xadda);
        let errs = parser.evaluate(std::slice::from_ref(&ex)).line_errors;
        println!("  {tld:<8} {errs:>3}/{} mislabeled lines", ex.labels.len());
        remaining += errs;
    }
    println!(
        "\nremaining errors across all 12 TLDs: {remaining} \
         (paper: 0 after adding 4 examples)"
    );
    // Confirm the com performance did not regress.
    let holdout = first_level_examples(&corpus(seed ^ 0xc0, 300));
    let stats = parser.evaluate(&holdout);
    println!(
        "com holdout line error after adaptation: {:.5}",
        stats.line_error_rate()
    );
}
