//! # whois-bench
//!
//! Shared harness for the paper-reproduction binaries (`repro-*`, one per
//! table/figure — see `DESIGN.md` §5 for the index) and the criterion
//! benches.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use whois_gen::corpus::{generate_corpus, GenConfig, GeneratedDomain};
use whois_model::{BlockLabel, RegistrantLabel};
use whois_parser::TrainExample;

/// Tiny `--key value` argument parser for the repro binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse from `std::env::args`.
    pub fn from_env() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                let value = argv.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Look up a raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Typed lookup with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated list lookup with default.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.get(key) {
            Some(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }
}

/// Stable name of the process-wide SIMD kernel level
/// (`"scalar"`/`"sse2"`/`"avx2"`), recorded in every `BENCH_*.json`
/// header so results are comparable across hosts and under
/// `WHOIS_FORCE_SCALAR=1`.
pub fn kernel_level_name() -> &'static str {
    whois_crf::kernels::KernelLevel::active().name()
}

/// Generate the standard experiment corpus.
pub fn corpus(seed: u64, count: usize) -> Vec<GeneratedDomain> {
    generate_corpus(GenConfig::new(seed, count))
}

/// First-level training examples from generated domains.
pub fn first_level_examples(domains: &[GeneratedDomain]) -> Vec<TrainExample<BlockLabel>> {
    domains
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect()
}

/// Second-level training examples (registrant blocks).
pub fn second_level_examples(domains: &[GeneratedDomain]) -> Vec<TrainExample<RegistrantLabel>> {
    domains
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            if reg.is_empty() {
                return None;
            }
            Some(TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect()
}

/// `(text, gold)` examples for the rule-based parser.
pub fn rule_examples(domains: &[GeneratedDomain]) -> Vec<(String, Vec<BlockLabel>)> {
    domains
        .iter()
        .map(|d| (d.rendered.text(), d.block_labels().labels()))
        .collect()
}

/// `(registrar, text, gold)` examples for the template parser.
pub fn template_examples(domains: &[GeneratedDomain]) -> Vec<(String, String, Vec<BlockLabel>)> {
    domains
        .iter()
        .map(|d| {
            (
                d.registrar.name.to_string(),
                d.rendered.text(),
                d.block_labels().labels(),
            )
        })
        .collect()
}

/// Deterministically shuffle indices `0..n`.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    idx
}

/// Split indices into `k` folds (round-robin so folds are format-mixed).
pub fn folds(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    let order = shuffled_indices(n, seed);
    let mut folds = vec![Vec::new(); k.max(1)];
    for (i, idx) in order.into_iter().enumerate() {
        folds[i % k.max(1)].push(idx);
    }
    folds
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_everything() {
        let f = folds(100, 5, 1);
        assert_eq!(f.len(), 5);
        let total: usize = f.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        let mut all: Vec<usize> = f.concat();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert!(f.iter().all(|fold| fold.len() == 20));
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn example_builders_align() {
        let c = corpus(3, 20);
        let first = first_level_examples(&c);
        assert_eq!(first.len(), 20);
        for (ex, d) in first.iter().zip(&c) {
            assert_eq!(
                whois_model::non_empty_lines(&ex.text).len(),
                ex.labels.len(),
                "domain {}",
                d.facts.domain
            );
        }
        let second = second_level_examples(&c);
        assert!(!second.is_empty());
        assert_eq!(rule_examples(&c).len(), 20);
        assert_eq!(template_examples(&c).len(), 20);
    }
}
