//! # whois-rules
//!
//! The **rule-based** baseline parser of the paper:
//!
//! * [`RuleBasedParser`] — the §4.2 design: line-granularity tokens, a
//!   separator framework for `title: value` pairs, contextual block
//!   headers whose following lines inherit the block, and "a large number
//!   of special case rules" expressed as an ordered keyword table. It
//!   supports the paper's **rollback** methodology (§5.1): given a
//!   training subset, retain only the rules needed to label that subset,
//!   yielding the handicapped parsers of Figures 2–3. Structural rules
//!   (separator handling, symbol/boilerplate detection) cannot be rolled
//!   back, exactly as the paper notes.
//! * [`registrant_extractor`] — a `pythonwhois`-style general-regex
//!   registrant extractor (§2.3) that only understands explicit
//!   `Registrant ...: value` titles, reproducing that approach's failure
//!   on label-free legacy formats.

pub mod pythonlike;
pub mod rules;

pub use pythonlike::extract_registrant as registrant_extractor;
pub use rules::{RuleBasedParser, RuleId};
