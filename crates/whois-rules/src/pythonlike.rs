//! A `pythonwhois`-style registrant extractor (§2.3).
//!
//! The rule-based systems the paper measured (exemplified by
//! `pythonwhois`) "craft a more general series of rules in the form of
//! regular expressions designed to match a variety of common WHOIS
//! structures (e.g., name:value formats)". Crucially they only understand
//! *explicit* registrant-prefixed titles — when a record stores the
//! registrant in a label-free contextual block (the legacy formats) they
//! come up empty, which is how the paper measured them finding the
//! registrant only 59% of the time.

use whois_model::{Contact, RegistrantLabel};

/// Title patterns recognized as registrant fields, in `(needle, field)`
/// form. A line matches when its lower-cased title equals or starts with
/// the needle.
const PATTERNS: &[(&str, RegistrantLabel)] = &[
    ("registrant name", RegistrantLabel::Name),
    ("registrant contact name", RegistrantLabel::Name),
    ("registrant-name", RegistrantLabel::Name),
    ("owner name", RegistrantLabel::Name),
    ("owner-name", RegistrantLabel::Name),
    ("holder name", RegistrantLabel::Name),
    ("registrant organization", RegistrantLabel::Org),
    ("registrant org", RegistrantLabel::Org),
    ("registrant-organization", RegistrantLabel::Org),
    ("owner organization", RegistrantLabel::Org),
    ("owner-org", RegistrantLabel::Org),
    ("registrant street", RegistrantLabel::Street),
    ("registrant address", RegistrantLabel::Street),
    ("registrant-street", RegistrantLabel::Street),
    ("owner street", RegistrantLabel::Street),
    ("owner-street", RegistrantLabel::Street),
    ("registrant city", RegistrantLabel::City),
    ("registrant-city", RegistrantLabel::City),
    ("owner city", RegistrantLabel::City),
    ("owner-city", RegistrantLabel::City),
    ("registrant state", RegistrantLabel::State),
    ("registrant postal", RegistrantLabel::Postcode),
    ("registrant zip", RegistrantLabel::Postcode),
    ("registrant-zip", RegistrantLabel::Postcode),
    ("owner-zip", RegistrantLabel::Postcode),
    ("registrant country", RegistrantLabel::Country),
    ("registrant-country", RegistrantLabel::Country),
    ("owner-country", RegistrantLabel::Country),
    ("registrant phone", RegistrantLabel::Phone),
    ("registrant-phone", RegistrantLabel::Phone),
    ("owner-phone", RegistrantLabel::Phone),
    ("registrant fax", RegistrantLabel::Fax),
    ("registrant email", RegistrantLabel::Email),
    ("registrant e-mail", RegistrantLabel::Email),
    ("registrant-email", RegistrantLabel::Email),
    ("owner email", RegistrantLabel::Email),
    ("owner-email", RegistrantLabel::Email),
    ("registrant contact email", RegistrantLabel::Email),
    ("registrant id", RegistrantLabel::Id),
    ("registrant-id", RegistrantLabel::Id),
];

/// Extract a registrant contact using only explicit title matches.
/// Returns `None` when nothing registrant-titled is found.
pub fn extract_registrant(text: &str) -> Option<Contact> {
    let mut c = Contact::default();
    for line in text.lines() {
        // name:value and [Name] value shapes.
        let (title, value) = if let Some(rest) = line.trim_start().strip_prefix('[') {
            match rest.find(']') {
                Some(close) => (rest[..close].to_lowercase(), rest[close + 1..].trim()),
                None => continue,
            }
        } else {
            match line.split_once(':').or_else(|| line.split_once('\t')) {
                Some((t, v)) => (t.trim().to_lowercase(), v.trim()),
                None => continue,
            }
        };
        if value.is_empty() {
            continue;
        }
        for (needle, field) in PATTERNS {
            if title == *needle || title.starts_with(needle) {
                c.set_field(*field, value);
                break;
            }
        }
    }
    if c.is_empty() {
        None
    } else {
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_from_explicit_titles() {
        let text = "Domain Name: X.COM\nRegistrant Name: John Smith\n\
                    Registrant Email: j@x.org\nRegistrant Country: US";
        let c = extract_registrant(text).unwrap();
        assert_eq!(c.name.as_deref(), Some("John Smith"));
        assert_eq!(c.email.as_deref(), Some("j@x.org"));
        assert_eq!(c.country.as_deref(), Some("US"));
    }

    #[test]
    fn fails_on_label_free_blocks() {
        // The legacy contextual format defeats title-pattern systems.
        let text = "Registrant:\n   Acme Corp\n   John Smith\n   1 Main St\n   San Diego, CA 92093";
        assert!(extract_registrant(text).is_none());
    }

    #[test]
    fn handles_tab_and_bracket_shapes() {
        let c = extract_registrant("owner-name\tJane Roe").unwrap();
        assert_eq!(c.name.as_deref(), Some("Jane Roe"));
        let c = extract_registrant("[Registrant Name] Ken Sato").unwrap();
        assert_eq!(c.name.as_deref(), Some("Ken Sato"));
    }

    #[test]
    fn ignores_unrelated_titles() {
        assert!(extract_registrant("Admin Name: X\nTech Email: t@x.org").is_none());
        assert!(extract_registrant("").is_none());
    }

    #[test]
    fn generic_name_title_is_not_enough() {
        // Contextual sub-fields titled just "Name:" (the ctx families) are
        // invisible to this approach — there is no "registrant" anchor.
        let text = "Registrant:\n    Name: Jane Roe\n    Email: j@x.org";
        assert!(extract_registrant(text).is_none());
    }
}
