//! The rule-based parser (§4.2) with rollback (§5.1).
//!
//! The parser works exactly as the paper describes its ground-truth
//! labeler: line-granularity tokens, common separators splitting `title:
//! value` pairs, contextual headers ("a field title appears alone with the
//! following block representing the associated value"), and an ordered
//! table of keyword rules accreted "until [it] was able to completely
//! label the entries in our test corpus".
//!
//! For the Figure 2/3 comparison the paper "rolls back" the rule base,
//! "retaining only those rules that are necessary to label the WHOIS
//! records in these smaller subsets" — [`RuleBasedParser::fit`] implements
//! that: run the full parser over the training subset and keep only the
//! keyword rules that correctly decided at least one training line.
//! Structural rules (separators, context propagation, symbol/boilerplate
//! handling) "cannot be rolled back" and are always retained.

use whois_model::{BlockLabel, Contact, ErrorStats, ParsedRecord, RawRecord, RegistrantLabel};
use whois_tokenize::markers::indent_of;
use whois_tokenize::{split_title_value, word_classes, WordClass};

/// Identifier of a keyword rule (index into the static rule table).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RuleId(pub usize);

/// What a keyword rule matches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Kind {
    /// A header line (empty value side): sets the context block.
    Header,
    /// The `Contact Type: <block>` discriminator (registry dump formats).
    ContactType,
    /// A titled line whose title contains the keyword.
    Titled,
    /// A titled contact-field line (Name/Phone/...) that inherits the
    /// current context block.
    TitledContact,
}

/// One keyword rule.
#[derive(Copy, Clone, Debug)]
struct Rule {
    kind: Kind,
    keyword: &'static str,
    /// Label assigned (ignored for `TitledContact`/`ContactType`).
    label: BlockLabel,
}

/// The full, ordered rule table. First match wins; order encodes the
/// special-case priority accreted during development (dates before
/// registrar so "Registrar Registration Expiration Date" is a date;
/// admin/tech before registrant so "Admin Name" is not a registrant; …).
const RULES: &[Rule] = &[
    // --- Headers (empty value side) ---
    Rule {
        kind: Kind::Header,
        keyword: "administrative contact",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Header,
        keyword: "admin contact",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Header,
        keyword: "technical contact",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Header,
        keyword: "tech contact",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Header,
        keyword: "billing contact",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Header,
        keyword: "registrant",
        label: BlockLabel::Registrant,
    },
    Rule {
        kind: Kind::Header,
        keyword: "owner contact",
        label: BlockLabel::Registrant,
    },
    Rule {
        kind: Kind::Header,
        keyword: "owner",
        label: BlockLabel::Registrant,
    },
    Rule {
        kind: Kind::Header,
        keyword: "holder",
        label: BlockLabel::Registrant,
    },
    Rule {
        kind: Kind::Header,
        keyword: "domain servers",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Header,
        keyword: "name servers",
        label: BlockLabel::Domain,
    },
    // --- Contact-type discriminator ---
    Rule {
        kind: Kind::ContactType,
        keyword: "contact type",
        label: BlockLabel::Other,
    },
    // --- Titled: other contacts before registrant ---
    Rule {
        kind: Kind::Titled,
        keyword: "admin",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "technical",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "tech",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "billing",
        label: BlockLabel::Other,
    },
    // --- Titled: dates before registrar/domain ---
    Rule {
        kind: Kind::Titled,
        keyword: "creation",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "created",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "expir",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "expires",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "updated",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "update time",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "modified",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "changed",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "registered on",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "registration date",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "registration time",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "valid until",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "renewal",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "activated",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "touched",
        label: BlockLabel::Date,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "last update",
        label: BlockLabel::Date,
    },
    // --- Titled: registrar ---
    Rule {
        kind: Kind::Titled,
        keyword: "whois server",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "whois-server",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "referral",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "abuse",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "registrar",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "sponsoring",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "sponsor",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "provider",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "reseller",
        label: BlockLabel::Registrar,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "iana",
        label: BlockLabel::Registrar,
    },
    // --- Titled: registrant ---
    Rule {
        kind: Kind::Titled,
        keyword: "registrant",
        label: BlockLabel::Registrant,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "owner",
        label: BlockLabel::Registrant,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "holder",
        label: BlockLabel::Registrant,
    },
    // --- Titled: domain (before generic contact fields so "Domain Name" is not a name) ---
    Rule {
        kind: Kind::Titled,
        keyword: "domain",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "name server",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "nameserver",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "nserver",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "ns0",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "ns1",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "status",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "dnssec",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "host",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "dns",
        label: BlockLabel::Domain,
    },
    Rule {
        kind: Kind::Titled,
        keyword: "punycode",
        label: BlockLabel::Domain,
    },
    // --- Titled: generic contact fields (inherit context) ---
    Rule {
        kind: Kind::TitledContact,
        keyword: "contact",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "name",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "organisation",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "organization",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "address",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "street",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "city",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "state",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "province",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "postal",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "zip",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "country",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "phone",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "voice",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "telephone",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "fax",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "facsimile",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "email",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "e-mail",
        label: BlockLabel::Other,
    },
    Rule {
        kind: Kind::TitledContact,
        keyword: "mail",
        label: BlockLabel::Other,
    },
];

/// Split the line, recognizing both separators and the `[Title] value`
/// bracket convention.
fn split_line(line: &str) -> (String, String) {
    let trimmed = line.trim_start();
    if let Some(rest) = trimmed.strip_prefix('[') {
        if let Some(close) = rest.find(']') {
            return (
                rest[..close].trim().to_lowercase(),
                rest[close + 1..].trim().to_string(),
            );
        }
    }
    match split_title_value(line) {
        Some((t, v, _)) => (t.trim().to_lowercase(), v.trim().to_string()),
        None => (String::new(), line.trim().to_string()),
    }
}

fn block_for_contact_type(value: &str) -> BlockLabel {
    let v = value.to_lowercase();
    if v.contains("registrant") || v.contains("owner") || v.contains("holder") {
        BlockLabel::Registrant
    } else {
        BlockLabel::Other
    }
}

/// The rule-based parser: the full rule table plus an enabled mask.
#[derive(Clone, Debug)]
pub struct RuleBasedParser {
    enabled: Vec<bool>,
}

impl Default for RuleBasedParser {
    fn default() -> Self {
        Self::full()
    }
}

impl RuleBasedParser {
    /// The complete parser with every rule enabled (the paper's
    /// ground-truth labeler).
    pub fn full() -> Self {
        RuleBasedParser {
            enabled: vec![true; RULES.len()],
        }
    }

    /// Roll back to the rules needed for a training subset: run the full
    /// parser over the examples and keep a keyword rule only if it decided
    /// at least one line *correctly* (§5.1's handicapping).
    ///
    /// `examples` pairs record text with gold labels for its non-empty
    /// lines.
    pub fn fit(examples: &[(String, Vec<BlockLabel>)]) -> Self {
        let full = Self::full();
        let mut needed = vec![false; RULES.len()];
        for (text, gold) in examples {
            let decisions = full.label_with_rules(text);
            assert_eq!(decisions.len(), gold.len(), "gold labels misaligned");
            for ((label, rule), &g) in decisions.iter().zip(gold) {
                if let Some(RuleId(i)) = rule {
                    if *label == g {
                        needed[*i] = true;
                    }
                }
            }
        }
        RuleBasedParser { enabled: needed }
    }

    /// Number of enabled keyword rules.
    pub fn enabled_rules(&self) -> usize {
        self.enabled.iter().filter(|&&b| b).count()
    }

    /// Total keyword rules in the table.
    pub fn total_rules(&self) -> usize {
        RULES.len()
    }

    /// Label the non-empty lines of `text`.
    pub fn label_blocks(&self, text: &str) -> Vec<BlockLabel> {
        self.label_with_rules(text)
            .into_iter()
            .map(|(l, _)| l)
            .collect()
    }

    /// Label lines, reporting which keyword rule (if any) decided each.
    fn label_with_rules(&self, text: &str) -> Vec<(BlockLabel, Option<RuleId>)> {
        let mut out = Vec::new();
        let mut context: Option<BlockLabel> = None;
        let mut prev_blank = false;
        for line in text.lines() {
            if !line.chars().any(|c| c.is_alphanumeric()) {
                prev_blank = true;
                continue;
            }
            if prev_blank {
                context = None;
            }
            prev_blank = false;
            let (label, rule, new_context) = self.classify(line, context);
            if let Some(c) = new_context {
                context = Some(c);
            } else if rule.is_some() && matches!(RULES[rule.unwrap().0].kind, Kind::Titled) {
                // A confidently titled line of another block ends a
                // contextual run.
                context = None;
            }
            out.push((label, rule));
        }
        out
    }

    /// Classify one line. Returns (label, deciding keyword rule, context
    /// update).
    fn classify(
        &self,
        line: &str,
        context: Option<BlockLabel>,
    ) -> (BlockLabel, Option<RuleId>, Option<BlockLabel>) {
        let (title, value) = split_line(line);

        // Keyword rules over titled lines.
        if !title.is_empty() {
            for (i, rule) in RULES.iter().enumerate() {
                if !self.enabled[i] {
                    continue;
                }
                match rule.kind {
                    Kind::Header => {
                        if value.is_empty() && title.contains(rule.keyword) {
                            return (rule.label, Some(RuleId(i)), Some(rule.label));
                        }
                    }
                    Kind::ContactType => {
                        if !value.is_empty() && title.contains(rule.keyword) {
                            let block = block_for_contact_type(&value);
                            return (block, Some(RuleId(i)), Some(block));
                        }
                    }
                    Kind::Titled => {
                        if !value.is_empty() && title.contains(rule.keyword) {
                            return (rule.label, Some(RuleId(i)), None);
                        }
                    }
                    Kind::TitledContact => {
                        if !value.is_empty() && title.contains(rule.keyword) {
                            let label = context.unwrap_or(BlockLabel::Other);
                            return (label, Some(RuleId(i)), None);
                        }
                    }
                }
            }
            // Titled but unknown: header-shaped lines (no value) extend
            // nothing; fall through to the structural defaults.
            if value.is_empty() {
                return (context.unwrap_or(BlockLabel::Null), None, None);
            }
            return (context.unwrap_or(BlockLabel::Null), None, None);
        }

        // Bare header lines (no separator at all): "Registrant",
        // "Owner contact", ... — still keyword rules, subject to rollback.
        let bare = value.to_lowercase();
        let word_count = bare.split_whitespace().count();
        if word_count <= 3 {
            for (i, rule) in RULES.iter().enumerate() {
                if !self.enabled[i] || rule.kind != Kind::Header {
                    continue;
                }
                if bare == rule.keyword || bare.trim_end_matches(':') == rule.keyword {
                    return (rule.label, Some(RuleId(i)), Some(rule.label));
                }
            }
        }

        // Structural rules (never rolled back).
        if line
            .trim_start()
            .starts_with(|c: char| !c.is_alphanumeric())
        {
            // Symbol-leading banner.
            return (BlockLabel::Null, None, None);
        }
        if let Some(c) = context {
            if indent_of(line) > 0 {
                return (c, None, None);
            }
        }
        let classes = word_classes(&bare);
        if classes.contains(&WordClass::DomainName) && word_count == 1 {
            return (context.unwrap_or(BlockLabel::Domain), None, None);
        }
        if let Some(c) = context {
            // Unindented continuation immediately under a header.
            if classes.contains(&WordClass::Email)
                || classes.contains(&WordClass::Phone)
                || classes.contains(&WordClass::Country)
                || word_count <= 6
            {
                return (c, None, None);
            }
        }
        (BlockLabel::Null, None, None)
    }

    /// Evaluate block-label accuracy on examples (Figures 2–3 metrics).
    pub fn evaluate(&self, examples: &[(String, Vec<BlockLabel>)]) -> ErrorStats {
        let mut stats = ErrorStats::default();
        for (text, gold) in examples {
            let pred = self.label_blocks(text);
            assert_eq!(pred.len(), gold.len(), "evaluation misalignment");
            let errors = pred.iter().zip(gold).filter(|(p, g)| p != g).count();
            stats.record(gold.len(), errors);
        }
        stats
    }

    /// Parse a record into structured form (registrant sub-fields by
    /// title keywords and word classes).
    pub fn parse(&self, record: &RawRecord) -> ParsedRecord {
        let lines: Vec<&str> = record.lines();
        let blocks = self.label_blocks(&record.text);
        let mut out = ParsedRecord::new(record.domain.clone());
        let mut contact = Contact::default();
        for (&line, &label) in lines.iter().zip(&blocks) {
            out.push_block_line(label, line);
            let (title, value) = split_line(line);
            match label {
                BlockLabel::Registrar => {
                    if out.registrar.is_none()
                        && !value.is_empty()
                        && (title.contains("registrar")
                            || title.contains("provider")
                            || title.contains("sponsor"))
                        && !title.contains("whois")
                        && !title.contains("abuse")
                        && !title.contains("iana")
                        && !title.contains("url")
                    {
                        out.registrar = Some(value.clone());
                    }
                    if out.whois_server.is_none() && title.contains("whois") {
                        out.whois_server = Some(value.clone());
                    }
                }
                BlockLabel::Date if whois_model::parse_year(&value).is_some() => {
                    // Expiry first: "Registration Expiration Date" contains
                    // "registration" but is an expiry.
                    if (title.contains("expir")
                        || title.contains("valid")
                        || title.contains("renewal"))
                        && out.expires.is_none()
                    {
                        out.expires = Some(value.clone());
                    } else if (title.contains("creat")
                        || title.contains("registered")
                        || title.contains("registration")
                        || title.contains("activated"))
                        && out.created.is_none()
                    {
                        out.created = Some(value.clone());
                    }
                }
                BlockLabel::Registrant => {
                    if let Some(l) = registrant_field_for(&title, &value) {
                        contact.set_field(l, &value);
                    }
                }
                _ => {}
            }
        }
        if !contact.is_empty() {
            out.registrant = Some(contact);
        }
        out
    }
}

/// Keyword/class sub-field assignment within an identified registrant
/// block.
fn registrant_field_for(title: &str, value: &str) -> Option<RegistrantLabel> {
    if value.is_empty() {
        return None;
    }
    if !title.is_empty() {
        let t = title;
        let l = if t.contains("org") || t.contains("company") {
            RegistrantLabel::Org
        } else if t.contains("street") || t.contains("address") {
            RegistrantLabel::Street
        } else if t.contains("city") {
            RegistrantLabel::City
        } else if t.contains("state") || t.contains("province") {
            RegistrantLabel::State
        } else if t.contains("zip") || t.contains("postal") || t.contains("postcode") {
            RegistrantLabel::Postcode
        } else if t.contains("country") {
            RegistrantLabel::Country
        } else if t.contains("fax") || t.contains("facsimile") {
            RegistrantLabel::Fax
        } else if t.contains("phone") || t.contains("voice") || t.contains("telephone") {
            RegistrantLabel::Phone
        } else if t.contains("mail") {
            RegistrantLabel::Email
        } else if t.ends_with("id") {
            RegistrantLabel::Id
        } else if t.contains("name")
            || t.contains("registrant")
            || t.contains("owner")
            || t.contains("holder")
        {
            RegistrantLabel::Name
        } else {
            RegistrantLabel::Other
        };
        return Some(l);
    }
    // Bare lines: classify by content.
    let classes = word_classes(value);
    if classes.contains(&WordClass::Email) {
        Some(RegistrantLabel::Email)
    } else if classes.contains(&WordClass::Phone) {
        Some(RegistrantLabel::Phone)
    } else if classes.contains(&WordClass::Country) {
        Some(RegistrantLabel::Country)
    } else if classes.contains(&WordClass::FiveDigit) || classes.contains(&WordClass::PostcodeLike)
    {
        Some(RegistrantLabel::City) // "City, ST 99999" combined lines
    } else {
        Some(RegistrantLabel::Other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_gen::corpus::{generate_corpus, GenConfig};

    fn examples(seed: u64, n: usize) -> Vec<(String, Vec<BlockLabel>)> {
        generate_corpus(GenConfig::new(seed, n))
            .into_iter()
            .map(|d| (d.rendered.text(), d.block_labels().labels()))
            .collect()
    }

    #[test]
    fn full_parser_is_accurate_on_generated_corpus() {
        let ex = examples(51, 300);
        let parser = RuleBasedParser::full();
        let stats = parser.evaluate(&ex);
        assert!(
            stats.line_error_rate() < 0.02,
            "full rule parser line error {} (the paper's labeler is near-perfect on its corpus)",
            stats.line_error_rate()
        );
    }

    #[test]
    fn classify_titled_lines() {
        let p = RuleBasedParser::full();
        let labels = p.label_blocks(
            "Domain Name: X.COM\nRegistrar: GoDaddy\nCreation Date: 2014-01-01\n\
             Registrant Name: J\nAdmin Name: J\nRegistrar Registration Expiration Date: 2016-01-01",
        );
        use BlockLabel::*;
        assert_eq!(
            labels,
            vec![Domain, Registrar, Date, Registrant, Other, Date]
        );
    }

    #[test]
    fn contextual_blocks_inherit_label() {
        let p = RuleBasedParser::full();
        let labels = p.label_blocks(
            "Registrant:\n   Acme Corp\n   1 Main St\n   San Diego, CA 92093\n\n\
             Administrative Contact:\n   Jane Roe\n   jane@x.org",
        );
        use BlockLabel::*;
        assert_eq!(
            labels,
            vec![Registrant, Registrant, Registrant, Registrant, Other, Other, Other]
        );
    }

    #[test]
    fn contact_type_discriminator() {
        let p = RuleBasedParser::full();
        let labels = p.label_blocks(
            "Contact Type: registrant\nContact Name: J\nContact Mail: j@x.org\n\n\
             Contact Type: admin\nContact Name: K",
        );
        use BlockLabel::*;
        assert_eq!(
            labels,
            vec![Registrant, Registrant, Registrant, Other, Other]
        );
    }

    #[test]
    fn rollback_keeps_only_needed_rules() {
        let small = &examples(53, 5)[..];
        let rolled = RuleBasedParser::fit(small);
        let full = RuleBasedParser::full();
        assert!(rolled.enabled_rules() < full.enabled_rules());
        assert!(rolled.enabled_rules() > 5, "some rules always needed");
        // Rolled-back parser still labels its own training data well.
        let stats = rolled.evaluate(small);
        assert!(
            stats.line_error_rate() < 0.05,
            "{}",
            stats.line_error_rate()
        );
    }

    #[test]
    fn rollback_hurts_on_unseen_formats() {
        // Train on 5 records, evaluate on 200: the rolled-back parser must
        // be strictly worse than the full one (Figure 2's rule curve).
        let train = &examples(57, 5)[..];
        let test = examples(59, 200);
        let rolled = RuleBasedParser::fit(train);
        let full = RuleBasedParser::full();
        let r = rolled.evaluate(&test).line_error_rate();
        let f = full.evaluate(&test).line_error_rate();
        assert!(r > f, "rolled-back ({r}) should be worse than full ({f})");
    }

    #[test]
    fn parse_extracts_core_fields() {
        let p = RuleBasedParser::full();
        let raw = RawRecord::new(
            "x.com",
            "Registrar: eNom, Inc.\nCreation Date: 2012-03-04\n\
             Registrant Name: John Smith\nRegistrant Email: j@x.org",
        );
        let parsed = p.parse(&raw);
        assert_eq!(parsed.registrar.as_deref(), Some("eNom, Inc."));
        assert_eq!(parsed.creation_year(), Some(2012));
        let c = parsed.registrant.unwrap();
        assert_eq!(c.name.as_deref(), Some("John Smith"));
        assert_eq!(c.email.as_deref(), Some("j@x.org"));
    }

    #[test]
    fn symbol_banners_are_null() {
        let p = RuleBasedParser::full();
        let labels = p.label_blocks("% NOTICE: terms apply\n>>> Last update <<<");
        assert_eq!(labels, vec![BlockLabel::Null, BlockLabel::Null]);
    }

    #[test]
    fn fit_rejects_misaligned_gold() {
        let bad = vec![("two\nlines".to_string(), vec![BlockLabel::Null])];
        assert!(std::panic::catch_unwind(|| RuleBasedParser::fit(&bad)).is_err());
    }
}
