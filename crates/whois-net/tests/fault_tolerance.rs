//! Fault-tolerance integration tests: crash-safe journaled crawls with
//! zero duplicate queries, scripted fault plans, circuit-breaker
//! composition, and the seeded fault sweep the paper's §4.1 crawl
//! robustness story demands.
//!
//! The crash-resume proof works server-side: every store is wrapped in
//! a [`LoggingStore`], so "the resumed crawl re-queried nothing" is an
//! assertion about what the *servers* saw, not about what the crawler
//! claims.

use proptest::prelude::*;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use whois_net::{
    BreakerConfig, CrawlJournal, CrawlStatus, Crawler, CrawlerConfig, FateSpec, FaultConfig,
    FaultPlan, InMemoryStore, LoggingStore, RateLimitConfig, ServerConfig, WhoisClient,
    WhoisServer,
};

type RequestLog = Arc<parking_lot::Mutex<Vec<String>>>;

/// A thin registry + one registrar, both with request logging, built
/// from the same deterministic record set every time.
struct Ecosystem {
    registry: WhoisServer,
    _registrar: WhoisServer,
    domains: Vec<String>,
    resolver: HashMap<String, SocketAddr>,
    thin_log: RequestLog,
    thick_log: RequestLog,
}

fn ecosystem(n: usize, registry_cfg: ServerConfig, registrar_cfg: ServerConfig) -> Ecosystem {
    let mut thin = InMemoryStore::new();
    let mut thick = InMemoryStore::new();
    let mut domains = Vec::new();
    for i in 0..n {
        let d = format!("domain{i}.com");
        thin.insert(
            &d,
            format!(
                "   Domain Name: {}\n   Registrar: TESTREG\n   Whois Server: whois.testreg.example\n",
                d.to_uppercase()
            ),
        );
        thick.insert(
            &d,
            format!("Domain Name: {d}\nRegistrar: TestReg\nRegistrant Name: Owner {i}\n"),
        );
        domains.push(d);
    }
    let thin = LoggingStore::new(thin);
    let thick = LoggingStore::new(thick);
    let thin_log = thin.log();
    let thick_log = thick.log();
    let registry = WhoisServer::start(thin, registry_cfg).unwrap();
    let registrar = WhoisServer::start(thick, registrar_cfg).unwrap();
    let mut resolver = HashMap::new();
    resolver.insert("whois.testreg.example".to_string(), registrar.addr());
    Ecosystem {
        registry,
        _registrar: registrar,
        domains,
        resolver,
        thin_log,
        thick_log,
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("whois-ftol-{}-{name}.wcj", std::process::id()))
}

/// Fast, fault-free crawler config (journaled runs must not sleep).
fn quick_cfg() -> CrawlerConfig {
    CrawlerConfig {
        workers: 2,
        retries: 3,
        max_delay: Duration::from_millis(5),
        retry_pause: Duration::from_millis(1),
        ..Default::default()
    }
}

#[test]
fn crash_resume_equals_uninterrupted_with_zero_duplicate_queries() {
    let n = 12;

    // Baseline: one uninterrupted journaled crawl.
    let base_path = tmp("baseline");
    let _ = std::fs::remove_file(&base_path);
    let eco = ecosystem(n, ServerConfig::default(), ServerConfig::default());
    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        quick_cfg(),
    ));
    let mut journal = CrawlJournal::open_with_sync(&base_path, false).unwrap();
    let baseline = crawler
        .crawl_resumable(&eco.domains, &mut journal)
        .unwrap()
        .canonical_summary();
    drop(journal);
    let full_bytes = std::fs::read(&base_path).unwrap();
    drop(eco);

    // Simulate kill -9 at several points, including mid-frame (torn
    // tail): truncate the journal file, reopen, resume against fresh
    // servers whose logs prove nothing journaled was re-queried.
    let cuts = [
        full_bytes.len() / 5,
        full_bytes.len() / 2,
        full_bytes.len() - 3, // tears the final frame
    ];
    for (i, &cut) in cuts.iter().enumerate() {
        let path = tmp(&format!("resume-{i}"));
        std::fs::write(&path, &full_bytes[..cut.max(4)]).unwrap();
        let mut journal = CrawlJournal::open_with_sync(&path, false).unwrap();
        let done_before: Vec<String> = journal.results().iter().map(|r| r.domain.clone()).collect();

        let eco = ecosystem(n, ServerConfig::default(), ServerConfig::default());
        let crawler = Arc::new(Crawler::new(
            eco.registry.addr(),
            eco.resolver.clone(),
            quick_cfg(),
        ));
        let report = crawler.crawl_resumable(&eco.domains, &mut journal).unwrap();
        assert_eq!(
            report.canonical_summary(),
            baseline,
            "cut {cut}: resumed report must equal the uninterrupted run"
        );
        assert_eq!(report.results.len(), n);

        // Zero duplicate queries, proven server-side.
        let thin_seen = eco.thin_log.lock().clone();
        let thick_seen = eco.thick_log.lock().clone();
        for d in &done_before {
            assert!(
                !thin_seen.contains(d) && !thick_seen.contains(d),
                "cut {cut}: journaled domain {d} was re-queried"
            );
        }
        // And the remaining domains were each fetched exactly once.
        for d in eco.domains.iter().filter(|d| !done_before.contains(d)) {
            assert_eq!(
                thin_seen.iter().filter(|q| *q == d).count(),
                1,
                "cut {cut}: {d} thin-queried more than once"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
    std::fs::remove_file(&base_path).unwrap();
}

#[test]
fn crawl_into_store_sinks_best_bodies_and_dedups_recrawls() {
    let n = 8;
    let eco = ecosystem(n, ServerConfig::default(), ServerConfig::default());
    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        quick_cfg(),
    ));
    let dir = std::env::temp_dir().join(format!("whois-crawl-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = whois_store::RecordStore::open_for_model(&dir, "any-model", 0, false).unwrap();

    let (report, sunk) = crawler.crawl_into_store(&eco.domains, &store);
    assert_eq!(report.count(CrawlStatus::Full), n);
    assert_eq!(sunk, n as u64, "every full crawl persists one body");
    for r in &report.results {
        // The thick record is the best body; it must be what was stored.
        assert_eq!(
            store.get_raw(&r.domain).as_deref(),
            r.thick.as_deref(),
            "{}: stored body must be the thick record",
            r.domain
        );
    }

    // An identical re-crawl finds every body already on disk.
    let (_, resunk) = crawler.crawl_into_store(&eco.domains, &store);
    assert_eq!(resunk, 0, "unchanged bodies dedup to zero new writes");
    assert_eq!(store.stats().raw_entries, n as u64);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_mid_crawl_then_resume_finishes_every_domain() {
    let n = 30;
    let path = tmp("cancel-resume");
    let _ = std::fs::remove_file(&path);
    let eco = ecosystem(n, ServerConfig::default(), ServerConfig::default());

    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        CrawlerConfig {
            workers: 1,
            ..quick_cfg()
        },
    ));
    // Cancel shortly into the run; whatever completed is journaled.
    let canceller = {
        let crawler = crawler.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            crawler.cancel();
        })
    };
    let mut journal = CrawlJournal::open_with_sync(&path, false).unwrap();
    let partial = crawler.crawl_resumable(&eco.domains, &mut journal).unwrap();
    canceller.join().unwrap();
    assert!(partial.results.len() <= n);

    // Resume: the same crawler, same journal, completes the rest.
    let report = crawler.crawl_resumable(&eco.domains, &mut journal).unwrap();
    assert_eq!(report.results.len(), n);
    assert_eq!(report.count(CrawlStatus::Full), n);

    // Across both runs, every domain was thin-queried exactly once —
    // cancellation is at domain boundaries, so no work is repeated.
    let thin_seen = eco.thin_log.lock().clone();
    for d in &eco.domains {
        assert_eq!(
            thin_seen.iter().filter(|q| *q == d).count(),
            1,
            "{d} queried {}x across cancel+resume",
            thin_seen.iter().filter(|q| *q == d).count()
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn rerunning_a_completed_crawl_returns_without_querying() {
    let n = 5;
    let path = tmp("complete-rerun");
    let _ = std::fs::remove_file(&path);
    let eco = ecosystem(n, ServerConfig::default(), ServerConfig::default());
    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        quick_cfg(),
    ));
    let mut journal = CrawlJournal::open_with_sync(&path, false).unwrap();
    let baseline = crawler
        .crawl_resumable(&eco.domains, &mut journal)
        .unwrap()
        .canonical_summary();
    let thin_queries = eco.thin_log.lock().len();

    // Rerun with everything already journaled — and with the inputs
    // re-cased, which the journal matches case-insensitively. Must
    // return the same report promptly (a regression deadlocks, hence
    // the watchdog) and issue zero new queries.
    let recased: Vec<String> = eco.domains.iter().map(|d| d.to_uppercase()).collect();
    let (tx, rx) = std::sync::mpsc::channel();
    {
        let crawler = crawler.clone();
        std::thread::spawn(move || {
            let report = crawler.crawl_resumable(&recased, &mut journal).unwrap();
            let _ = tx.send(report);
        });
    }
    let report = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("rerun of a completed crawl must return, not hang");
    assert_eq!(
        report.results.len(),
        n,
        "re-cased inputs must not be dropped"
    );
    assert_eq!(report.canonical_summary(), baseline);
    assert_eq!(
        eco.thin_log.lock().len(),
        thin_queries,
        "completed crawl re-queried the registry"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn duplicate_inputs_are_crawled_once_but_reported_per_occurrence() {
    let n = 4;
    let path = tmp("dupes");
    let _ = std::fs::remove_file(&path);
    let eco = ecosystem(n, ServerConfig::default(), ServerConfig::default());
    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        quick_cfg(),
    ));
    // Each domain appears twice: once as-is, once upper-cased.
    let mut doubled = eco.domains.clone();
    doubled.extend(eco.domains.iter().map(|d| d.to_uppercase()));
    let mut journal = CrawlJournal::open_with_sync(&path, false).unwrap();
    let report = crawler.crawl_resumable(&doubled, &mut journal).unwrap();
    assert_eq!(report.results.len(), doubled.len());
    assert_eq!(report.count(CrawlStatus::Full), doubled.len());
    assert_eq!(journal.len(), n, "one journal frame per distinct domain");
    let thin_seen = eco.thin_log.lock().clone();
    for d in &eco.domains {
        assert_eq!(
            thin_seen
                .iter()
                .filter(|q| q.eq_ignore_ascii_case(d))
                .count(),
            1,
            "{d} must be queried exactly once despite duplicate inputs"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mojibake_registrar_yields_full_records_with_replacement_chars() {
    // Every thick reply is corrupted into invalid UTF-8: the crawler
    // must decode lossily and keep the record, not drop the long tail.
    let registrar_cfg = ServerConfig {
        faults: FaultConfig {
            non_utf8_chance: 1.0,
            ..FaultConfig::none()
        },
        fault_seed: 7,
        ..Default::default()
    };
    let eco = ecosystem(6, ServerConfig::default(), registrar_cfg);
    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        quick_cfg(),
    ));
    let report = crawler.crawl(&eco.domains);
    assert_eq!(report.count(CrawlStatus::Full), 6);
    for r in &report.results {
        let thick = r.thick.as_deref().unwrap();
        assert!(
            thick.contains('\u{FFFD}'),
            "corrupted body should carry replacement chars: {thick:?}"
        );
        assert!(thick.contains("Domain Name"), "{thick:?}");
    }
}

/// The fault-sweep crawler: breakers + salvage passes + tight pacing.
fn sweep_cfg() -> CrawlerConfig {
    CrawlerConfig {
        workers: 4,
        retries: 3,
        max_delay: Duration::from_millis(5),
        retry_pause: Duration::from_millis(1),
        breaker: Some(BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(10),
        }),
        salvage_passes: 2,
        ..Default::default()
    }
}

fn dropping(seed: u64) -> ServerConfig {
    ServerConfig {
        faults: FaultConfig {
            drop_chance: 0.3,
            ..FaultConfig::none()
        },
        fault_seed: seed,
        ..Default::default()
    }
}

#[test]
fn fault_sweep_meets_coverage_and_two_runs_are_byte_identical() {
    let run = || {
        let eco = ecosystem(40, dropping(1), dropping(2));
        let crawler = Arc::new(Crawler::new(
            eco.registry.addr(),
            eco.resolver.clone(),
            sweep_cfg(),
        ));
        crawler.crawl(&eco.domains)
    };
    let first = run();
    assert!(
        first.coverage() >= 0.99,
        "drop_chance 0.3 with retries+breakers+salvage must still cover: {}",
        first.coverage()
    );
    // Keyed fault determinism: a fresh, identically seeded ecosystem
    // and crawler reproduce the report byte for byte, regardless of
    // worker interleaving.
    let second = run();
    assert_eq!(first.canonical_summary(), second.canonical_summary());
}

#[test]
fn scripted_stalls_exhaust_timeouts_then_succeed() {
    // "domain2.com stalls twice, then succeeds": the client's read
    // timeout turns each stall into a failed attempt; the third attempt
    // delivers.
    let stall = Duration::from_millis(200);
    let registry_cfg = ServerConfig {
        fault_plan: FaultPlan::new().script(
            "domain2.com",
            [FateSpec::Stall(stall), FateSpec::Stall(stall)],
        ),
        ..Default::default()
    };
    let eco = ecosystem(4, registry_cfg, ServerConfig::default());
    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        CrawlerConfig {
            client: WhoisClient {
                read_timeout: Duration::from_millis(60),
                ..Default::default()
            },
            ..quick_cfg()
        },
    ));
    let report = crawler.crawl(&eco.domains);
    assert_eq!(report.count(CrawlStatus::Full), 4);
    let scripted = report
        .results
        .iter()
        .find(|r| r.domain == "domain2.com")
        .unwrap();
    // Two stalled thin attempts + the delivering one + one thick query
    // (a loaded host can add spurious timeouts, never remove the two).
    assert!(scripted.attempts >= 4, "{scripted:?}");
    // The stalls registered as endpoint failures on the registry.
    assert!(report.endpoints[&eco.registry.addr()].failures >= 2);
}

#[test]
fn scripted_ban_composes_with_rate_limiter_then_recovers() {
    // Ban(2): the request that trips it and the next one get explicit
    // rate-limit errors, and the server-side limiter imposes a real
    // penalty window; the crawler backs off and still completes.
    let registrar_cfg = ServerConfig {
        rate_limit: RateLimitConfig {
            burst: u32::MAX,
            per_second: f64::INFINITY,
            penalty: Duration::from_millis(30),
        },
        fault_plan: FaultPlan::new().script("domain0.com", [FateSpec::Ban(2)]),
        ..Default::default()
    };
    let eco = ecosystem(3, ServerConfig::default(), registrar_cfg);
    let crawler = Arc::new(Crawler::new(
        eco.registry.addr(),
        eco.resolver.clone(),
        CrawlerConfig {
            retries: 4,
            retry_pause: Duration::from_millis(40),
            ..quick_cfg()
        },
    ));
    let report = crawler.crawl(&eco.domains);
    assert_eq!(report.count(CrawlStatus::Full), 3, "{:?}", report.results);
    let banned = report
        .results
        .iter()
        .find(|r| r.domain == "domain0.com")
        .unwrap();
    assert!(banned.attempts > 2, "{banned:?}");
    // The crawler learned a pacing delay from the explicit refusals.
    assert!(report.inferred_delays[&eco._registrar.addr()] > Duration::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under aggressive mixed faults (every destructive fate ≥ 0.2),
    /// crawls always terminate and account for every input domain:
    /// the four status counts sum to the input count, no domain is
    /// lost or duplicated.
    #[test]
    fn aggressive_fault_crawls_terminate_with_complete_accounting(
        drop_chance in 0.2f64..0.45,
        stall_chance in 0.2f64..0.45,
        truncate_chance in 0.2f64..0.45,
        ban_chance in 0.2f64..0.35,
        seed in 0u64..1000,
    ) {
        let faults = FaultConfig {
            drop_chance,
            stall_chance,
            stall: Duration::from_millis(2),
            truncate_chance,
            truncate_at: 10,
            ban_chance,
            ban_requests: 2,
            ..FaultConfig::none()
        };
        let server_cfg = || ServerConfig {
            faults,
            fault_seed: seed,
            rate_limit: RateLimitConfig {
                burst: u32::MAX,
                per_second: f64::INFINITY,
                penalty: Duration::from_millis(3),
            },
            ..Default::default()
        };
        let eco = ecosystem(6, server_cfg(), server_cfg());
        let crawler = Arc::new(Crawler::new(
            eco.registry.addr(),
            eco.resolver.clone(),
            CrawlerConfig {
                workers: 2,
                retries: 2,
                max_delay: Duration::from_millis(4),
                retry_pause: Duration::from_millis(1),
                salvage_passes: 1,
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&eco.domains);
        prop_assert_eq!(report.results.len(), 6);
        let counted = report.count(CrawlStatus::Full)
            + report.count(CrawlStatus::ThinOnly)
            + report.count(CrawlStatus::NoMatch)
            + report.count(CrawlStatus::Failed);
        prop_assert_eq!(counted, 6, "status counts must sum to the input count");
        let mut seen: Vec<&str> = report.results.iter().map(|r| r.domain.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), 6, "every domain reported exactly once");
    }
}
