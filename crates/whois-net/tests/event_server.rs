//! Differential tests: the event-loop serving core against the
//! blocking thread-per-connection oracle.
//!
//! Both cores share one protocol-decision function, but the byte path
//! around it (readiness loop, pooled buffers, vectored writes, deadline
//! stalls) is completely different — so these tests drive identical
//! traffic at both and require byte-identical replies, including under
//! scripted fault trajectories and arbitrarily fragmented input.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use whois_net::{FateSpec, FaultPlan, InMemoryStore, ServerConfig, ServingMode, WhoisServer};

fn store() -> InMemoryStore {
    InMemoryStore::from_records([
        (
            "example.com".to_string(),
            "Domain Name: EXAMPLE.COM\nRegistrar: Test Registrar\nStatus: ok\n".to_string(),
        ),
        (
            "registry.net".to_string(),
            "Domain Name: REGISTRY.NET\nWhois Server: whois.registrar.test\n".to_string(),
        ),
        (
            "scripted.com".to_string(),
            "Domain Name: SCRIPTED.COM\nRegistrar: Fault Lab\n".to_string(),
        ),
    ])
}

fn start(mode: ServingMode, plan: FaultPlan) -> WhoisServer {
    let cfg = ServerConfig {
        mode,
        fault_plan: plan,
        read_timeout: Duration::from_secs(5),
        ..Default::default()
    };
    WhoisServer::start(store(), cfg).expect("start server")
}

/// Send `payload` split at the given chunk sizes (remainder goes last),
/// then read the connection to EOF.
fn raw_exchange(addr: SocketAddr, payload: &[u8], splits: &[usize]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sent = 0;
    for &n in splits {
        let end = (sent + n.max(1)).min(payload.len());
        if end > sent {
            stream.write_all(&payload[sent..end]).unwrap();
            sent = end;
            // Give the fragment time to arrive as its own segment.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    if sent < payload.len() {
        stream.write_all(&payload[sent..]).unwrap();
    }
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    reply
}

#[test]
fn scripted_fault_trajectories_are_byte_identical_across_modes() {
    // One query walks the full fate gamut; the two cores must emit the
    // same bytes at every step (including "no bytes at all").
    let plan = || {
        FaultPlan::new().script(
            "scripted.com",
            [
                FateSpec::Deliver,
                FateSpec::Empty,
                FateSpec::Truncate(12),
                FateSpec::NonUtf8,
                FateSpec::Garble,
                FateSpec::Stall(Duration::from_millis(40)),
                FateSpec::Ban(2),
                // (Ban covers the next request too.)
                FateSpec::Drop,
                FateSpec::Deliver,
            ],
        )
    };
    let event = start(ServingMode::EventLoop, plan());
    let blocking = start(ServingMode::Blocking, plan());

    for step in 0..10 {
        let got_event = raw_exchange(event.addr(), b"scripted.com\r\n", &[]);
        let got_blocking = raw_exchange(blocking.addr(), b"scripted.com\r\n", &[]);
        assert_eq!(
            got_event, got_blocking,
            "step {step}: event-loop and blocking replies diverged"
        );
    }
    assert_eq!(
        event
            .stats()
            .faulted
            .load(std::sync::atomic::Ordering::Relaxed),
        blocking
            .stats()
            .faulted
            .load(std::sync::atomic::Ordering::Relaxed),
        "fault counters diverged"
    );
}

#[test]
fn pipelined_second_line_is_ignored_identically() {
    // whois-net is a one-query-per-connection protocol: extra pipelined
    // lines after the first are not answered, in either core.
    let event = start(ServingMode::EventLoop, FaultPlan::new());
    let blocking = start(ServingMode::Blocking, FaultPlan::new());
    let payload = b"example.com\r\nregistry.net\r\n";
    let got_event = raw_exchange(event.addr(), payload, &[]);
    let got_blocking = raw_exchange(blocking.addr(), payload, &[]);
    assert_eq!(got_event, got_blocking);
    assert!(String::from_utf8_lossy(&got_event).contains("EXAMPLE.COM"));
    assert!(!String::from_utf8_lossy(&got_event).contains("REGISTRY.NET"));
}

#[test]
fn byte_at_a_time_query_is_answered_by_the_event_loop() {
    let event = start(ServingMode::EventLoop, FaultPlan::new());
    let payload = b"registry.net\r\n";
    let splits: Vec<usize> = vec![1; payload.len()];
    let got = raw_exchange(event.addr(), payload, &splits);
    assert!(
        String::from_utf8_lossy(&got).contains("REGISTRY.NET"),
        "dribbled query still answered: {got:?}"
    );
}

#[test]
fn many_concurrent_connections_on_one_loop_thread() {
    // A sanity-scale soak: hundreds of simultaneous sockets served by
    // the single event-loop thread (the bench pushes this to thousands).
    let event = start(ServingMode::EventLoop, FaultPlan::new());
    let addr = event.addr();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let got = raw_exchange(addr, b"example.com\r\n", &[]);
                    assert!(String::from_utf8_lossy(&got).contains("EXAMPLE.COM"));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        event
            .stats()
            .connections
            .load(std::sync::atomic::Ordering::Relaxed),
        200
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any fragmentation of the query bytes produces the same reply as
    /// whole-line delivery, on both serving cores.
    #[test]
    fn fragmented_queries_decode_identically(
        domain_idx in 0usize..3,
        splits in proptest::collection::vec(1usize..8, 0..4),
    ) {
        let domains = ["example.com", "registry.net", "unknown.org"];
        let payload = format!("{}\r\n", domains[domain_idx]).into_bytes();

        let event = start(ServingMode::EventLoop, FaultPlan::new());
        let blocking = start(ServingMode::Blocking, FaultPlan::new());

        let whole_event = raw_exchange(event.addr(), &payload, &[]);
        let frag_event = raw_exchange(event.addr(), &payload, &splits);
        let whole_blocking = raw_exchange(blocking.addr(), &payload, &[]);
        let frag_blocking = raw_exchange(blocking.addr(), &payload, &splits);

        prop_assert_eq!(&whole_event, &frag_event, "event loop: fragmentation changed the reply");
        prop_assert_eq!(&whole_blocking, &frag_blocking, "blocking: fragmentation changed the reply");
        prop_assert_eq!(&whole_event, &whole_blocking, "modes diverged");
    }
}
