//! A WHOIS server over loopback TCP: one protocol, two serving cores.
//!
//! The protocol logic — rate limiting, store lookup, fault injection —
//! is a single pure-ish [`decide`] step shared by both cores, so the
//! bytes a client sees are identical whichever core served it:
//!
//! * [`ServingMode::EventLoop`] (default) — one thread multiplexing
//!   every connection through an epoll [`Poller`]: nonblocking accept,
//!   pooled read buffers, per-connection state machines, fault stalls
//!   expressed as deadlines instead of sleeping threads.
//! * [`ServingMode::Blocking`] — the legacy thread-per-connection path,
//!   retained as the fallback for platforms without epoll and as the
//!   differential-test oracle for the event loop.
//!
//! Both cores enforce the same guards: a total per-connection read
//! deadline (a slowloris client dribbling bytes forever is closed with
//! an explicit timeout error), and an optional per-IP concurrent
//! connection cap checked at accept time.

use crate::buffer_pool::BufferPool;
use crate::conn::{Chunk, ConnPhase, EventConn};
use crate::event::Poller;
use crate::fault::{Fate, FaultConfig, FaultInjector, FaultPlan};
use crate::limiter::{KeyedRateLimiter, RateLimitConfig};
use crate::proto;
use crate::store::RecordStore;
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reply line for rate-limited (and fault-banned) queries.
const RATE_LIMIT_LINE: &[u8] = b"Error: rate limit exceeded; try again later\r\n";
/// Reply line written when the read deadline expires mid-query.
const TIMEOUT_LINE: &[u8] = b"Error: request timed out; closing connection\r\n";
/// Reply line for connections refused by the per-IP concurrency cap.
const CONN_CAP_LINE: &[u8] = b"Error: too many connections; try again later\r\n";

/// Which serving core handles accepted connections.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ServingMode {
    /// One epoll event loop multiplexing every connection on the accept
    /// thread. Falls back to [`Blocking`](Self::Blocking) on platforms
    /// without epoll.
    #[default]
    EventLoop,
    /// Thread-per-connection with blocking I/O.
    Blocking,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Which serving core runs accepted connections.
    pub mode: ServingMode,
    /// Rate limiting keyed per source IP, as the paper describes ("once
    /// a given source IP has issued more queries … than its limit").
    pub rate_limit: RateLimitConfig,
    /// Optional global cap shared by all source IPs on top of the
    /// per-IP limit (a server's total capacity).
    pub global_limit: Option<RateLimitConfig>,
    /// Optional cap on concurrent connections per source IP, enforced
    /// at accept time before any bytes are read.
    pub max_conns_per_ip: Option<u32>,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Fault-injection seed.
    pub fault_seed: u64,
    /// Scripted per-query fates, consumed before the probabilistic
    /// `faults` roll (see [`FaultPlan`]).
    pub fault_plan: FaultPlan,
    /// When rate-limited or connection-capped: reply with an explicit
    /// error (`true`) or close silently (`false`) — both behaviours
    /// exist in the wild.
    pub limit_replies_error: bool,
    /// Total time a connection may take to deliver one complete query
    /// line, measured from accept. A client dribbling bytes slower than
    /// this is closed with a timeout error (slowloris guard).
    pub read_timeout: Duration,
    /// How long [`shutdown`](WhoisServer::shutdown) waits for in-flight
    /// connections to drain before declaring them aborted.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mode: ServingMode::default(),
            rate_limit: RateLimitConfig::unlimited(),
            global_limit: None,
            max_conns_per_ip: None,
            faults: FaultConfig::none(),
            fault_seed: 0,
            fault_plan: FaultPlan::new(),
            limit_replies_error: true,
            read_timeout: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Counters exposed by a running server.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Queries answered with a record.
    pub answered: AtomicU64,
    /// Queries answered with "no match".
    pub no_match: AtomicU64,
    /// Queries refused by the rate limiter.
    pub rate_limited: AtomicU64,
    /// Replies sabotaged by fault injection.
    pub faulted: AtomicU64,
    /// Connections closed by the read-deadline (slowloris) guard.
    pub idle_closed: AtomicU64,
    /// Connections refused at accept by the per-IP concurrency cap.
    pub conn_capped: AtomicU64,
}

/// What [`WhoisServer::shutdown`] (or [`ServerHandle::shutdown`])
/// observed while stopping: how many in-flight connections completed
/// during the drain window versus how many were still running when the
/// window expired and were abandoned to their read timeouts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Connections in flight at the shutdown signal that completed
    /// within the drain window.
    pub drained: u64,
    /// Connections still running when the drain window expired.
    pub aborted: u64,
}

/// State shared between the server, its handle, and connection threads.
#[derive(Debug, Default)]
struct Lifecycle {
    shutdown: AtomicBool,
    /// Connections currently being handled.
    active: AtomicU64,
    /// Connections that completed after the shutdown signal.
    drained: AtomicU64,
}

/// A WHOIS server bound to an ephemeral loopback port.
pub struct WhoisServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    lifecycle: Arc<Lifecycle>,
    drain_timeout: Duration,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Cheap handle for queries — and shutdown — against a running server.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    /// The bound address.
    pub addr: SocketAddr,
    lifecycle: Arc<Lifecycle>,
    drain_timeout: Duration,
}

impl ServerHandle {
    /// Signal shutdown and wait up to the server's drain timeout for
    /// in-flight connections to finish, reporting how many drained
    /// versus how many had to be abandoned. Idempotent; a second call
    /// reports whatever remains.
    pub fn shutdown(&self) -> ShutdownReport {
        self.lifecycle.shutdown.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.drain_timeout;
        let baseline = self.lifecycle.drained.load(Ordering::SeqCst);
        while self.lifecycle.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        ShutdownReport {
            drained: self.lifecycle.drained.load(Ordering::SeqCst) - baseline,
            aborted: self.lifecycle.active.load(Ordering::SeqCst),
        }
    }
}

/// Decrements the active-connection gauge (and counts the connection as
/// drained when it outlived the shutdown signal) even if the handler
/// errors out.
struct ConnectionGuard<'a>(&'a Lifecycle);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        if self.0.shutdown.load(Ordering::SeqCst) {
            self.0.drained.fetch_add(1, Ordering::SeqCst);
        }
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl WhoisServer {
    /// Start a server for `store`.
    pub fn start<S: RecordStore>(store: S, cfg: ServerConfig) -> std::io::Result<WhoisServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ServerStats::default());
        let lifecycle = Arc::new(Lifecycle::default());
        let drain_timeout = cfg.drain_timeout;
        let store = Arc::new(store);
        let limiter = match cfg.global_limit {
            Some(global) => KeyedRateLimiter::with_global_cap(cfg.rate_limit, global),
            None => KeyedRateLimiter::new(cfg.rate_limit),
        }
        .with_conn_cap(cfg.max_conns_per_ip);
        let limiter = Arc::new(Mutex::new(limiter));
        let injector = Arc::new(Mutex::new(FaultInjector::with_plan(
            cfg.faults,
            cfg.fault_seed,
            cfg.fault_plan.clone(),
        )));

        // The event loop needs epoll; quietly fall back to the blocking
        // core where it is unavailable.
        let poller = match cfg.mode {
            ServingMode::EventLoop => Poller::new().ok(),
            ServingMode::Blocking => None,
        };

        let thread_stats = stats.clone();
        let thread_lifecycle = lifecycle.clone();
        let name = format!("whois-server-{}", addr.port());
        let accept_thread = if let Some(poller) = poller {
            std::thread::Builder::new().name(name).spawn(move || {
                run_event_loop(
                    poller,
                    listener,
                    store,
                    thread_stats,
                    thread_lifecycle,
                    limiter,
                    injector,
                    cfg,
                );
            })
        } else {
            std::thread::Builder::new().name(name).spawn(move || {
                run_blocking_accept(
                    listener,
                    store,
                    thread_stats,
                    thread_lifecycle,
                    limiter,
                    injector,
                    cfg,
                );
            })
        }
        .expect("spawn serving thread");

        Ok(WhoisServer {
            addr,
            stats,
            lifecycle,
            drain_timeout,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            lifecycle: self.lifecycle.clone(),
            drain_timeout: self.drain_timeout,
        }
    }

    /// Server-side counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop accepting, drain in-flight connections (bounded by the
    /// configured drain timeout), and report drained-vs-aborted counts.
    pub fn shutdown(&mut self) -> ShutdownReport {
        let report = self.handle().shutdown();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        report
    }
}

impl Drop for WhoisServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What the protocol core decided for one complete query.
enum Outcome {
    /// Write these bytes, then close.
    Reply(Vec<u8>),
    /// Close without writing anything.
    Silent,
    /// Wait this long, then write these bytes and close (fault stall).
    Stall(Duration, Vec<u8>),
}

/// The protocol core shared by both serving modes: rate limiting, store
/// lookup, and fault injection for one decoded query. Every byte a
/// client can observe is decided here, which is what makes the two
/// cores differentially testable.
fn decide<S: RecordStore>(
    query: &str,
    peer: IpAddr,
    store: &S,
    stats: &ServerStats,
    limiter: &Mutex<KeyedRateLimiter<IpAddr>>,
    injector: &Mutex<FaultInjector>,
    cfg: &ServerConfig,
) -> Outcome {
    // Rate limiting, keyed on the peer's source IP.
    if !limiter.lock().allow(&peer) {
        stats.rate_limited.fetch_add(1, Ordering::Relaxed);
        return if cfg.limit_replies_error {
            Outcome::Reply(RATE_LIMIT_LINE.to_vec())
        } else {
            Outcome::Silent
        };
    }

    let body = match store.lookup(query) {
        Some(b) => {
            stats.answered.fetch_add(1, Ordering::Relaxed);
            b
        }
        None => {
            stats.no_match.fetch_add(1, Ordering::Relaxed);
            store.no_match(query)
        }
    };
    // Decide the fate under the lock, act on it outside (a Stall must
    // not serialize every other connection's fate roll).
    let fate = injector.lock().fate(query, body.as_bytes());
    match fate {
        Fate::Deliver => Outcome::Reply(body.into_bytes()),
        Fate::Drop | Fate::Empty => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            Outcome::Silent
        }
        Fate::Garbled(bytes) | Fate::NonUtf8(bytes) | Fate::Truncated(bytes) => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            Outcome::Reply(bytes)
        }
        Fate::Stall(d) => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            Outcome::Stall(d, body.into_bytes())
        }
        Fate::Banned => {
            // A fault-injected ban behaves like the real thing: the
            // explicit refusal, plus a limiter penalty window for the
            // source IP when the server's config carries one.
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            limiter
                .lock()
                .penalize(&peer, Instant::now(), cfg.rate_limit.penalty);
            Outcome::Reply(RATE_LIMIT_LINE.to_vec())
        }
    }
}

// ---------------------------------------------------------------------
// Blocking core (thread per connection).
// ---------------------------------------------------------------------

fn run_blocking_accept<S: RecordStore>(
    listener: TcpListener,
    store: Arc<S>,
    stats: Arc<ServerStats>,
    lifecycle: Arc<Lifecycle>,
    limiter: Arc<Mutex<KeyedRateLimiter<IpAddr>>>,
    injector: Arc<Mutex<FaultInjector>>,
    cfg: ServerConfig,
) {
    while !lifecycle.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                if !limiter.lock().try_acquire_conn(&peer.ip(), Instant::now()) {
                    stats.conn_capped.fetch_add(1, Ordering::Relaxed);
                    if cfg.limit_replies_error {
                        let mut stream = stream;
                        let _ = stream.write_all(CONN_CAP_LINE);
                    }
                    continue;
                }
                lifecycle.active.fetch_add(1, Ordering::SeqCst);
                let store = store.clone();
                let stats = stats.clone();
                let lifecycle = lifecycle.clone();
                let limiter = limiter.clone();
                let injector = injector.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let _guard = ConnectionGuard(&lifecycle);
                    let ip = peer.ip();
                    let _ =
                        handle_connection(stream, ip, &*store, &stats, &limiter, &injector, &cfg);
                    limiter.lock().release_conn(&ip);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Close a blocking connection that exhausted its read deadline.
fn timeout_close(stream: &mut TcpStream, stats: &ServerStats) -> std::io::Result<()> {
    stats.idle_closed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.write_all(TIMEOUT_LINE);
    Ok(())
}

fn handle_connection<S: RecordStore>(
    mut stream: TcpStream,
    peer: IpAddr,
    store: &S,
    stats: &ServerStats,
    limiter: &Mutex<KeyedRateLimiter<IpAddr>>,
    injector: &Mutex<FaultInjector>,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;

    // Read one query line, bounded by a *total* deadline from accept:
    // per-read timeouts alone would let a slowloris client dribble one
    // byte per window forever.
    let started = Instant::now();
    let mut buf = BytesMut::with_capacity(256);
    let mut chunk = [0u8; 256];
    let query = loop {
        match proto::decode_query(&mut buf) {
            Ok(Some(q)) => break q,
            Ok(None) => {}
            Err(_) => return Ok(()), // malformed: hang up
        }
        let remaining = match cfg.read_timeout.checked_sub(started.elapsed()) {
            Some(r) if !r.is_zero() => r,
            _ => return timeout_close(&mut stream, stats),
        };
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client went away mid-query
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return timeout_close(&mut stream, stats)
            }
            Err(e) => return Err(e),
        }
    };

    match decide(&query, peer, store, stats, limiter, injector, cfg) {
        Outcome::Reply(bytes) => stream.write_all(&bytes)?,
        Outcome::Silent => {}
        Outcome::Stall(d, body) => {
            std::thread::sleep(d);
            stream.write_all(&body)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Event-loop core (one thread, epoll readiness).
// ---------------------------------------------------------------------

/// Per-connection state carried by the event loop on top of the
/// [`EventConn`] shell.
#[cfg(unix)]
struct EvConn {
    shell: EventConn,
    ip: IpAddr,
    /// A fault-stalled reply waiting for `shell.deadline` to fire.
    stalled: Option<Vec<u8>>,
    /// The interest currently registered with the poller.
    registered: crate::event::Interest,
}

#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn run_event_loop<S: RecordStore>(
    poller: Poller,
    listener: TcpListener,
    store: Arc<S>,
    stats: Arc<ServerStats>,
    lifecycle: Arc<Lifecycle>,
    limiter: Arc<Mutex<KeyedRateLimiter<IpAddr>>>,
    injector: Arc<Mutex<FaultInjector>>,
    cfg: ServerConfig,
) {
    use std::collections::HashMap;
    use std::os::unix::io::AsRawFd;

    const LISTENER: u64 = 0;
    /// Idle poll cap so the shutdown flag is noticed promptly.
    const POLL_CAP: Duration = Duration::from_millis(5);
    /// Grace past the drain window before stragglers are abandoned, so
    /// the shutdown report is taken from untouched gauges first.
    const ABANDON_SLACK: Duration = Duration::from_millis(50);

    if poller
        .register(listener.as_raw_fd(), LISTENER, crate::event::Interest::READ)
        .is_err()
    {
        return;
    }
    let pool = BufferPool::new(1024, 256);
    let mut conns: HashMap<u64, EvConn> = HashMap::new();
    let mut next_token: u64 = 2;
    let mut events: Vec<crate::event::Event> = Vec::new();
    let mut scratch = vec![0u8; 4096];
    let mut shutdown_at: Option<Instant> = None;
    let mut listening = true;

    loop {
        let now = Instant::now();
        if lifecycle.shutdown.load(Ordering::SeqCst) {
            let at = *shutdown_at.get_or_insert(now);
            if listening {
                let _ = poller.deregister(listener.as_raw_fd());
                listening = false;
            }
            if conns.is_empty() {
                break;
            }
            if now >= at + cfg.drain_timeout + ABANDON_SLACK {
                // Stragglers past the drain window are abandoned: the
                // shutdown report already counted them as aborted, so
                // they close without touching the drained gauge.
                for (_, mut c) in conns.drain() {
                    let _ = poller.deregister(c.shell.stream.as_raw_fd());
                    limiter.lock().release_conn(&c.ip);
                    pool.put(c.shell.take_buf());
                    lifecycle.active.fetch_sub(1, Ordering::SeqCst);
                }
                break;
            }
        }

        let mut timeout = POLL_CAP;
        for c in conns.values() {
            if let Some(d) = c.shell.deadline {
                timeout = timeout.min(d.saturating_duration_since(now));
            }
        }
        events.clear();
        if poller.wait(&mut events, Some(timeout)).is_err() {
            break;
        }

        for ev in events.iter().copied() {
            if ev.token == LISTENER {
                if listening {
                    accept_burst(
                        &poller,
                        &listener,
                        &pool,
                        &limiter,
                        &stats,
                        &lifecycle,
                        &cfg,
                        &mut conns,
                        &mut next_token,
                    );
                }
                continue;
            }
            let (close, fd, reregister) = {
                let Some(c) = conns.get_mut(&ev.token) else {
                    continue; // closed earlier in this batch
                };
                let mut close = false;
                if (ev.readable || ev.hangup) && c.shell.phase == ConnPhase::Reading {
                    match c.shell.fill(&mut scratch) {
                        Ok(status) => match proto::decode_query(&mut c.shell.buf) {
                            Ok(Some(query)) => {
                                let outcome = decide(
                                    &query, c.ip, &*store, &stats, &limiter, &injector, &cfg,
                                );
                                apply_outcome(c, outcome, &mut close);
                            }
                            Ok(None) => {
                                if status.eof {
                                    close = true; // gone mid-query
                                }
                            }
                            Err(_) => close = true, // malformed: hang up
                        },
                        Err(_) => close = true,
                    }
                } else if ev.hangup
                    && c.shell.phase != ConnPhase::Writing
                    && c.shell.pending_out() == 0
                {
                    // Peer went away while we owe it nothing.
                    close = true;
                }
                if !close && c.shell.phase == ConnPhase::Writing {
                    match c.shell.flush() {
                        Ok(true) => close = c.shell.close_after_flush,
                        Ok(false) => {}
                        Err(_) => close = true,
                    }
                }
                let fd = c.shell.stream.as_raw_fd();
                let want = c.shell.interest();
                let changed = !close && want != c.registered;
                if changed {
                    c.registered = want;
                }
                (close, fd, changed.then_some(want))
            };
            if close {
                close_conn(
                    &poller,
                    &pool,
                    &limiter,
                    &lifecycle,
                    conns.remove(&ev.token),
                );
            } else if let Some(want) = reregister {
                let _ = poller.reregister(fd, ev.token, want);
            }
        }

        // Deadline sweep: fault stalls fire their held reply; read
        // deadlines close slowloris connections with an explicit error.
        let now = Instant::now();
        let due: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.shell.deadline.is_some_and(|d| d <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in due {
            let (close, fd, reregister) = {
                let c = conns.get_mut(&token).expect("due token is live");
                c.shell.deadline = None;
                if let Some(body) = c.stalled.take() {
                    c.shell.queue(Chunk::Owned(Bytes::from(body)));
                } else {
                    stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                    c.shell.queue(Chunk::Static(TIMEOUT_LINE));
                }
                c.shell.close_after_flush = true;
                c.shell.phase = ConnPhase::Writing;
                // done + close_after_flush → close; write error → close
                let close = c.shell.flush().unwrap_or(true);
                let fd = c.shell.stream.as_raw_fd();
                let want = c.shell.interest();
                let changed = !close && want != c.registered;
                if changed {
                    c.registered = want;
                }
                (close, fd, changed.then_some(want))
            };
            if close {
                close_conn(&poller, &pool, &limiter, &lifecycle, conns.remove(&token));
            } else if let Some(want) = reregister {
                let _ = poller.reregister(fd, token, want);
            }
        }
    }
}

/// Queue the decided outcome onto the connection's state machine.
#[cfg(unix)]
fn apply_outcome(c: &mut EvConn, outcome: Outcome, close: &mut bool) {
    match outcome {
        Outcome::Reply(bytes) => {
            c.shell.queue(Chunk::Owned(Bytes::from(bytes)));
            c.shell.close_after_flush = true;
            c.shell.phase = ConnPhase::Writing;
            c.shell.deadline = None;
        }
        Outcome::Silent => *close = true,
        Outcome::Stall(d, body) => {
            // The blocking core sleeps a thread here; the event loop
            // holds the body and arms a deadline instead.
            c.stalled = Some(body);
            c.shell.phase = ConnPhase::Queued;
            c.shell.deadline = Some(Instant::now() + d);
        }
    }
}

/// Accept until `WouldBlock`, applying the per-IP connection cap and
/// registering survivors with the poller.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn accept_burst(
    poller: &Poller,
    listener: &TcpListener,
    pool: &BufferPool,
    limiter: &Mutex<KeyedRateLimiter<IpAddr>>,
    stats: &ServerStats,
    lifecycle: &Lifecycle,
    cfg: &ServerConfig,
    conns: &mut std::collections::HashMap<u64, EvConn>,
    next_token: &mut u64,
) {
    use std::os::unix::io::AsRawFd;
    // Accept until WouldBlock (or the listener dies).
    while let Ok((stream, peer)) = listener.accept() {
        stats.connections.fetch_add(1, Ordering::Relaxed);
        if !limiter.lock().try_acquire_conn(&peer.ip(), Instant::now()) {
            stats.conn_capped.fetch_add(1, Ordering::Relaxed);
            if cfg.limit_replies_error {
                let mut stream = stream;
                let _ = stream.write_all(CONN_CAP_LINE);
            }
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        match EventConn::new(stream, peer, token, pool.get()) {
            Ok(mut shell) => {
                shell.deadline = Some(Instant::now() + cfg.read_timeout);
                let registered = shell.interest();
                if poller
                    .register(shell.stream.as_raw_fd(), token, registered)
                    .is_ok()
                {
                    lifecycle.active.fetch_add(1, Ordering::SeqCst);
                    conns.insert(
                        token,
                        EvConn {
                            shell,
                            ip: peer.ip(),
                            stalled: None,
                            registered,
                        },
                    );
                } else {
                    pool.put(shell.take_buf());
                    limiter.lock().release_conn(&peer.ip());
                }
            }
            Err(_) => limiter.lock().release_conn(&peer.ip()),
        }
    }
}

/// Tear down one event-loop connection: deregister, recycle its buffer,
/// release its per-IP slot, and keep the lifecycle gauges in lockstep
/// with the blocking core's [`ConnectionGuard`].
#[cfg(unix)]
fn close_conn(
    poller: &Poller,
    pool: &BufferPool,
    limiter: &Mutex<KeyedRateLimiter<IpAddr>>,
    lifecycle: &Lifecycle,
    conn: Option<EvConn>,
) {
    use std::os::unix::io::AsRawFd;
    let Some(mut c) = conn else { return };
    let _ = poller.deregister(c.shell.stream.as_raw_fd());
    pool.put(c.shell.take_buf());
    limiter.lock().release_conn(&c.ip);
    if lifecycle.shutdown.load(Ordering::SeqCst) {
        lifecycle.drained.fetch_add(1, Ordering::SeqCst);
    }
    lifecycle.active.fetch_sub(1, Ordering::SeqCst);
}

/// Non-unix placeholder: [`Poller::new`] always fails there, so
/// [`WhoisServer::start`] never reaches this.
#[cfg(not(unix))]
#[allow(clippy::too_many_arguments)]
fn run_event_loop<S: RecordStore>(
    _poller: Poller,
    _listener: TcpListener,
    _store: Arc<S>,
    _stats: Arc<ServerStats>,
    _lifecycle: Arc<Lifecycle>,
    _limiter: Arc<Mutex<KeyedRateLimiter<IpAddr>>>,
    _injector: Arc<Mutex<FaultInjector>>,
    _cfg: ServerConfig,
) {
    unreachable!("event-loop mode requires epoll; start() falls back to blocking");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::WhoisClient;
    use crate::store::InMemoryStore;

    fn store() -> InMemoryStore {
        let mut s = InMemoryStore::new();
        s.insert(
            "example.com",
            "Domain Name: EXAMPLE.COM\nRegistrar: Test\n".into(),
        );
        s
    }

    const MODES: [ServingMode; 2] = [ServingMode::EventLoop, ServingMode::Blocking];

    #[test]
    fn answers_known_domain() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                ..Default::default()
            };
            let server = WhoisServer::start(store(), cfg).unwrap();
            let client = WhoisClient::default();
            let body = client.query(server.addr(), "example.com").unwrap();
            assert!(body.contains("Registrar: Test"), "{mode:?}");
            assert_eq!(server.stats().answered.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn no_match_for_unknown_domain() {
        let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let client = WhoisClient::default();
        let body = client.query(server.addr(), "missing.com").unwrap();
        assert!(body.to_lowercase().starts_with("no match"));
        assert_eq!(server.stats().no_match.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rate_limit_refuses_after_burst() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                rate_limit: RateLimitConfig {
                    burst: 2,
                    per_second: 0.0,
                    penalty: Duration::from_secs(5),
                },
                ..Default::default()
            };
            let server = WhoisServer::start(store(), cfg).unwrap();
            let client = WhoisClient::default();
            assert!(client.query(server.addr(), "example.com").is_ok());
            assert!(client.query(server.addr(), "example.com").is_ok());
            let third = client.query(server.addr(), "example.com").unwrap();
            assert!(third.to_lowercase().contains("rate limit"), "{mode:?}");
            assert_eq!(server.stats().rate_limited.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn silent_rate_limit_closes_without_reply() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                rate_limit: RateLimitConfig {
                    burst: 1,
                    per_second: 0.0,
                    penalty: Duration::from_secs(5),
                },
                limit_replies_error: false,
                ..Default::default()
            };
            let server = WhoisServer::start(store(), cfg).unwrap();
            let client = WhoisClient::default();
            let _ = client.query(server.addr(), "example.com").unwrap();
            let second = client.query(server.addr(), "example.com").unwrap();
            assert!(second.is_empty(), "{mode:?}: silent refusal is empty");
        }
    }

    #[test]
    fn fault_injection_empties_replies() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                faults: FaultConfig {
                    empty_chance: 1.0,
                    ..Default::default()
                },
                ..Default::default()
            };
            let server = WhoisServer::start(store(), cfg).unwrap();
            let client = WhoisClient::default();
            let body = client.query(server.addr(), "example.com").unwrap();
            assert!(body.is_empty(), "{mode:?}");
            assert_eq!(server.stats().faulted.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn concurrent_clients_are_served() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                ..Default::default()
            };
            let server = WhoisServer::start(store(), cfg).unwrap();
            let addr = server.addr();
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    std::thread::spawn(move || {
                        let client = WhoisClient::default();
                        client.query(addr, "example.com").unwrap()
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().unwrap().contains("EXAMPLE.COM"), "{mode:?}");
            }
            assert_eq!(server.stats().connections.load(Ordering::Relaxed), 8);
        }
    }

    #[test]
    fn idle_connections_time_out_with_an_error_line() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                read_timeout: Duration::from_millis(80),
                ..Default::default()
            };
            let server = WhoisServer::start(store(), cfg).unwrap();
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(b"never-finis").unwrap(); // no terminator
            let mut body = String::new();
            stream.read_to_string(&mut body).unwrap();
            assert!(body.contains("timed out"), "{mode:?}: {body:?}");
            assert_eq!(
                server.stats().idle_closed.load(Ordering::Relaxed),
                1,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn per_ip_connection_cap_refuses_at_accept() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                max_conns_per_ip: Some(1),
                ..Default::default()
            };
            let server = WhoisServer::start(store(), cfg).unwrap();
            let mut held = TcpStream::connect(server.addr()).unwrap();
            held.write_all(b"held").unwrap(); // occupy the only slot
            std::thread::sleep(Duration::from_millis(50));
            let mut refused = TcpStream::connect(server.addr()).unwrap();
            let mut body = String::new();
            refused.read_to_string(&mut body).unwrap();
            assert!(body.contains("too many connections"), "{mode:?}: {body:?}");
            assert_eq!(
                server.stats().conn_capped.load(Ordering::Relaxed),
                1,
                "{mode:?}"
            );
            // Finishing the held connection frees the slot.
            held.write_all(b"\r\n").unwrap();
            let mut rest = String::new();
            let _ = held.read_to_string(&mut rest);
            std::thread::sleep(Duration::from_millis(50));
            let mut third = TcpStream::connect(server.addr()).unwrap();
            third.write_all(b"example.com\r\n").unwrap();
            let mut body = String::new();
            third.read_to_string(&mut body).unwrap();
            assert!(body.contains("EXAMPLE.COM"), "{mode:?}: {body:?}");
        }
    }

    #[test]
    fn shutdown_with_no_connections_reports_zero() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                ..Default::default()
            };
            let mut server = WhoisServer::start(store(), cfg).unwrap();
            let report = server.shutdown();
            assert_eq!(report, ShutdownReport::default(), "{mode:?}");
        }
    }

    #[test]
    fn shutdown_counts_drained_connections() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                ..Default::default()
            };
            let mut server = WhoisServer::start(store(), cfg).unwrap();
            let addr = server.addr();
            // A connection that stalls mid-query, then completes during
            // the drain window.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"example").unwrap();
            std::thread::sleep(Duration::from_millis(30)); // let the server accept
            let finisher = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                stream.write_all(b".com\r\n").unwrap();
                let mut body = String::new();
                let _ = stream.read_to_string(&mut body);
                body
            });
            let report = server.shutdown();
            assert_eq!(report.drained, 1, "{mode:?}: {report:?}");
            assert_eq!(report.aborted, 0, "{mode:?}: {report:?}");
            assert!(finisher.join().unwrap().contains("EXAMPLE.COM"), "{mode:?}");
        }
    }

    #[test]
    fn shutdown_counts_aborted_connections() {
        for mode in MODES {
            let cfg = ServerConfig {
                mode,
                drain_timeout: Duration::from_millis(40),
                ..Default::default()
            };
            let mut server = WhoisServer::start(store(), cfg).unwrap();
            let addr = server.addr();
            // A connection that never completes its query: it outlives
            // the drain window and is abandoned.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"stuck").unwrap();
            std::thread::sleep(Duration::from_millis(30));
            let report = server.shutdown();
            assert_eq!(report.drained, 0, "{mode:?}: {report:?}");
            assert_eq!(report.aborted, 1, "{mode:?}: {report:?}");
            drop(stream);
        }
    }

    #[test]
    fn server_shuts_down_cleanly_on_drop() {
        for mode in MODES {
            let addr;
            {
                let cfg = ServerConfig {
                    mode,
                    ..Default::default()
                };
                let server = WhoisServer::start(store(), cfg).unwrap();
                addr = server.addr();
            }
            // After drop, connections are refused (eventually).
            std::thread::sleep(Duration::from_millis(20));
            let client = WhoisClient::default();
            assert!(client.query(addr, "example.com").is_err(), "{mode:?}");
        }
    }
}
