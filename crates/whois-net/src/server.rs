//! A thread-per-connection WHOIS server over loopback TCP.
//!
//! WHOIS is short-lived request/response over TCP — exactly the workload
//! the async guides say does *not* need an async runtime, so the server
//! is plain `std::net` with one thread per connection and a bounded
//! accept loop. Rate limiting and fault injection run per request.

use crate::fault::{Fate, FaultConfig, FaultInjector, FaultPlan};
use crate::limiter::{KeyedRateLimiter, RateLimitConfig};
use crate::proto;
use crate::store::RecordStore;
use bytes::BytesMut;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Rate limiting keyed per source IP, as the paper describes ("once
    /// a given source IP has issued more queries … than its limit").
    pub rate_limit: RateLimitConfig,
    /// Optional global cap shared by all source IPs on top of the
    /// per-IP limit (a server's total capacity).
    pub global_limit: Option<RateLimitConfig>,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Fault-injection seed.
    pub fault_seed: u64,
    /// Scripted per-query fates, consumed before the probabilistic
    /// `faults` roll (see [`FaultPlan`]).
    pub fault_plan: FaultPlan,
    /// When rate-limited: reply with an explicit error (`true`) or close
    /// silently (`false`) — both behaviours exist in the wild.
    pub limit_replies_error: bool,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// How long [`shutdown`](WhoisServer::shutdown) waits for in-flight
    /// connections to drain before declaring them aborted.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rate_limit: RateLimitConfig::unlimited(),
            global_limit: None,
            faults: FaultConfig::none(),
            fault_seed: 0,
            fault_plan: FaultPlan::new(),
            limit_replies_error: true,
            read_timeout: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Counters exposed by a running server.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Queries answered with a record.
    pub answered: AtomicU64,
    /// Queries answered with "no match".
    pub no_match: AtomicU64,
    /// Queries refused by the rate limiter.
    pub rate_limited: AtomicU64,
    /// Replies sabotaged by fault injection.
    pub faulted: AtomicU64,
}

/// What [`WhoisServer::shutdown`] (or [`ServerHandle::shutdown`])
/// observed while stopping: how many in-flight connections completed
/// during the drain window versus how many were still running when the
/// window expired and were abandoned to their read timeouts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Connections in flight at the shutdown signal that completed
    /// within the drain window.
    pub drained: u64,
    /// Connections still running when the drain window expired.
    pub aborted: u64,
}

/// State shared between the server, its handle, and connection threads.
#[derive(Debug, Default)]
struct Lifecycle {
    shutdown: AtomicBool,
    /// Connections currently being handled.
    active: AtomicU64,
    /// Connections that completed after the shutdown signal.
    drained: AtomicU64,
}

/// A WHOIS server bound to an ephemeral loopback port.
pub struct WhoisServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    lifecycle: Arc<Lifecycle>,
    drain_timeout: Duration,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Cheap handle for queries — and shutdown — against a running server.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    /// The bound address.
    pub addr: SocketAddr,
    lifecycle: Arc<Lifecycle>,
    drain_timeout: Duration,
}

impl ServerHandle {
    /// Signal shutdown and wait up to the server's drain timeout for
    /// in-flight connections to finish, reporting how many drained
    /// versus how many had to be abandoned. Idempotent; a second call
    /// reports whatever remains.
    pub fn shutdown(&self) -> ShutdownReport {
        self.lifecycle.shutdown.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.drain_timeout;
        let baseline = self.lifecycle.drained.load(Ordering::SeqCst);
        while self.lifecycle.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        ShutdownReport {
            drained: self.lifecycle.drained.load(Ordering::SeqCst) - baseline,
            aborted: self.lifecycle.active.load(Ordering::SeqCst),
        }
    }
}

/// Decrements the active-connection gauge (and counts the connection as
/// drained when it outlived the shutdown signal) even if the handler
/// errors out.
struct ConnectionGuard<'a>(&'a Lifecycle);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        if self.0.shutdown.load(Ordering::SeqCst) {
            self.0.drained.fetch_add(1, Ordering::SeqCst);
        }
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl WhoisServer {
    /// Start a server for `store`.
    pub fn start<S: RecordStore>(store: S, cfg: ServerConfig) -> std::io::Result<WhoisServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ServerStats::default());
        let lifecycle = Arc::new(Lifecycle::default());
        let drain_timeout = cfg.drain_timeout;
        let store = Arc::new(store);
        let limiter = match cfg.global_limit {
            Some(global) => KeyedRateLimiter::with_global_cap(cfg.rate_limit, global),
            None => KeyedRateLimiter::new(cfg.rate_limit),
        };
        let limiter = Arc::new(Mutex::new(limiter));
        let injector = Arc::new(Mutex::new(FaultInjector::with_plan(
            cfg.faults,
            cfg.fault_seed,
            cfg.fault_plan.clone(),
        )));

        let accept_stats = stats.clone();
        let accept_lifecycle = lifecycle.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("whois-server-{}", addr.port()))
            .spawn(move || {
                while !accept_lifecycle.shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            accept_lifecycle.active.fetch_add(1, Ordering::SeqCst);
                            let store = store.clone();
                            let stats = accept_stats.clone();
                            let lifecycle = accept_lifecycle.clone();
                            let limiter = limiter.clone();
                            let injector = injector.clone();
                            let cfg = cfg.clone();
                            std::thread::spawn(move || {
                                let _guard = ConnectionGuard(&lifecycle);
                                let _ = handle_connection(
                                    stream,
                                    peer.ip(),
                                    &*store,
                                    &stats,
                                    &limiter,
                                    &injector,
                                    &cfg,
                                );
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(WhoisServer {
            addr,
            stats,
            lifecycle,
            drain_timeout,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            lifecycle: self.lifecycle.clone(),
            drain_timeout: self.drain_timeout,
        }
    }

    /// Server-side counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop accepting, drain in-flight connections (bounded by the
    /// configured drain timeout), and report drained-vs-aborted counts.
    pub fn shutdown(&mut self) -> ShutdownReport {
        let report = self.handle().shutdown();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        report
    }
}

impl Drop for WhoisServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<S: RecordStore>(
    mut stream: TcpStream,
    peer: IpAddr,
    store: &S,
    stats: &ServerStats,
    limiter: &Mutex<KeyedRateLimiter<IpAddr>>,
    injector: &Mutex<FaultInjector>,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_nodelay(true)?;

    // Read one query line.
    let mut buf = BytesMut::with_capacity(256);
    let mut chunk = [0u8; 256];
    let query = loop {
        match proto::decode_query(&mut buf) {
            Ok(Some(q)) => break q,
            Ok(None) => {}
            Err(_) => return Ok(()), // malformed: hang up
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // client went away mid-query
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    // Rate limiting, keyed on the peer's source IP.
    if !limiter.lock().allow(&peer) {
        stats.rate_limited.fetch_add(1, Ordering::Relaxed);
        if cfg.limit_replies_error {
            let _ = stream.write_all(b"Error: rate limit exceeded; try again later\r\n");
        }
        return Ok(());
    }

    // Lookup and fault injection.
    let body = match store.lookup(&query) {
        Some(b) => {
            stats.answered.fetch_add(1, Ordering::Relaxed);
            b
        }
        None => {
            stats.no_match.fetch_add(1, Ordering::Relaxed);
            store.no_match(&query)
        }
    };
    // Decide the fate under the lock, act on it outside (a Stall must
    // not serialize every other connection's fate roll).
    let fate = injector.lock().fate(&query, body.as_bytes());
    match fate {
        Fate::Deliver => stream.write_all(body.as_bytes())?,
        Fate::Drop => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
        }
        Fate::Empty => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            // write nothing, close politely
        }
        Fate::Garbled(bytes) | Fate::NonUtf8(bytes) | Fate::Truncated(bytes) => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            stream.write_all(&bytes)?;
        }
        Fate::Stall(d) => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(d);
            stream.write_all(body.as_bytes())?;
        }
        Fate::Banned => {
            // A fault-injected ban behaves like the real thing: the
            // explicit refusal, plus a limiter penalty window for the
            // source IP when the server's config carries one.
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            limiter
                .lock()
                .penalize(&peer, Instant::now(), cfg.rate_limit.penalty);
            stream.write_all(b"Error: rate limit exceeded; try again later\r\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::WhoisClient;
    use crate::store::InMemoryStore;

    fn store() -> InMemoryStore {
        let mut s = InMemoryStore::new();
        s.insert(
            "example.com",
            "Domain Name: EXAMPLE.COM\nRegistrar: Test\n".into(),
        );
        s
    }

    #[test]
    fn answers_known_domain() {
        let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let client = WhoisClient::default();
        let body = client.query(server.addr(), "example.com").unwrap();
        assert!(body.contains("Registrar: Test"));
        assert_eq!(server.stats().answered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn no_match_for_unknown_domain() {
        let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let client = WhoisClient::default();
        let body = client.query(server.addr(), "missing.com").unwrap();
        assert!(body.to_lowercase().starts_with("no match"));
        assert_eq!(server.stats().no_match.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rate_limit_refuses_after_burst() {
        let cfg = ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 2,
                per_second: 0.0,
                penalty: Duration::from_secs(5),
            },
            ..Default::default()
        };
        let server = WhoisServer::start(store(), cfg).unwrap();
        let client = WhoisClient::default();
        assert!(client.query(server.addr(), "example.com").is_ok());
        assert!(client.query(server.addr(), "example.com").is_ok());
        let third = client.query(server.addr(), "example.com").unwrap();
        assert!(third.to_lowercase().contains("rate limit"));
        assert_eq!(server.stats().rate_limited.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn silent_rate_limit_closes_without_reply() {
        let cfg = ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 1,
                per_second: 0.0,
                penalty: Duration::from_secs(5),
            },
            limit_replies_error: false,
            ..Default::default()
        };
        let server = WhoisServer::start(store(), cfg).unwrap();
        let client = WhoisClient::default();
        let _ = client.query(server.addr(), "example.com").unwrap();
        let second = client.query(server.addr(), "example.com").unwrap();
        assert!(second.is_empty(), "silent refusal is an empty body");
    }

    #[test]
    fn fault_injection_empties_replies() {
        let cfg = ServerConfig {
            faults: FaultConfig {
                empty_chance: 1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = WhoisServer::start(store(), cfg).unwrap();
        let client = WhoisClient::default();
        let body = client.query(server.addr(), "example.com").unwrap();
        assert!(body.is_empty());
        assert_eq!(server.stats().faulted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = WhoisClient::default();
                    client.query(addr, "example.com").unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().contains("EXAMPLE.COM"));
        }
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn shutdown_with_no_connections_reports_zero() {
        let mut server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let report = server.shutdown();
        assert_eq!(report, ShutdownReport::default());
    }

    #[test]
    fn shutdown_counts_drained_connections() {
        let mut server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        // A connection that stalls mid-query, then completes during the
        // drain window.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"example").unwrap();
        std::thread::sleep(Duration::from_millis(30)); // let the server accept
        let finisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            stream.write_all(b".com\r\n").unwrap();
            let mut body = String::new();
            let _ = stream.read_to_string(&mut body);
            body
        });
        let report = server.shutdown();
        assert_eq!(report.drained, 1, "{report:?}");
        assert_eq!(report.aborted, 0, "{report:?}");
        assert!(finisher.join().unwrap().contains("EXAMPLE.COM"));
    }

    #[test]
    fn shutdown_counts_aborted_connections() {
        let cfg = ServerConfig {
            drain_timeout: Duration::from_millis(40),
            ..Default::default()
        };
        let mut server = WhoisServer::start(store(), cfg).unwrap();
        let addr = server.addr();
        // A connection that never completes its query: it outlives the
        // drain window and is abandoned to its read timeout.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"stuck").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let report = server.shutdown();
        assert_eq!(report.drained, 0, "{report:?}");
        assert_eq!(report.aborted, 1, "{report:?}");
        drop(stream);
    }

    #[test]
    fn server_shuts_down_cleanly_on_drop() {
        let addr;
        {
            let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
            addr = server.addr();
        }
        // After drop, connections are refused (eventually).
        std::thread::sleep(Duration::from_millis(20));
        let client = WhoisClient::default();
        assert!(client.query(addr, "example.com").is_err());
    }
}
