//! A thread-per-connection WHOIS server over loopback TCP.
//!
//! WHOIS is short-lived request/response over TCP — exactly the workload
//! the async guides say does *not* need an async runtime, so the server
//! is plain `std::net` with one thread per connection and a bounded
//! accept loop. Rate limiting and fault injection run per request.

use crate::fault::{Fate, FaultConfig, FaultInjector};
use crate::limiter::{RateLimitConfig, RateLimiter};
use crate::proto;
use crate::store::RecordStore;
use bytes::BytesMut;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Rate limiting applied across all clients (the paper's servers
    /// limited per source IP; with one loopback client the two coincide).
    pub rate_limit: RateLimitConfig,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Fault-injection seed.
    pub fault_seed: u64,
    /// When rate-limited: reply with an explicit error (`true`) or close
    /// silently (`false`) — both behaviours exist in the wild.
    pub limit_replies_error: bool,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rate_limit: RateLimitConfig::unlimited(),
            faults: FaultConfig::none(),
            fault_seed: 0,
            limit_replies_error: true,
            read_timeout: Duration::from_secs(2),
        }
    }
}

/// Counters exposed by a running server.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Queries answered with a record.
    pub answered: AtomicU64,
    /// Queries answered with "no match".
    pub no_match: AtomicU64,
    /// Queries refused by the rate limiter.
    pub rate_limited: AtomicU64,
    /// Replies sabotaged by fault injection.
    pub faulted: AtomicU64,
}

/// A WHOIS server bound to an ephemeral loopback port.
pub struct WhoisServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Cheap handle for queries against a running server.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    /// The bound address.
    pub addr: SocketAddr,
}

impl WhoisServer {
    /// Start a server for `store`.
    pub fn start<S: RecordStore>(store: S, cfg: ServerConfig) -> std::io::Result<WhoisServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let store = Arc::new(store);
        let limiter = Arc::new(Mutex::new(RateLimiter::new(cfg.rate_limit)));
        let injector = Arc::new(Mutex::new(FaultInjector::new(cfg.faults, cfg.fault_seed)));

        let accept_stats = stats.clone();
        let accept_shutdown = shutdown.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("whois-server-{}", addr.port()))
            .spawn(move || {
                let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
                while !accept_shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            let store = store.clone();
                            let stats = accept_stats.clone();
                            let limiter = limiter.clone();
                            let injector = injector.clone();
                            let cfg = cfg.clone();
                            workers.retain(|h| !h.is_finished());
                            workers.push(std::thread::spawn(move || {
                                let _ = handle_connection(
                                    stream, &*store, &stats, &limiter, &injector, &cfg,
                                );
                            }));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
                for h in workers {
                    let _ = h.join();
                }
            })
            .expect("spawn accept thread");

        Ok(WhoisServer {
            addr,
            stats,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.addr }
    }

    /// Server-side counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }
}

impl Drop for WhoisServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection<S: RecordStore>(
    mut stream: TcpStream,
    store: &S,
    stats: &ServerStats,
    limiter: &Mutex<RateLimiter>,
    injector: &Mutex<FaultInjector>,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_nodelay(true)?;

    // Read one query line.
    let mut buf = BytesMut::with_capacity(256);
    let mut chunk = [0u8; 256];
    let query = loop {
        match proto::decode_query(&mut buf) {
            Ok(Some(q)) => break q,
            Ok(None) => {}
            Err(_) => return Ok(()), // malformed: hang up
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // client went away mid-query
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    // Rate limiting.
    if !limiter.lock().allow() {
        stats.rate_limited.fetch_add(1, Ordering::Relaxed);
        if cfg.limit_replies_error {
            let _ = stream.write_all(b"Error: rate limit exceeded; try again later\r\n");
        }
        return Ok(());
    }

    // Lookup and fault injection.
    let body = match store.lookup(&query) {
        Some(b) => {
            stats.answered.fetch_add(1, Ordering::Relaxed);
            b
        }
        None => {
            stats.no_match.fetch_add(1, Ordering::Relaxed);
            store.no_match(&query)
        }
    };
    match injector.lock().fate(body.as_bytes()) {
        Fate::Deliver => stream.write_all(body.as_bytes())?,
        Fate::Drop => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
        }
        Fate::Empty => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            // write nothing, close politely
        }
        Fate::Garbled(bytes) => {
            stats.faulted.fetch_add(1, Ordering::Relaxed);
            stream.write_all(&bytes)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::WhoisClient;
    use crate::store::InMemoryStore;

    fn store() -> InMemoryStore {
        let mut s = InMemoryStore::new();
        s.insert(
            "example.com",
            "Domain Name: EXAMPLE.COM\nRegistrar: Test\n".into(),
        );
        s
    }

    #[test]
    fn answers_known_domain() {
        let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let client = WhoisClient::default();
        let body = client.query(server.addr(), "example.com").unwrap();
        assert!(body.contains("Registrar: Test"));
        assert_eq!(server.stats().answered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn no_match_for_unknown_domain() {
        let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let client = WhoisClient::default();
        let body = client.query(server.addr(), "missing.com").unwrap();
        assert!(body.to_lowercase().starts_with("no match"));
        assert_eq!(server.stats().no_match.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn rate_limit_refuses_after_burst() {
        let cfg = ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 2,
                per_second: 0.0,
                penalty: Duration::from_secs(5),
            },
            ..Default::default()
        };
        let server = WhoisServer::start(store(), cfg).unwrap();
        let client = WhoisClient::default();
        assert!(client.query(server.addr(), "example.com").is_ok());
        assert!(client.query(server.addr(), "example.com").is_ok());
        let third = client.query(server.addr(), "example.com").unwrap();
        assert!(third.to_lowercase().contains("rate limit"));
        assert_eq!(server.stats().rate_limited.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn silent_rate_limit_closes_without_reply() {
        let cfg = ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 1,
                per_second: 0.0,
                penalty: Duration::from_secs(5),
            },
            limit_replies_error: false,
            ..Default::default()
        };
        let server = WhoisServer::start(store(), cfg).unwrap();
        let client = WhoisClient::default();
        let _ = client.query(server.addr(), "example.com").unwrap();
        let second = client.query(server.addr(), "example.com").unwrap();
        assert!(second.is_empty(), "silent refusal is an empty body");
    }

    #[test]
    fn fault_injection_empties_replies() {
        let cfg = ServerConfig {
            faults: FaultConfig {
                empty_chance: 1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = WhoisServer::start(store(), cfg).unwrap();
        let client = WhoisClient::default();
        let body = client.query(server.addr(), "example.com").unwrap();
        assert!(body.is_empty());
        assert_eq!(server.stats().faulted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = WhoisClient::default();
                    client.query(addr, "example.com").unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().contains("EXAMPLE.COM"));
        }
        assert_eq!(server.stats().connections.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn server_shuts_down_cleanly_on_drop() {
        let addr;
        {
            let server = WhoisServer::start(store(), ServerConfig::default()).unwrap();
            addr = server.addr();
        }
        // After drop, connections are refused (eventually).
        std::thread::sleep(Duration::from_millis(20));
        let client = WhoisClient::default();
        assert!(client.query(addr, "example.com").is_err());
    }
}
