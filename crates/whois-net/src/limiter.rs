//! Token-bucket rate limiting with a penalty window.
//!
//! Models the server-side behaviour the paper's crawler had to infer:
//! a burst budget that refills over time, and a penalty period after the
//! budget is exhausted during which *every* query is refused ("queries
//! can then resume after a penalty period is over", §4.1).

use std::time::{Duration, Instant};

/// Rate-limiter parameters.
#[derive(Clone, Copy, Debug)]
pub struct RateLimitConfig {
    /// Bucket capacity (burst size).
    pub burst: u32,
    /// Sustained rate: tokens refilled per second.
    pub per_second: f64,
    /// Penalty duration after the bucket is overdrawn.
    pub penalty: Duration,
}

impl RateLimitConfig {
    /// A permissive limiter for tests and unthrottled servers.
    pub fn unlimited() -> Self {
        RateLimitConfig {
            burst: u32::MAX,
            per_second: f64::INFINITY,
            penalty: Duration::ZERO,
        }
    }
}

/// Token bucket with penalty state.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    cfg: RateLimitConfig,
    tokens: f64,
    last_refill: Instant,
    penalty_until: Option<Instant>,
    /// Total queries refused (stats).
    pub refused: u64,
}

impl RateLimiter {
    /// New limiter, starting with a full bucket.
    pub fn new(cfg: RateLimitConfig) -> Self {
        RateLimiter {
            tokens: cfg.burst as f64,
            cfg,
            last_refill: Instant::now(),
            penalty_until: None,
            refused: 0,
        }
    }

    /// Try to admit one query at time `now`.
    pub fn allow_at(&mut self, now: Instant) -> bool {
        if let Some(until) = self.penalty_until {
            if now < until {
                self.refused += 1;
                return false;
            }
            self.penalty_until = None;
            self.tokens = self.cfg.burst as f64;
            self.last_refill = now;
        }
        // Refill.
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        if self.cfg.per_second.is_finite() {
            self.tokens = (self.tokens + elapsed.as_secs_f64() * self.cfg.per_second)
                .min(self.cfg.burst as f64);
        } else {
            self.tokens = self.cfg.burst as f64;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            self.refused += 1;
            if !self.cfg.penalty.is_zero() {
                self.penalty_until = Some(now + self.cfg.penalty);
            }
            false
        }
    }

    /// Try to admit one query now.
    pub fn allow(&mut self) -> bool {
        self.allow_at(Instant::now())
    }

    /// Whether the limiter is currently in its penalty window.
    pub fn in_penalty(&self, now: Instant) -> bool {
        self.penalty_until.is_some_and(|until| now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(burst: u32, per_second: f64, penalty_ms: u64) -> RateLimitConfig {
        RateLimitConfig {
            burst,
            per_second,
            penalty: Duration::from_millis(penalty_ms),
        }
    }

    #[test]
    fn burst_respected_then_refused() {
        let mut l = RateLimiter::new(cfg(3, 0.0, 0));
        let t0 = Instant::now();
        assert!(l.allow_at(t0));
        assert!(l.allow_at(t0));
        assert!(l.allow_at(t0));
        assert!(!l.allow_at(t0));
        assert_eq!(l.refused, 1);
    }

    #[test]
    fn refill_over_time() {
        let mut l = RateLimiter::new(cfg(1, 10.0, 0));
        let t0 = Instant::now();
        assert!(l.allow_at(t0));
        assert!(!l.allow_at(t0));
        // 10 tokens/s ⇒ one token back after 100 ms.
        assert!(l.allow_at(t0 + Duration::from_millis(150)));
    }

    #[test]
    fn penalty_blocks_everything_then_resets() {
        let mut l = RateLimiter::new(cfg(1, 1000.0, 500));
        let t0 = Instant::now();
        assert!(l.allow_at(t0));
        assert!(!l.allow_at(t0), "bucket empty triggers penalty");
        assert!(l.in_penalty(t0 + Duration::from_millis(10)));
        // Even though refill would have restored tokens, the penalty wins.
        assert!(!l.allow_at(t0 + Duration::from_millis(100)));
        // After the penalty the bucket is full again.
        assert!(!l.in_penalty(t0 + Duration::from_millis(600)));
        assert!(l.allow_at(t0 + Duration::from_millis(600)));
    }

    #[test]
    fn unlimited_never_refuses() {
        let mut l = RateLimiter::new(RateLimitConfig::unlimited());
        let t0 = Instant::now();
        for i in 0..10_000 {
            assert!(l.allow_at(t0 + Duration::from_nanos(i)));
        }
        assert_eq!(l.refused, 0);
    }

    #[test]
    fn tokens_never_exceed_burst() {
        let mut l = RateLimiter::new(cfg(2, 100.0, 0));
        let t0 = Instant::now();
        // Long idle: bucket caps at burst=2, not more.
        let later = t0 + Duration::from_secs(10);
        assert!(l.allow_at(later));
        assert!(l.allow_at(later));
        assert!(!l.allow_at(later));
    }
}
