//! Token-bucket rate limiting with a penalty window.
//!
//! Models the server-side behaviour the paper's crawler had to infer:
//! a burst budget that refills over time, and a penalty period after the
//! budget is exhausted during which *every* query is refused ("queries
//! can then resume after a penalty period is over", §4.1). The paper's
//! servers key the limit on the querying source IP ("once a given source
//! IP has issued more queries … than its limit"); [`KeyedRateLimiter`]
//! models exactly that — one independent bucket per key, plus an
//! optional global cap across all keys.

use std::collections::HashMap;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// Rate-limiter parameters.
#[derive(Clone, Copy, Debug)]
pub struct RateLimitConfig {
    /// Bucket capacity (burst size).
    pub burst: u32,
    /// Sustained rate: tokens refilled per second.
    pub per_second: f64,
    /// Penalty duration after the bucket is overdrawn.
    pub penalty: Duration,
}

impl RateLimitConfig {
    /// A permissive limiter for tests and unthrottled servers.
    pub fn unlimited() -> Self {
        RateLimitConfig {
            burst: u32::MAX,
            per_second: f64::INFINITY,
            penalty: Duration::ZERO,
        }
    }
}

/// Token bucket with penalty state.
#[derive(Clone, Debug)]
pub struct RateLimiter {
    cfg: RateLimitConfig,
    tokens: f64,
    last_refill: Instant,
    penalty_until: Option<Instant>,
    /// Connections this key currently holds open (maintained by
    /// [`KeyedRateLimiter::try_acquire_conn`] / `release_conn`).
    active_conns: u32,
    /// Total queries refused (stats).
    pub refused: u64,
}

impl RateLimiter {
    /// New limiter, starting with a full bucket.
    pub fn new(cfg: RateLimitConfig) -> Self {
        RateLimiter {
            tokens: cfg.burst as f64,
            cfg,
            last_refill: Instant::now(),
            penalty_until: None,
            active_conns: 0,
            refused: 0,
        }
    }

    /// Try to admit one query at time `now`.
    pub fn allow_at(&mut self, now: Instant) -> bool {
        if let Some(until) = self.penalty_until {
            if now < until {
                self.refused += 1;
                return false;
            }
            self.penalty_until = None;
            self.tokens = self.cfg.burst as f64;
            self.last_refill = now;
        }
        // Refill.
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        if self.cfg.per_second.is_finite() {
            self.tokens = (self.tokens + elapsed.as_secs_f64() * self.cfg.per_second)
                .min(self.cfg.burst as f64);
        } else {
            self.tokens = self.cfg.burst as f64;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            self.refused += 1;
            if !self.cfg.penalty.is_zero() {
                self.penalty_until = Some(now + self.cfg.penalty);
            }
            false
        }
    }

    /// Try to admit one query now.
    pub fn allow(&mut self) -> bool {
        self.allow_at(Instant::now())
    }

    /// Whether the limiter is currently in its penalty window.
    pub fn in_penalty(&self, now: Instant) -> bool {
        self.penalty_until.is_some_and(|until| now < until)
    }

    /// Impose (or extend) a penalty window ending at `now + duration` —
    /// the administrative-ban path: fault injection and operator
    /// tooling use it to refuse a client for a while regardless of its
    /// token balance. A zero `duration` is a no-op.
    pub fn penalize(&mut self, now: Instant, duration: Duration) {
        if duration.is_zero() {
            return;
        }
        let until = now + duration;
        self.penalty_until = Some(self.penalty_until.map_or(until, |u| u.max(until)));
    }

    /// Whether the bucket is effectively idle at `now`: no open
    /// connections, full (after refill), and outside any penalty
    /// window. Idle buckets carry no state worth keeping — and a bucket
    /// with live connections must never be evicted, or the cap's
    /// accounting would leak a slot per eviction.
    fn is_idle(&self, now: Instant) -> bool {
        if self.active_conns > 0 {
            return false;
        }
        if self.in_penalty(now) {
            return false;
        }
        if !self.cfg.per_second.is_finite() {
            return true;
        }
        let refilled = self.tokens
            + now
                .saturating_duration_since(self.last_refill)
                .as_secs_f64()
                * self.cfg.per_second;
        refilled >= self.cfg.burst as f64
    }
}

/// Soft cap on tracked keys: beyond this, idle buckets are pruned on
/// insert so a crawl touching many source addresses cannot grow the map
/// without bound.
const PRUNE_THRESHOLD: usize = 4096;

/// Per-key token-bucket rate limiting — the paper's per-source-IP
/// server behaviour — with an optional global cap shared by all keys.
///
/// Admission order: the global bucket (when configured) is consulted
/// first, so a refused query never consumes the key's own tokens; a
/// query admitted globally but refused per-key does consume a global
/// token (the server did spend work deciding).
#[derive(Clone, Debug)]
pub struct KeyedRateLimiter<K: Hash + Eq + Clone> {
    per_key: RateLimitConfig,
    global: Option<RateLimiter>,
    buckets: HashMap<K, RateLimiter>,
    /// Most connections one key may hold open at once (`None` = no cap).
    /// Enforced at accept time by the servers, which bracket each
    /// connection with [`try_acquire_conn`](Self::try_acquire_conn) /
    /// [`release_conn`](Self::release_conn).
    conn_cap: Option<u32>,
    /// Total queries refused across all keys (stats).
    pub refused: u64,
    /// Total connections refused by the concurrent-connection cap
    /// (stats).
    pub conn_refused: u64,
}

impl<K: Hash + Eq + Clone> KeyedRateLimiter<K> {
    /// Per-key limiting only (no global cap).
    pub fn new(per_key: RateLimitConfig) -> Self {
        KeyedRateLimiter {
            per_key,
            global: None,
            buckets: HashMap::new(),
            conn_cap: None,
            refused: 0,
            conn_refused: 0,
        }
    }

    /// Per-key limiting under a global cap across all keys.
    pub fn with_global_cap(per_key: RateLimitConfig, global: RateLimitConfig) -> Self {
        KeyedRateLimiter {
            global: Some(RateLimiter::new(global)),
            ..Self::new(per_key)
        }
    }

    /// Cap the connections one key may hold open concurrently (`0` is
    /// treated as uncapped). Builder-style so servers can layer it over
    /// either constructor.
    pub fn with_conn_cap(mut self, cap: Option<u32>) -> Self {
        self.conn_cap = cap.filter(|&c| c > 0);
        self
    }

    /// Accept-time admission: try to charge one open connection to
    /// `key`. `false` means the key is at its concurrent-connection cap
    /// and the connection should be refused before any request is read.
    /// Every `true` must be paired with exactly one
    /// [`release_conn`](Self::release_conn) when the connection closes.
    pub fn try_acquire_conn(&mut self, key: &K, now: Instant) -> bool {
        let Some(cap) = self.conn_cap else {
            return true;
        };
        if self.buckets.len() >= PRUNE_THRESHOLD && !self.buckets.contains_key(key) {
            self.buckets.retain(|_, b| !b.is_idle(now));
        }
        let per_key = self.per_key;
        let bucket = self
            .buckets
            .entry(key.clone())
            .or_insert_with(|| RateLimiter::new(per_key));
        if bucket.active_conns >= cap {
            self.conn_refused += 1;
            return false;
        }
        bucket.active_conns += 1;
        true
    }

    /// Release one open-connection slot for `key` (paired with a
    /// successful [`try_acquire_conn`](Self::try_acquire_conn)).
    pub fn release_conn(&mut self, key: &K) {
        if self.conn_cap.is_none() {
            return;
        }
        if let Some(bucket) = self.buckets.get_mut(key) {
            bucket.active_conns = bucket.active_conns.saturating_sub(1);
        }
    }

    /// Open connections currently charged to `key`.
    pub fn active_conns(&self, key: &K) -> u32 {
        self.buckets.get(key).map_or(0, |b| b.active_conns)
    }

    /// Try to admit one query from `key` at time `now`.
    pub fn allow_at(&mut self, key: &K, now: Instant) -> bool {
        if let Some(global) = &mut self.global {
            if !global.allow_at(now) {
                self.refused += 1;
                return false;
            }
        }
        if self.buckets.len() >= PRUNE_THRESHOLD && !self.buckets.contains_key(key) {
            self.buckets.retain(|_, b| !b.is_idle(now));
        }
        let per_key = self.per_key;
        let bucket = self
            .buckets
            .entry(key.clone())
            .or_insert_with(|| RateLimiter::new(per_key));
        let admitted = bucket.allow_at(now);
        if !admitted {
            self.refused += 1;
        }
        admitted
    }

    /// Try to admit one query from `key` now.
    pub fn allow(&mut self, key: &K) -> bool {
        self.allow_at(key, Instant::now())
    }

    /// Whether `key` is currently in its penalty window.
    pub fn in_penalty(&self, key: &K, now: Instant) -> bool {
        self.buckets.get(key).is_some_and(|b| b.in_penalty(now))
    }

    /// Impose (or extend) a penalty window on `key` ending at
    /// `now + duration` (see [`RateLimiter::penalize`]).
    pub fn penalize(&mut self, key: &K, now: Instant, duration: Duration) {
        if duration.is_zero() {
            return;
        }
        let per_key = self.per_key;
        self.buckets
            .entry(key.clone())
            .or_insert_with(|| RateLimiter::new(per_key))
            .penalize(now, duration);
    }

    /// Number of keys with live bucket state.
    pub fn tracked_keys(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(burst: u32, per_second: f64, penalty_ms: u64) -> RateLimitConfig {
        RateLimitConfig {
            burst,
            per_second,
            penalty: Duration::from_millis(penalty_ms),
        }
    }

    #[test]
    fn burst_respected_then_refused() {
        let mut l = RateLimiter::new(cfg(3, 0.0, 0));
        let t0 = Instant::now();
        assert!(l.allow_at(t0));
        assert!(l.allow_at(t0));
        assert!(l.allow_at(t0));
        assert!(!l.allow_at(t0));
        assert_eq!(l.refused, 1);
    }

    #[test]
    fn refill_over_time() {
        let mut l = RateLimiter::new(cfg(1, 10.0, 0));
        let t0 = Instant::now();
        assert!(l.allow_at(t0));
        assert!(!l.allow_at(t0));
        // 10 tokens/s ⇒ one token back after 100 ms.
        assert!(l.allow_at(t0 + Duration::from_millis(150)));
    }

    #[test]
    fn penalty_blocks_everything_then_resets() {
        let mut l = RateLimiter::new(cfg(1, 1000.0, 500));
        let t0 = Instant::now();
        assert!(l.allow_at(t0));
        assert!(!l.allow_at(t0), "bucket empty triggers penalty");
        assert!(l.in_penalty(t0 + Duration::from_millis(10)));
        // Even though refill would have restored tokens, the penalty wins.
        assert!(!l.allow_at(t0 + Duration::from_millis(100)));
        // After the penalty the bucket is full again.
        assert!(!l.in_penalty(t0 + Duration::from_millis(600)));
        assert!(l.allow_at(t0 + Duration::from_millis(600)));
    }

    #[test]
    fn unlimited_never_refuses() {
        let mut l = RateLimiter::new(RateLimitConfig::unlimited());
        let t0 = Instant::now();
        for i in 0..10_000 {
            assert!(l.allow_at(t0 + Duration::from_nanos(i)));
        }
        assert_eq!(l.refused, 0);
    }

    #[test]
    fn keyed_buckets_are_independent() {
        let mut l: KeyedRateLimiter<&str> = KeyedRateLimiter::new(cfg(2, 0.0, 0));
        let t0 = Instant::now();
        assert!(l.allow_at(&"a", t0));
        assert!(l.allow_at(&"a", t0));
        assert!(!l.allow_at(&"a", t0), "a exhausted its own burst");
        // A different key still has its full burst.
        assert!(l.allow_at(&"b", t0));
        assert!(l.allow_at(&"b", t0));
        assert!(!l.allow_at(&"b", t0));
        assert_eq!(l.refused, 2);
        assert_eq!(l.tracked_keys(), 2);
    }

    #[test]
    fn keyed_penalty_is_per_key() {
        let mut l: KeyedRateLimiter<u32> = KeyedRateLimiter::new(cfg(1, 1000.0, 500));
        let t0 = Instant::now();
        assert!(l.allow_at(&1, t0));
        assert!(!l.allow_at(&1, t0), "key 1 enters penalty");
        assert!(l.in_penalty(&1, t0 + Duration::from_millis(10)));
        assert!(!l.in_penalty(&2, t0 + Duration::from_millis(10)));
        assert!(l.allow_at(&2, t0 + Duration::from_millis(10)));
    }

    #[test]
    fn global_cap_refuses_across_keys() {
        let mut l: KeyedRateLimiter<u32> =
            KeyedRateLimiter::with_global_cap(RateLimitConfig::unlimited(), cfg(3, 0.0, 0));
        let t0 = Instant::now();
        assert!(l.allow_at(&1, t0));
        assert!(l.allow_at(&2, t0));
        assert!(l.allow_at(&3, t0));
        // Fourth query refused globally even though key 4 is fresh.
        assert!(!l.allow_at(&4, t0));
        assert_eq!(l.refused, 1);
    }

    #[test]
    fn idle_buckets_are_pruned_beyond_threshold() {
        let mut l: KeyedRateLimiter<usize> = KeyedRateLimiter::new(cfg(4, 1000.0, 0));
        let t0 = Instant::now();
        for k in 0..PRUNE_THRESHOLD {
            assert!(l.allow_at(&k, t0));
        }
        assert_eq!(l.tracked_keys(), PRUNE_THRESHOLD);
        // Much later every bucket has refilled; a new key triggers a prune.
        let later = t0 + Duration::from_secs(60);
        assert!(l.allow_at(&PRUNE_THRESHOLD, later));
        assert_eq!(l.tracked_keys(), 1);
    }

    #[test]
    fn penalize_imposes_and_extends_a_window() {
        let mut l = RateLimiter::new(RateLimitConfig::unlimited());
        let t0 = Instant::now();
        assert!(l.allow_at(t0));
        l.penalize(t0, Duration::from_millis(100));
        assert!(!l.allow_at(t0 + Duration::from_millis(50)));
        // A later, longer penalty extends; a shorter one never shrinks.
        l.penalize(t0, Duration::from_millis(300));
        l.penalize(t0, Duration::from_millis(10));
        assert!(!l.allow_at(t0 + Duration::from_millis(150)));
        assert!(l.allow_at(t0 + Duration::from_millis(350)));
        // Zero-duration penalties are no-ops.
        l.penalize(t0, Duration::ZERO);
        assert!(l.allow_at(t0 + Duration::from_millis(360)));
    }

    #[test]
    fn keyed_penalize_targets_one_key() {
        let mut l: KeyedRateLimiter<&str> = KeyedRateLimiter::new(RateLimitConfig::unlimited());
        let t0 = Instant::now();
        l.penalize(&"banned", t0, Duration::from_millis(200));
        assert!(!l.allow_at(&"banned", t0 + Duration::from_millis(10)));
        assert!(l.allow_at(&"innocent", t0 + Duration::from_millis(10)));
        assert!(l.allow_at(&"banned", t0 + Duration::from_millis(250)));
    }

    #[test]
    fn conn_cap_refuses_at_the_limit_and_frees_on_release() {
        let mut l: KeyedRateLimiter<&str> =
            KeyedRateLimiter::new(RateLimitConfig::unlimited()).with_conn_cap(Some(2));
        let t0 = Instant::now();
        assert!(l.try_acquire_conn(&"ip", t0));
        assert!(l.try_acquire_conn(&"ip", t0));
        assert!(!l.try_acquire_conn(&"ip", t0), "third concurrent refused");
        assert_eq!(l.conn_refused, 1);
        assert_eq!(l.active_conns(&"ip"), 2);
        // A different key has its own budget.
        assert!(l.try_acquire_conn(&"other", t0));
        // Releasing frees a slot for the capped key.
        l.release_conn(&"ip");
        assert!(l.try_acquire_conn(&"ip", t0));
        // The per-request token path is untouched by the cap.
        assert!(l.allow_at(&"ip", t0));
    }

    #[test]
    fn zero_or_absent_cap_never_refuses_conns() {
        let mut l: KeyedRateLimiter<u32> =
            KeyedRateLimiter::new(RateLimitConfig::unlimited()).with_conn_cap(Some(0));
        let t0 = Instant::now();
        for _ in 0..100 {
            assert!(l.try_acquire_conn(&1, t0));
        }
        assert_eq!(l.conn_refused, 0);
        assert_eq!(
            l.tracked_keys(),
            0,
            "an uncapped limiter tracks no per-conn state"
        );
    }

    #[test]
    fn eviction_spares_buckets_with_live_connections() {
        let mut l: KeyedRateLimiter<usize> =
            KeyedRateLimiter::new(cfg(4, 1000.0, 0)).with_conn_cap(Some(8));
        let t0 = Instant::now();
        // Key 0 holds a connection open; the rest only spend tokens.
        assert!(l.try_acquire_conn(&0, t0));
        for k in 0..PRUNE_THRESHOLD {
            assert!(l.allow_at(&k, t0));
        }
        // Much later every tokens-only bucket has refilled to idle; a
        // new key triggers the prune. The connection-holding bucket
        // must survive or its slot accounting would leak.
        let later = t0 + Duration::from_secs(60);
        assert!(l.allow_at(&(PRUNE_THRESHOLD + 1), later));
        assert_eq!(l.tracked_keys(), 2, "live-conn bucket + the new key");
        assert_eq!(l.active_conns(&0), 1);
        l.release_conn(&0);
        // Once released (and refilled), it is evictable like any other.
        let even_later = later + Duration::from_secs(60);
        for k in 0..PRUNE_THRESHOLD {
            assert!(l.allow_at(&(10_000 + k), even_later));
        }
        let final_t = even_later + Duration::from_secs(60);
        assert!(l.allow_at(&99_999, final_t));
        assert_eq!(l.active_conns(&0), 0);
        assert_eq!(l.tracked_keys(), 1, "released bucket was evicted");
    }

    #[test]
    fn tokens_never_exceed_burst() {
        let mut l = RateLimiter::new(cfg(2, 100.0, 0));
        let t0 = Instant::now();
        // Long idle: bucket caps at burst=2, not more.
        let later = t0 + Duration::from_secs(10);
        assert!(l.allow_at(later));
        assert!(l.allow_at(later));
        assert!(!l.allow_at(later));
    }
}
