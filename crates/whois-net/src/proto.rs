//! RFC 3912 protocol framing.
//!
//! WHOIS is deliberately minimal: the client sends one request line
//! terminated by `<CR><LF>`; the server writes a free-text reply and
//! closes the connection. There is no status code, no length header, no
//! schema — which is the entire reason the rest of this workspace exists.

use bytes::{BufMut, Bytes, BytesMut};

/// Maximum accepted query-line length (defense against garbage input; no
/// real domain query approaches this).
pub const MAX_QUERY_LEN: usize = 512;

/// Encode a query: the domain followed by CRLF.
pub fn encode_query(domain: &str) -> Bytes {
    let mut buf = BytesMut::with_capacity(domain.len() + 2);
    buf.put_slice(domain.as_bytes());
    buf.put_slice(b"\r\n");
    buf.freeze()
}

/// Incrementally parse one CRLF- (or bare-LF-) terminated line out of
/// `buf`, with a `max_len` cap on the unterminated prefix.
///
/// The shared framing primitive: [`decode_query`] layers the RFC 3912
/// ASCII restriction on top for WHOIS queries, while `whois-serve` uses
/// it directly for its line-delimited request protocol (JSON payloads
/// are UTF-8). Returns `Ok(Some(line))` (trimmed) once a full line is
/// present, `Ok(None)` if more bytes are needed.
pub fn decode_line(buf: &mut BytesMut, max_len: usize) -> Result<Option<String>, QueryError> {
    if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let line = buf.split_to(pos + 1);
        let mut end = line.len() - 1;
        if end > 0 && line[end - 1] == b'\r' {
            end -= 1;
        }
        let bytes = &line[..end];
        let s = std::str::from_utf8(bytes).map_err(|_| QueryError::NotUtf8)?;
        return Ok(Some(s.trim().to_string()));
    }
    if buf.len() > max_len {
        return Err(QueryError::TooLong);
    }
    Ok(None)
}

/// Incrementally parse a query line out of `buf`.
///
/// Returns `Ok(Some(query))` once a full CRLF- (or bare-LF-) terminated
/// line is present, `Ok(None)` if more bytes are needed, and `Err` if the
/// line exceeds [`MAX_QUERY_LEN`] or contains non-ASCII bytes (RFC 3912
/// carries ASCII queries).
pub fn decode_query(buf: &mut BytesMut) -> Result<Option<String>, QueryError> {
    match decode_line(buf, MAX_QUERY_LEN)? {
        Some(s) if !s.is_ascii() => Err(QueryError::NotAscii),
        other => Ok(other),
    }
}

/// Decode a record *body* leniently: invalid UTF-8 becomes U+FFFD.
///
/// The strict/lossy split is deliberate. Protocol and command lines
/// (queries, the serve daemon's verb lines) stay strict — a non-UTF-8
/// command is an attack or a bug, and rejecting it is correct. Record
/// bodies are data from the wild: registrars emit Latin-1, Shift-JIS,
/// and plain mojibake, and §3's whole point is that WHOIS replies
/// follow no spec. A crawler that drops such records loses exactly the
/// long-tail formats the parser exists for, so bodies are decoded
/// lossily everywhere.
pub fn decode_body(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Errors while decoding a query line.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// No terminator within the length cap.
    TooLong,
    /// The query contained non-ASCII bytes.
    NotAscii,
    /// The line was not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::TooLong => write!(f, "query line too long"),
            QueryError::NotAscii => write!(f, "query contains non-ascii bytes"),
            QueryError::NotUtf8 => write!(f, "line is not valid utf-8"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Classify a server reply the way the crawler does: servers under rate
/// limiting "stop responding, return an empty record or return an
/// error" (§4.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReplyKind {
    /// Looks like a real record (has a separator-bearing line).
    Record,
    /// The registry's "No match for ..." reply.
    NoMatch,
    /// An explicit rate-limit / quota error.
    RateLimited,
    /// Empty or whitespace-only reply.
    Empty,
    /// Anything else (garbled, truncated, unclassifiable).
    Other,
}

/// Classify a reply body.
pub fn classify_reply(body: &str) -> ReplyKind {
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return ReplyKind::Empty;
    }
    let lower = trimmed.to_lowercase();
    if lower.starts_with("no match") || lower.contains("not found") && lower.len() < 120 {
        return ReplyKind::NoMatch;
    }
    if lower.contains("rate limit")
        || lower.contains("quota exceeded")
        || lower.contains("too many requests")
    {
        return ReplyKind::RateLimited;
    }
    // A record is any reply with a field-bearing line. WHOIS formats
    // disagree even on the separator: most use `Key: value`, OVH-style
    // records use `key = value`, and Onamae-style records use
    // `[Key] value` — all must count, or the crawler retries (and
    // eventually abandons) perfectly good thick records.
    if trimmed
        .lines()
        .any(|l| (l.contains(':') || l.contains('=') || bracket_field(l)) && l.len() > 3)
    {
        return ReplyKind::Record;
    }
    ReplyKind::Other
}

/// `[Key] value` field line (Onamae-style records).
fn bracket_field(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with('[') && t.contains(']')
}

/// Extract the registrar WHOIS referral from a thin record (`Whois
/// Server: host` line), lower-cased.
pub fn referral_server(thin: &str) -> Option<String> {
    for line in thin.lines() {
        let lower = line.trim().to_lowercase();
        if let Some(rest) = lower.strip_prefix("whois server:") {
            let host = rest.trim();
            if !host.is_empty() {
                return Some(host.to_string());
            }
        }
        if let Some(rest) = lower.strip_prefix("registrar whois server:") {
            let host = rest.trim();
            if !host.is_empty() {
                return Some(host.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = encode_query("example.com");
        assert_eq!(&q[..], b"example.com\r\n");
        let mut buf = BytesMut::from(&q[..]);
        assert_eq!(decode_query(&mut buf).unwrap(), Some("example.com".into()));
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_then_complete() {
        let mut buf = BytesMut::from(&b"exam"[..]);
        assert_eq!(decode_query(&mut buf).unwrap(), None);
        buf.extend_from_slice(b"ple.com\n");
        assert_eq!(decode_query(&mut buf).unwrap(), Some("example.com".into()));
    }

    #[test]
    fn bare_lf_and_whitespace_tolerated() {
        let mut buf = BytesMut::from(&b"  example.com  \n"[..]);
        assert_eq!(decode_query(&mut buf).unwrap(), Some("example.com".into()));
    }

    #[test]
    fn two_pipelined_queries_split_correctly() {
        let mut buf = BytesMut::from(&b"a.com\r\nb.com\r\n"[..]);
        assert_eq!(decode_query(&mut buf).unwrap(), Some("a.com".into()));
        assert_eq!(decode_query(&mut buf).unwrap(), Some("b.com".into()));
        assert_eq!(decode_query(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_query_rejected() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&vec![b'a'; MAX_QUERY_LEN + 1]);
        assert_eq!(decode_query(&mut buf), Err(QueryError::TooLong));
    }

    #[test]
    fn non_ascii_rejected() {
        let mut buf = BytesMut::from("dömäin.com\r\n".as_bytes());
        assert_eq!(decode_query(&mut buf), Err(QueryError::NotAscii));
    }

    #[test]
    fn body_decoding_is_lossy_not_rejecting() {
        // Latin-1 'é' (0xE9) is invalid UTF-8; the body must survive as
        // mojibake rather than be dropped.
        let body = b"Registrant Name: Ren\xE9e Dupont\nRegistrar: Test\n";
        let decoded = decode_body(body);
        assert!(decoded.contains("Ren\u{FFFD}e Dupont"));
        assert_eq!(classify_reply(&decoded), ReplyKind::Record);
        // Clean UTF-8 passes through byte-identically.
        assert_eq!(decode_body("caf\u{e9}.com".as_bytes()), "caf\u{e9}.com");
        // Command lines remain strict.
        let mut buf = BytesMut::from(&b"caf\xE9.com\r\n"[..]);
        assert_eq!(decode_query(&mut buf), Err(QueryError::NotUtf8));
    }

    #[test]
    fn reply_classification() {
        assert_eq!(classify_reply(""), ReplyKind::Empty);
        assert_eq!(classify_reply("   \n  "), ReplyKind::Empty);
        assert_eq!(
            classify_reply("No match for EXAMPLE.COM"),
            ReplyKind::NoMatch
        );
        assert_eq!(
            classify_reply("Error: rate limit exceeded, slow down"),
            ReplyKind::RateLimited
        );
        assert_eq!(
            classify_reply("Domain Name: EXAMPLE.COM\nRegistrar: X"),
            ReplyKind::Record
        );
        assert_eq!(
            classify_reply("domain = example.com\nregistrar = OVH SAS"),
            ReplyKind::Record,
            "OVH-style key = value records are records"
        );
        assert_eq!(
            classify_reply("[Domain Name] EXAMPLE.COM\n[Registrant Name] J"),
            ReplyKind::Record,
            "Onamae-style [Key] value records are records"
        );
        assert_eq!(classify_reply("garbled nonsense"), ReplyKind::Other);
    }

    #[test]
    fn referral_extraction() {
        let thin =
            "   Domain Name: X.COM\n   Registrar: GODADDY\n   Whois Server: whois.godaddy.com\n";
        assert_eq!(referral_server(thin).as_deref(), Some("whois.godaddy.com"));
        assert_eq!(
            referral_server("Registrar WHOIS Server: whois.enom.com").as_deref(),
            Some("whois.enom.com")
        );
        assert_eq!(referral_server("Domain Name: X.COM"), None);
        assert_eq!(referral_server("Whois Server:"), None);
    }
}
