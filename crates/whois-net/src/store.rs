//! Record stores: what a WHOIS server answers with.
//!
//! The thin/thick split of §2.2 maps onto two instances of the same
//! trait: the registry's store holds thin records whose `Whois Server:`
//! line refers the client onward; each registrar's store holds the thick
//! records for its own domains.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Source of WHOIS response bodies.
pub trait RecordStore: Send + Sync + 'static {
    /// The response body for `domain`, or `None` for "no match".
    fn lookup(&self, domain: &str) -> Option<String>;

    /// The server's "no match" reply.
    fn no_match(&self, domain: &str) -> String {
        format!("No match for \"{}\".\r\n", domain.to_uppercase())
    }
}

/// A hash-map-backed store.
#[derive(Clone, Debug, Default)]
pub struct InMemoryStore {
    records: HashMap<String, String>,
}

impl InMemoryStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(domain, body)` pairs (domains lower-cased).
    pub fn from_records(records: impl IntoIterator<Item = (String, String)>) -> Self {
        InMemoryStore {
            records: records
                .into_iter()
                .map(|(d, b)| (d.to_lowercase(), b))
                .collect(),
        }
    }

    /// Insert one record.
    pub fn insert(&mut self, domain: &str, body: String) {
        self.records.insert(domain.to_lowercase(), body);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl RecordStore for InMemoryStore {
    fn lookup(&self, domain: &str) -> Option<String> {
        self.records.get(&domain.to_lowercase()).cloned()
    }
}

/// A store wrapper that records every looked-up domain — the
/// server-side request log the crash-resume tests use to prove a
/// resumed crawl re-queries nothing it already journaled.
#[derive(Debug)]
pub struct LoggingStore<S> {
    inner: S,
    log: Arc<Mutex<Vec<String>>>,
}

impl<S> LoggingStore<S> {
    /// Wrap `inner`, sharing the request log behind the returned handle.
    pub fn new(inner: S) -> Self {
        LoggingStore {
            inner,
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle to the request log; clones observe the same log after
    /// the store has moved into a server.
    pub fn log(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.log)
    }
}

impl<S: RecordStore> RecordStore for LoggingStore<S> {
    fn lookup(&self, domain: &str) -> Option<String> {
        self.log.lock().push(domain.to_lowercase());
        self.inner.lookup(domain)
    }

    fn no_match(&self, domain: &str) -> String {
        self.inner.no_match(domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut s = InMemoryStore::new();
        s.insert("Example.COM", "body".into());
        assert_eq!(s.lookup("EXAMPLE.com").as_deref(), Some("body"));
        assert_eq!(s.lookup("other.com"), None);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn no_match_mentions_domain() {
        let s = InMemoryStore::new();
        assert!(s.no_match("x.com").contains("X.COM"));
    }

    #[test]
    fn logging_store_records_lookups() {
        let mut s = InMemoryStore::new();
        s.insert("a.com", "body".into());
        let logging = LoggingStore::new(s);
        let log = logging.log();
        assert_eq!(logging.lookup("A.COM").as_deref(), Some("body"));
        assert_eq!(logging.lookup("miss.com"), None);
        let _ = logging.no_match("miss.com");
        assert_eq!(&*log.lock(), &["a.com".to_string(), "miss.com".to_string()]);
    }

    #[test]
    fn from_records_builder() {
        let s = InMemoryStore::from_records(vec![
            ("A.com".to_string(), "1".to_string()),
            ("b.com".to_string(), "2".to_string()),
        ]);
        assert_eq!(s.lookup("a.com").as_deref(), Some("1"));
        assert_eq!(s.lookup("B.COM").as_deref(), Some("2"));
    }
}
