//! Blocking WHOIS client.

use crate::proto;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking RFC 3912 client with connect/read timeouts.
#[derive(Clone, Debug)]
pub struct WhoisClient {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Read timeout (whole-reply deadline is `read_timeout` per read
    /// call; servers close promptly).
    pub read_timeout: Duration,
    /// Reply size cap (defensive; real records are a few KiB).
    pub max_reply: usize,
}

impl Default for WhoisClient {
    fn default() -> Self {
        WhoisClient {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            max_reply: 1 << 20,
        }
    }
}

impl WhoisClient {
    /// Query `domain` at `server`, returning the reply body (possibly
    /// empty — WHOIS has no status signalling; see
    /// [`proto::classify_reply`]).
    pub fn query(&self, server: SocketAddr, domain: &str) -> std::io::Result<String> {
        let mut stream = TcpStream::connect_timeout(&server, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_nodelay(true)?;
        stream.write_all(&proto::encode_query(domain))?;
        let mut body = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    body.extend_from_slice(&chunk[..n]);
                    if body.len() > self.max_reply {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "reply exceeds size cap",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(proto::decode_body(&body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_refused_is_an_error() {
        let client = WhoisClient::default();
        // Port 1 on loopback is essentially never listening.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(client.query(addr, "example.com").is_err());
    }

    #[test]
    fn default_timeouts_are_sane() {
        let c = WhoisClient::default();
        assert!(c.connect_timeout >= Duration::from_millis(100));
        assert!(c.max_reply >= 1 << 16);
    }
}
