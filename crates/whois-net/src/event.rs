//! The readiness core: an epoll-backed poller and a cross-thread waker.
//!
//! Both serving surfaces (the `whois-net` test/crawl server and the
//! `whois-serve` parse daemon) multiplex thousands of nonblocking
//! sockets on one acceptor thread. The kernel interface they need is
//! tiny — register a file descriptor with a token, wait for readiness —
//! and the vendored-deps constraint rules out `mio`/`tokio`, so the
//! epoll surface is declared directly against the platform libc that
//! every Rust binary already links. No crate is involved.
//!
//! * [`Poller`] — `epoll_create1`/`epoll_ctl`/`epoll_wait` on Linux.
//!   Level-triggered by default (a connection with unread bytes or
//!   unflushed replies stays ready, which composes with pooled buffers
//!   that drain incrementally); [`Interest::edge`] opts a registration
//!   into edge-triggered mode for sources that are drained to
//!   `WouldBlock` on every wakeup.
//! * [`Waker`] — a loopback UDP socket connected to itself. Worker
//!   threads call [`Waker::wake`] to interrupt `epoll_wait` when a
//!   parse completion is ready; the event loop drains it and polls its
//!   completion channel. This avoids the `pipe2`/`eventfd` FFI while
//!   behaving identically (a full socket buffer just means a wake is
//!   already pending).
//!
//! Tokens are caller-chosen `u64`s carried verbatim in the kernel event
//! (`epoll_data`). The servers use monotonically increasing tokens and
//! never reuse them, which makes stale events (for a connection closed
//! earlier in the same wakeup batch) detectable by map lookup instead
//! of generation counters.

use std::io;
use std::net::UdpSocket;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// Non-unix placeholder so the crate still compiles; event-loop serving
/// modes report `Unsupported` at runtime instead.
#[cfg(not(unix))]
pub type RawFd = i32;

/// What a registration wants to hear about.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    /// Readable readiness (`EPOLLIN`).
    pub readable: bool,
    /// Writable readiness (`EPOLLOUT`).
    pub writable: bool,
    /// Edge-triggered (`EPOLLET`) instead of the level-triggered
    /// default.
    pub edge: bool,
}

impl Interest {
    /// Level-triggered read interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };

    /// Level-triggered write interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
        edge: false,
    };

    /// Level-triggered read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
        edge: false,
    };

    /// This interest, edge-triggered.
    pub fn edge_triggered(self) -> Interest {
        Interest { edge: true, ..self }
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Readable (or a pending error/hangup, which reads surface).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hangup or error (`EPOLLHUP`/`EPOLLERR`/`EPOLLRDHUP`): the
    /// connection should be read to EOF / torn down.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    // Declared straight against the platform libc (always linked);
    // values are part of the Linux kernel ABI and arch-independent.
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    /// `struct epoll_event`; packed on x86-64 (kernel ABI quirk),
    /// naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Copy, Clone)]
    pub struct RawEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut RawEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        if interest.edge {
            events |= EPOLLET;
        }
        events
    }

    pub struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = RawEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = RawEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<std::time::Duration>,
        ) -> io::Result<usize> {
            const CAPACITY: usize = 1024;
            let mut raw = [RawEvent { events: 0, data: 0 }; CAPACITY];
            // Round sub-millisecond timeouts up so a 100µs deadline
            // doesn't degenerate into a busy spin at timeout 0.
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => d
                    .as_millis()
                    .max(u128::from(!d.is_zero()))
                    .min(i32::MAX as u128) as c_int,
            };
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as c_int, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &raw[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data,
                    readable: events & EPOLLIN != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::io;

    /// Stub selector: event-loop serving is Linux-only in this build;
    /// callers fall back to the blocking path.
    pub struct Selector;

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "event-loop serving requires epoll (linux); use blocking mode",
            ))
        }

        pub fn register(&self, _fd: super::RawFd, _token: u64, _i: Interest) -> io::Result<()> {
            unreachable!("stub selector cannot be constructed")
        }

        pub fn reregister(&self, _fd: super::RawFd, _token: u64, _i: Interest) -> io::Result<()> {
            unreachable!("stub selector cannot be constructed")
        }

        pub fn deregister(&self, _fd: super::RawFd) -> io::Result<()> {
            unreachable!("stub selector cannot be constructed")
        }

        pub fn wait(
            &self,
            _out: &mut Vec<Event>,
            _timeout: Option<std::time::Duration>,
        ) -> io::Result<usize> {
            unreachable!("stub selector cannot be constructed")
        }
    }
}

/// A readiness poller: register file descriptors under caller-chosen
/// tokens, then [`wait`](Poller::wait) for events.
pub struct Poller {
    selector: sys::Selector,
}

impl Poller {
    /// New poller. `Err(Unsupported)` on platforms without epoll, which
    /// the servers translate into "use blocking mode".
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            selector: sys::Selector::new()?,
        })
    }

    /// Start watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.selector.register(fd, token, interest)
    }

    /// Change an existing registration's interest (or token).
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.selector.reregister(fd, token, interest)
    }

    /// Stop watching `fd`. Must be called before the descriptor is
    /// closed when other descriptors remain registered.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }

    /// Block until readiness (or `timeout`), appending events to `out`.
    /// Returns the number of events appended; `0` means the timeout
    /// elapsed. `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.selector.wait(out, timeout)
    }
}

/// Cross-thread wakeup for a [`Poller`] loop: a nonblocking loopback
/// UDP socket connected to itself, registered read-only. [`wake`]
/// (any thread) makes the loop's `wait` return; the loop calls
/// [`drain`] and then checks whatever queue the wake advertised.
///
/// [`wake`]: Waker::wake
/// [`drain`]: Waker::drain
#[derive(Debug)]
pub struct Waker {
    socket: UdpSocket,
}

impl Waker {
    /// Create a waker and register it with `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(socket.local_addr()?)?;
        socket.set_nonblocking(true)?;
        #[cfg(unix)]
        poller.register(socket.as_raw_fd(), token, Interest::READ)?;
        #[cfg(not(unix))]
        let _ = (poller, token);
        Ok(Waker { socket })
    }

    /// Interrupt the poll loop. Callable from any thread; cheap and
    /// idempotent (a full socket buffer means a wake is already
    /// pending, which is exactly as good).
    pub fn wake(&self) {
        let _ = self.socket.send(&[1]);
    }

    /// Consume pending wakeups (event-loop side).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while self.socket.recv(&mut buf).is_ok() {}
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_on_data() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: the wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        a.write_all(b"hi").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn level_triggered_stays_ready_until_drained() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"xyz").unwrap();

        for _ in 0..2 {
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
        }
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained socket is no longer ready");
    }

    #[test]
    fn edge_triggered_fires_once_per_arrival() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        poller
            .register(b.as_raw_fd(), 2, Interest::READ.edge_triggered())
            .unwrap();
        a.write_all(b"x").unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        // Without reading, the edge does not re-fire.
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        // A new arrival is a new edge.
        a.write_all(b"y").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
    }

    #[test]
    fn writable_and_reregister() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        // Read-only first: an idle socket reports nothing.
        poller.register(a.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        // Flip to write interest: an empty send buffer is writable now.
        poller
            .reregister(a.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        poller.deregister(a.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn hangup_reported_on_peer_close() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 4, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 4 && e.hangup));
    }

    #[test]
    fn waker_interrupts_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 99).unwrap());
        let w = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
            w.wake(); // double-wake coalesces harmlessly
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        // Join before draining: the second wake may not have landed
        // yet, and a drain that races it leaves a stale readable.
        handle.join().unwrap();
        waker.drain();
        // Drained: the next wait times out instead of spinning.
        let mut events = Vec::new();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }
}
