//! Crash-safe crawl journal: an append-only, CRC-framed write-ahead log
//! of completed crawl results.
//!
//! A multi-day crawl (the paper's took weeks across 102 million domains)
//! must survive `kill -9`. The journal records one fsync'd frame per
//! *completed* domain, so on restart the crawler replays the journal,
//! skips everything already recorded, and re-queries nothing — the
//! at-least-once boundary is the domain, and the only work ever repeated
//! is a domain that was mid-flight when the process died.
//!
//! ## On-disk format
//!
//! ```text
//! "WCJ1"                                        4-byte magic
//! repeated frames:
//!   len:  u32 LE   payload byte count
//!   crc:  u32 LE   CRC-32 (IEEE) of the payload
//!   payload        the CrawlResult as JSON
//! ```
//!
//! The framing itself (len/crc header, torn-tail detection) lives in
//! [`whois_store::frame`] — this journal was its first user, and the
//! record store's segments generalize it; only the `WCJ1` magic and the
//! JSON payload schema are journal-specific.
//!
//! A crash can tear the final frame (short write, bad CRC, truncated
//! JSON). [`CrawlJournal::open`] replays the longest valid prefix,
//! truncates the file back to it, and positions the next append there —
//! a torn tail costs exactly the one in-flight domain it described.

use crate::crawler::CrawlResult;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use whois_store::frame;

// Re-exported where it always lived; the implementation moved to the
// shared framing module.
pub use whois_store::frame::crc32;

const MAGIC: &[u8; 4] = b"WCJ1";

/// An open crawl journal.
pub struct CrawlJournal {
    file: File,
    path: PathBuf,
    results: Vec<CrawlResult>,
    completed: HashSet<String>,
    /// Frames dropped from the tail during replay (0 or 1 in practice;
    /// counts every trailing frame that failed to decode).
    torn_tail: usize,
    sync: bool,
}

impl CrawlJournal {
    /// Open (creating if missing) the journal at `path`, replaying any
    /// existing records and truncating a torn tail.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_sync(path, true)
    }

    /// [`open`](Self::open) with control over per-append `fsync` —
    /// tests that hammer the journal can trade durability for speed.
    pub fn open_with_sync(path: impl AsRef<Path>, sync: bool) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut results = Vec::new();
        let mut torn_tail = 0;
        let valid_end = if bytes.is_empty() {
            file.write_all(MAGIC)?;
            if sync {
                file.sync_data()?;
            }
            MAGIC.len() as u64
        } else if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a crawl journal (bad magic)",
            ));
        } else {
            let mut pos = MAGIC.len();
            loop {
                match decode_frame(&bytes[pos..]) {
                    Some((result, consumed)) => {
                        results.push(result);
                        pos += consumed;
                    }
                    None => {
                        if pos < bytes.len() {
                            torn_tail = 1;
                        }
                        break;
                    }
                }
            }
            pos as u64
        };

        // Drop the torn tail so the next append starts on a frame
        // boundary.
        file.set_len(valid_end)?;
        file.seek(SeekFrom::Start(valid_end))?;

        let completed = results.iter().map(|r| r.domain.to_lowercase()).collect();
        Ok(CrawlJournal {
            file,
            path,
            results,
            completed,
            torn_tail,
            sync,
        })
    }

    /// Append one completed result, fsync'd before returning (unless
    /// sync was disabled at open).
    pub fn append(&mut self, result: &CrawlResult) -> io::Result<()> {
        let payload = serde_json::to_string(result)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            .into_bytes();
        let mut framed = Vec::with_capacity(payload.len() + frame::FRAME_HEADER);
        frame::append_frame(&mut framed, &payload);
        self.file.write_all(&framed)?;
        self.file.flush()?;
        if self.sync {
            self.file.sync_data()?;
        }
        self.completed.insert(result.domain.to_lowercase());
        self.results.push(result.clone());
        Ok(())
    }

    /// All results recorded so far (replayed + appended, append order).
    pub fn results(&self) -> &[CrawlResult] {
        &self.results
    }

    /// Whether `domain` already has a journaled result.
    pub fn contains(&self, domain: &str) -> bool {
        self.completed.contains(&domain.to_lowercase())
    }

    /// Number of journaled results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when nothing is journaled yet.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Whether open found (and truncated) a torn tail.
    pub fn had_torn_tail(&self) -> bool {
        self.torn_tail > 0
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Decode one frame from `bytes`; `None` if it is incomplete or corrupt
/// (both mean: torn tail, stop here).
fn decode_frame(bytes: &[u8]) -> Option<(CrawlResult, usize)> {
    let (payload, consumed) = frame::decode_frame(bytes)?;
    let result: CrawlResult = serde_json::from_slice(payload).ok()?;
    Some((result, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::CrawlStatus;

    fn result(i: usize, status: CrawlStatus) -> CrawlResult {
        CrawlResult {
            domain: format!("domain{i}.com"),
            thin: Some(format!("Whois Server: whois.r{i}.example\n")),
            thick: matches!(status, CrawlStatus::Full)
                .then(|| format!("Domain Name: DOMAIN{i}.COM\nRegistrant Name: Owner {i}\n")),
            status,
            attempts: (i % 3) as u32 + 1,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("whois-journal-{}-{name}.wcj", std::process::id()))
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = CrawlJournal::open(&path).unwrap();
            assert!(j.is_empty());
            for i in 0..5 {
                j.append(&result(i, CrawlStatus::Full)).unwrap();
            }
            assert_eq!(j.len(), 5);
            assert!(j.contains("domain3.com"));
            assert!(j.contains("DOMAIN3.COM"));
            assert!(!j.contains("domain9.com"));
        }
        let j = CrawlJournal::open(&path).unwrap();
        assert_eq!(j.len(), 5);
        assert!(!j.had_torn_tail());
        assert_eq!(j.results()[2], result(2, CrawlStatus::Full));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_at_every_offset_replays_longest_valid_prefix() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = CrawlJournal::open(&path).unwrap();
            for i in 0..4 {
                j.append(&result(i, CrawlStatus::Full)).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();

        // Frame boundaries: magic, then each frame's end.
        let mut boundaries = vec![MAGIC.len()];
        let mut pos = MAGIC.len();
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
            boundaries.push(pos);
        }
        assert_eq!(boundaries.len(), 5);

        for cut in MAGIC.len()..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let j = CrawlJournal::open(&path).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(j.len(), expect, "cut at {cut}");
            assert_eq!(
                j.had_torn_tail(),
                !boundaries.contains(&cut),
                "cut at {cut}"
            );
            // The truncation must leave a clean, appendable journal.
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                boundaries[expect] as u64
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_torn_open_overwrites_the_tail() {
        let path = tmp("append-after-torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = CrawlJournal::open(&path).unwrap();
            j.append(&result(0, CrawlStatus::Full)).unwrap();
            j.append(&result(1, CrawlStatus::ThinOnly)).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Tear the second record in half.
        let mid = full.len() - 10;
        std::fs::write(&path, &full[..mid]).unwrap();
        {
            let mut j = CrawlJournal::open(&path).unwrap();
            assert_eq!(j.len(), 1);
            assert!(j.had_torn_tail());
            j.append(&result(2, CrawlStatus::NoMatch)).unwrap();
        }
        let j = CrawlJournal::open(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.results()[1], result(2, CrawlStatus::NoMatch));
        assert!(!j.had_torn_tail());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_mid_file_stops_replay_there() {
        let path = tmp("crc");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = CrawlJournal::open(&path).unwrap();
            for i in 0..3 {
                j.append(&result(i, CrawlStatus::Full)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the second frame.
        let f0_len =
            u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap()) as usize;
        let f1_start = MAGIC.len() + 8 + f0_len;
        bytes[f1_start + 12] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        let j = CrawlJournal::open(&path).unwrap();
        assert_eq!(j.len(), 1, "replay stops at the corrupt frame");
        assert!(j.had_torn_tail());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(CrawlJournal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
