//! The crawl→parse→survey pipeline: crawled thick records stream
//! straight into [`ParsedRecord`]s and §6 survey counters.
//!
//! The paper's workflow is exactly this chain — crawl 102M `com` domains
//! (§4.1), parse every record with the statistical parser (§3), and
//! aggregate the parses into the survey tables (§6). This module fuses
//! the stages: while crawl workers are still fetching, completed records
//! are batched into the [`ParseEngine`] (which fans them across its own
//! worker pool with reused scratches) and each parse is folded into a
//! [`Survey`] as it lands, so no stage waits for the previous one to
//! finish the whole corpus.

use crate::crawler::{CrawlReport, CrawlResult, Crawler};
use std::sync::Arc;
use whois_model::{ParsedRecord, RawRecord};
use whois_parser::{BatchStats, ParseEngine};
use whois_survey::Survey;

/// Everything one pipeline run produces.
#[derive(Debug)]
pub struct PipelineReport {
    /// The crawl stage's report (statuses, pacing, wall clock).
    pub crawl: CrawlReport,
    /// Structured parses, one per crawled record body, in completion
    /// order (matching `crawl.results` restricted to records with a
    /// body).
    pub records: Vec<ParsedRecord>,
    /// §6 aggregates over every parsed record.
    pub survey: Survey,
    /// Parse-stage throughput accumulated across all batches.
    pub parse: BatchStats,
}

/// Run the crawl→parse→survey pipeline over `domains`.
///
/// Crawl results are parsed in batches of `parse_chunk` as they arrive:
/// each record's thick body (falling back to the thin body when the
/// registrar never answered) becomes a [`RawRecord`] fed to
/// [`ParseEngine::parse_batch_with_stats`], and every parse is added to
/// the survey. Domains with no body at all (failed / no-match) are
/// counted in the crawl report but produce no parse.
pub fn crawl_parse_survey(
    crawler: &Arc<Crawler>,
    engine: &ParseEngine,
    domains: &[String],
    parse_chunk: usize,
) -> PipelineReport {
    let chunk = parse_chunk.max(1);
    let mut pending: Vec<RawRecord> = Vec::with_capacity(chunk);
    let mut records = Vec::new();
    let mut survey = Survey::new();
    let mut parse = BatchStats::default();

    let flush = |pending: &mut Vec<RawRecord>,
                 records: &mut Vec<ParsedRecord>,
                 survey: &mut Survey,
                 parse: &mut BatchStats| {
        if pending.is_empty() {
            return;
        }
        let (batch, stats) = engine.parse_batch_with_stats(pending);
        for parsed in &batch {
            survey.add(parsed, false);
        }
        records.extend(batch);
        parse.merge(&stats);
        pending.clear();
    };

    let crawl = crawler.crawl_each(domains, |result| {
        if let Some(raw) = raw_record(result) {
            pending.push(raw);
        }
        if pending.len() >= chunk {
            flush(&mut pending, &mut records, &mut survey, &mut parse);
        }
    });
    flush(&mut pending, &mut records, &mut survey, &mut parse);

    PipelineReport {
        crawl,
        records,
        survey,
        parse,
    }
}

/// The parseable body of a crawl result: the thick record when the
/// registrar answered, the thin referral record otherwise.
fn raw_record(result: &CrawlResult) -> Option<RawRecord> {
    let body = result.thick.as_deref().or(result.thin.as_deref())?;
    Some(RawRecord::new(result.domain.clone(), body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::{CrawlStatus, CrawlerConfig};
    use crate::server::{ServerConfig, WhoisServer};
    use crate::store::InMemoryStore;
    use std::collections::HashMap;
    use whois_gen::corpus::{generate_corpus, GenConfig};
    use whois_parser::{ParserConfig, TrainExample, WhoisParser};

    #[test]
    fn crawl_parse_survey_end_to_end() {
        let corpus = generate_corpus(GenConfig::new(23, 160));
        let (train, crawl_set) = corpus.split_at(120);

        // Train the parser on the first split.
        let first: Vec<TrainExample<whois_model::BlockLabel>> = train
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let second: Vec<TrainExample<whois_model::RegistrantLabel>> = train
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                if reg.is_empty() {
                    return None;
                }
                Some(TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
        let engine = ParseEngine::with_workers(parser, 2);

        // Spin up a registry + per-registrar thick servers for the rest.
        let mut thin = InMemoryStore::new();
        let mut per_registrar: HashMap<&str, InMemoryStore> = HashMap::new();
        for d in crawl_set {
            thin.insert(&d.facts.domain, d.thin_text());
            per_registrar
                .entry(d.registrar.whois_server)
                .or_default()
                .insert(&d.facts.domain, d.rendered.text());
        }
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let mut resolver = HashMap::new();
        let mut servers = Vec::new();
        for (host, store) in per_registrar {
            let server = WhoisServer::start(store, ServerConfig::default()).unwrap();
            resolver.insert(host.to_string(), server.addr());
            servers.push(server);
        }

        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig::default(),
        ));
        let domains: Vec<String> = crawl_set.iter().map(|d| d.facts.domain.clone()).collect();
        let report = crawl_parse_survey(&crawler, &engine, &domains, 16);

        // Every domain crawled in full; every body parsed and surveyed.
        assert_eq!(report.crawl.count(CrawlStatus::Full), domains.len());
        assert_eq!(report.records.len(), domains.len());
        assert_eq!(report.survey.total, domains.len() as u64);
        assert_eq!(report.parse.records, domains.len());
        assert!(report.parse.lines_labeled > 0);

        // Parses match completion order and are the engine's parses.
        for (result, parsed) in report.crawl.results.iter().zip(&report.records) {
            assert_eq!(result.domain, parsed.domain);
            assert_eq!(*parsed, engine.parse_one(&raw_record(result).unwrap()));
        }

        // The survey actually aggregated the parses.
        assert!(
            report.survey.registrar_all.total() >= report.survey.total,
            "every record contributes a registrar row"
        );
    }

    #[test]
    fn bodiless_results_are_skipped() {
        let result = CrawlResult {
            domain: "gone.com".into(),
            thin: None,
            thick: None,
            status: CrawlStatus::Failed,
            attempts: 3,
        };
        assert!(raw_record(&result).is_none());
        let thin_only = CrawlResult {
            domain: "thin.com".into(),
            thin: Some("Domain Name: THIN.COM\n".into()),
            thick: None,
            status: CrawlStatus::ThinOnly,
            attempts: 2,
        };
        let raw = raw_record(&thin_only).unwrap();
        assert_eq!(raw.domain, "thin.com");
        assert!(raw.text.contains("THIN.COM"));
    }
}
