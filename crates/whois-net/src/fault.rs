//! Seeded fault injection, in the style of the smoltcp examples'
//! `--drop-chance` / `--corrupt-chance` options.
//!
//! Real WHOIS servers misbehave: they hang up without answering, return
//! empty bodies, or send garbage. The crawler must survive all of it
//! (the paper retried every query three times and still lost ~7.5% of
//! domains). [`FaultConfig`] decides, per request, which fate applies.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-request fault probabilities (independent; drop is checked first,
/// then empty, then garble).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Probability of closing the connection without any reply.
    pub drop_chance: f64,
    /// Probability of replying with an empty body.
    pub empty_chance: f64,
    /// Probability of corrupting the reply (one byte garbled per 64).
    pub garble_chance: f64,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if all probabilities are zero.
    pub fn is_none(&self) -> bool {
        self.drop_chance == 0.0 && self.empty_chance == 0.0 && self.garble_chance == 0.0
    }
}

/// The fate of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Deliver the body unchanged.
    Deliver,
    /// Close without replying.
    Drop,
    /// Reply with an empty body.
    Empty,
    /// Reply with this corrupted body.
    Garbled(Vec<u8>),
}

/// Seeded fault roller.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: ChaCha8Rng,
}

impl FaultInjector {
    /// New injector.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Decide the fate of a reply body.
    pub fn fate(&mut self, body: &[u8]) -> Fate {
        if self.cfg.is_none() {
            return Fate::Deliver;
        }
        if self.rng.random_bool(self.cfg.drop_chance.clamp(0.0, 1.0)) {
            return Fate::Drop;
        }
        if self.rng.random_bool(self.cfg.empty_chance.clamp(0.0, 1.0)) {
            return Fate::Empty;
        }
        if self.rng.random_bool(self.cfg.garble_chance.clamp(0.0, 1.0)) {
            let mut out = body.to_vec();
            for chunk in out.chunks_mut(64) {
                let idx = self.rng.random_range(0..chunk.len());
                chunk[idx] = self.rng.random_range(0..=255u8);
            }
            return Fate::Garbled(out);
        }
        Fate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_delivers() {
        let mut f = FaultInjector::new(FaultConfig::none(), 1);
        for _ in 0..100 {
            assert_eq!(f.fate(b"body"), Fate::Deliver);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut f = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.3,
                empty_chance: 0.0,
                garble_chance: 0.0,
            },
            7,
        );
        let drops = (0..10_000).filter(|_| f.fate(b"x") == Fate::Drop).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn garble_changes_bytes_but_not_length() {
        let mut f = FaultInjector::new(
            FaultConfig {
                garble_chance: 1.0,
                ..Default::default()
            },
            11,
        );
        let body = vec![b'a'; 256];
        match f.fate(&body) {
            Fate::Garbled(out) => {
                assert_eq!(out.len(), body.len());
                assert_ne!(out, body);
            }
            other => panic!("expected garble, got {other:?}"),
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            drop_chance: 0.5,
            empty_chance: 0.2,
            garble_chance: 0.2,
        };
        let run = |seed| {
            let mut f = FaultInjector::new(cfg, seed);
            (0..50)
                .map(|_| format!("{:?}", f.fate(b"abc")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
