//! Deterministic fault injection, in the style of the smoltcp examples'
//! `--drop-chance` / `--corrupt-chance` options.
//!
//! Real WHOIS servers misbehave: they hang up without answering, return
//! empty bodies, stall mid-reply, truncate, emit mojibake, or ban a
//! client outright for a while. The crawler must survive all of it (the
//! paper retried every query three times and still lost ~7.5% of
//! domains). [`FaultConfig`] decides, per request, which fate applies.
//!
//! Determinism is keyed, not streamed: each request's fate is a pure
//! function of `(seed, query, per-query request index)`. A multi-worker
//! crawl interleaves requests to a server in a timing-dependent order,
//! so a single shared RNG stream would make fault sequences depend on
//! scheduling; keying by query makes every domain's fault trajectory
//! reproducible regardless of concurrency — the property the
//! fault-sweep tests assert byte-for-byte.
//!
//! For scripted scenarios ("domain 17 stalls twice then succeeds"),
//! [`FaultPlan`] assigns an explicit per-query fate sequence that is
//! consumed before any probabilistic roll.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::time::Duration;

/// Per-request fault probabilities (independent; checked in the order
/// drop, empty, stall, truncate, non-UTF-8, ban, garble).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Probability of closing the connection without any reply.
    pub drop_chance: f64,
    /// Probability of replying with an empty body.
    pub empty_chance: f64,
    /// Probability of corrupting the reply (one byte garbled per 64).
    pub garble_chance: f64,
    /// Probability of stalling for [`stall`](Self::stall) before
    /// delivering the body (slow-loris; clients with a shorter read
    /// timeout see it as a hang-up).
    pub stall_chance: f64,
    /// How long a stalled reply sleeps before delivering.
    pub stall: Duration,
    /// Probability of truncating the reply to its first
    /// [`truncate_at`](Self::truncate_at) bytes.
    pub truncate_chance: f64,
    /// Truncation point for a truncated reply.
    pub truncate_at: usize,
    /// Probability of corrupting the reply into invalid UTF-8 (0xFF
    /// bytes) while keeping its length.
    pub non_utf8_chance: f64,
    /// Probability of banning the querying domain: this request and the
    /// next [`ban_requests`](Self::ban_requests)−1 for the same query
    /// get an explicit rate-limit error.
    pub ban_chance: f64,
    /// Total requests covered by one triggered ban (min 1).
    pub ban_requests: u32,
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if all probabilities are zero.
    pub fn is_none(&self) -> bool {
        self.drop_chance == 0.0
            && self.empty_chance == 0.0
            && self.garble_chance == 0.0
            && self.stall_chance == 0.0
            && self.truncate_chance == 0.0
            && self.non_utf8_chance == 0.0
            && self.ban_chance == 0.0
    }
}

/// The fate of one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Deliver the body unchanged.
    Deliver,
    /// Close without replying.
    Drop,
    /// Reply with an empty body.
    Empty,
    /// Reply with this corrupted body.
    Garbled(Vec<u8>),
    /// Sleep this long, then deliver the body unchanged.
    Stall(Duration),
    /// Reply with this prefix of the body, then close.
    Truncated(Vec<u8>),
    /// Reply with this non-UTF-8 body.
    NonUtf8(Vec<u8>),
    /// Reply with an explicit rate-limit error (the query is banned).
    Banned,
}

/// A scripted fate, before it is applied to a concrete body. Used by
/// [`FaultPlan`] to express reproducible scenarios.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FateSpec {
    /// Deliver unchanged.
    Deliver,
    /// Close without replying.
    Drop,
    /// Empty body.
    Empty,
    /// Garble (seeded by the request key).
    Garble,
    /// Stall for this duration, then deliver.
    Stall(Duration),
    /// Truncate the body to its first `n` bytes.
    Truncate(usize),
    /// Corrupt into invalid UTF-8.
    NonUtf8,
    /// Ban this query for `n` requests total (including this one).
    Ban(u32),
}

/// A per-query fault script: an explicit sequence of fates consumed
/// request by request, after which the query falls back to the
/// probabilistic [`FaultConfig`]. `"domain17.com" stalls twice then
/// succeeds` is `FaultPlan::new().script("domain17.com", [Stall(d),
/// Stall(d)])` with an otherwise fault-free config.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    scripts: HashMap<String, VecDeque<FateSpec>>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or extend) the script for `query` (matched case-insensitively
    /// against incoming queries).
    pub fn script(mut self, query: &str, fates: impl IntoIterator<Item = FateSpec>) -> Self {
        self.scripts
            .entry(query.to_lowercase())
            .or_default()
            .extend(fates);
        self
    }

    /// True when no scripts remain.
    pub fn is_empty(&self) -> bool {
        self.scripts.is_empty()
    }
}

/// FNV-1a over the request key; cheap, stable, and good enough to seed a
/// ChaCha stream per request.
fn request_key(seed: u64, query: &str, index: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for chunk in [seed, index] {
        for b in chunk.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    for b in query.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(PRIME);
    }
    h
}

/// Keyed deterministic fault roller.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    seed: u64,
    plan: FaultPlan,
    /// Requests seen so far per query (the per-query request index).
    counters: HashMap<String, u64>,
    /// Remaining banned requests per query.
    bans: HashMap<String, u32>,
}

impl FaultInjector {
    /// New injector.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        Self::with_plan(cfg, seed, FaultPlan::new())
    }

    /// New injector with a per-query script consulted before the
    /// probabilistic config.
    pub fn with_plan(cfg: FaultConfig, seed: u64, plan: FaultPlan) -> Self {
        FaultInjector {
            cfg,
            seed,
            plan,
            counters: HashMap::new(),
            bans: HashMap::new(),
        }
    }

    /// Decide the fate of the reply to `query` with body `body`.
    pub fn fate(&mut self, query: &str, body: &[u8]) -> Fate {
        let query = query.to_lowercase();
        let index = {
            let n = self.counters.entry(query.clone()).or_insert(0);
            let index = *n;
            *n += 1;
            index
        };

        // An active ban outranks everything, scripted fates included.
        if let Some(remaining) = self.bans.get_mut(&query) {
            *remaining -= 1;
            if *remaining == 0 {
                self.bans.remove(&query);
            }
            return Fate::Banned;
        }

        if let Some(script) = self.plan.scripts.get_mut(&query) {
            if let Some(spec) = script.pop_front() {
                if script.is_empty() {
                    self.plan.scripts.remove(&query);
                }
                return self.realize(spec, &query, index, body);
            }
        }

        if self.cfg.is_none() {
            return Fate::Deliver;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(request_key(self.seed, &query, index));
        if rng.random_bool(self.cfg.drop_chance.clamp(0.0, 1.0)) {
            return Fate::Drop;
        }
        if rng.random_bool(self.cfg.empty_chance.clamp(0.0, 1.0)) {
            return Fate::Empty;
        }
        if rng.random_bool(self.cfg.stall_chance.clamp(0.0, 1.0)) {
            return Fate::Stall(self.cfg.stall);
        }
        if rng.random_bool(self.cfg.truncate_chance.clamp(0.0, 1.0)) {
            return Fate::Truncated(truncate(body, self.cfg.truncate_at));
        }
        if rng.random_bool(self.cfg.non_utf8_chance.clamp(0.0, 1.0)) {
            return Fate::NonUtf8(non_utf8(body));
        }
        if rng.random_bool(self.cfg.ban_chance.clamp(0.0, 1.0)) {
            self.start_ban(&query, self.cfg.ban_requests);
            return Fate::Banned;
        }
        if rng.random_bool(self.cfg.garble_chance.clamp(0.0, 1.0)) {
            return Fate::Garbled(garble(body, &mut rng));
        }
        Fate::Deliver
    }

    /// Apply one scripted fate.
    fn realize(&mut self, spec: FateSpec, query: &str, index: u64, body: &[u8]) -> Fate {
        match spec {
            FateSpec::Deliver => Fate::Deliver,
            FateSpec::Drop => Fate::Drop,
            FateSpec::Empty => Fate::Empty,
            FateSpec::Garble => {
                let mut rng = ChaCha8Rng::seed_from_u64(request_key(self.seed, query, index));
                Fate::Garbled(garble(body, &mut rng))
            }
            FateSpec::Stall(d) => Fate::Stall(d),
            FateSpec::Truncate(n) => Fate::Truncated(truncate(body, n)),
            FateSpec::NonUtf8 => Fate::NonUtf8(non_utf8(body)),
            FateSpec::Ban(n) => {
                self.start_ban(query, n);
                Fate::Banned
            }
        }
    }

    /// Record a ban covering `total` requests including the current one.
    fn start_ban(&mut self, query: &str, total: u32) {
        let further = total.max(1) - 1;
        if further > 0 {
            self.bans.insert(query.to_string(), further);
        }
    }
}

/// One byte garbled per 64-byte chunk.
fn garble(body: &[u8], rng: &mut ChaCha8Rng) -> Vec<u8> {
    let mut out = body.to_vec();
    for chunk in out.chunks_mut(64) {
        let idx = rng.random_range(0..chunk.len());
        chunk[idx] = rng.random_range(0..=255u8);
    }
    out
}

/// First `n` bytes of the body.
fn truncate(body: &[u8], n: usize) -> Vec<u8> {
    body[..n.min(body.len())].to_vec()
}

/// Same length, but one byte per 32-byte chunk replaced with 0xFF —
/// guaranteed invalid UTF-8 (0xFF never appears in well-formed UTF-8).
fn non_utf8(body: &[u8]) -> Vec<u8> {
    if body.is_empty() {
        return vec![0xFF, 0xFE];
    }
    let mut out = body.to_vec();
    for chunk in out.chunks_mut(32) {
        chunk[chunk.len() / 2] = 0xFF;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_delivers() {
        let mut f = FaultInjector::new(FaultConfig::none(), 1);
        for i in 0..100 {
            assert_eq!(f.fate(&format!("d{i}.com"), b"body"), Fate::Deliver);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut f = FaultInjector::new(
            FaultConfig {
                drop_chance: 0.3,
                ..Default::default()
            },
            7,
        );
        let drops = (0..10_000)
            .filter(|_| f.fate("x.com", b"x") == Fate::Drop)
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn garble_changes_bytes_but_not_length() {
        let mut f = FaultInjector::new(
            FaultConfig {
                garble_chance: 1.0,
                ..Default::default()
            },
            11,
        );
        let body = vec![b'a'; 256];
        match f.fate("g.com", &body) {
            Fate::Garbled(out) => {
                assert_eq!(out.len(), body.len());
                assert_ne!(out, body);
            }
            other => panic!("expected garble, got {other:?}"),
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            drop_chance: 0.5,
            empty_chance: 0.2,
            garble_chance: 0.2,
            ..Default::default()
        };
        let run = |seed| {
            let mut f = FaultInjector::new(cfg, seed);
            (0..50)
                .map(|i| format!("{:?}", f.fate(&format!("d{}.com", i % 7), b"abc")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn fate_depends_only_on_query_and_index_not_arrival_order() {
        // The keyed property: interleaving requests from two queries in
        // any order yields the same per-query fate sequence.
        let cfg = FaultConfig {
            drop_chance: 0.5,
            garble_chance: 0.3,
            ..Default::default()
        };
        let sequence = |order: &[&str]| {
            let mut f = FaultInjector::new(cfg, 42);
            let mut per_query: HashMap<String, Vec<String>> = HashMap::new();
            for q in order {
                let fate = format!("{:?}", f.fate(q, b"some body text"));
                per_query.entry(q.to_string()).or_default().push(fate);
            }
            per_query
        };
        let a = sequence(&["a.com", "a.com", "b.com", "a.com", "b.com", "b.com"]);
        let b = sequence(&["b.com", "a.com", "b.com", "b.com", "a.com", "a.com"]);
        assert_eq!(a, b);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let mut f = FaultInjector::new(
            FaultConfig {
                truncate_chance: 1.0,
                truncate_at: 4,
                ..Default::default()
            },
            5,
        );
        assert_eq!(
            f.fate("t.com", b"0123456789"),
            Fate::Truncated(b"0123".to_vec())
        );
    }

    #[test]
    fn non_utf8_output_is_invalid_utf8_with_same_length() {
        let mut f = FaultInjector::new(
            FaultConfig {
                non_utf8_chance: 1.0,
                ..Default::default()
            },
            5,
        );
        let body = b"Domain Name: EXAMPLE.COM\nRegistrar: Test Registrar Inc\n";
        match f.fate("m.com", body) {
            Fate::NonUtf8(out) => {
                assert_eq!(out.len(), body.len());
                assert!(std::str::from_utf8(&out).is_err());
            }
            other => panic!("expected NonUtf8, got {other:?}"),
        }
    }

    #[test]
    fn ban_covers_n_requests_then_lifts() {
        let mut f = FaultInjector::new(FaultConfig::none(), 0);
        f.plan = FaultPlan::new().script("b.com", [FateSpec::Ban(3)]);
        assert_eq!(f.fate("b.com", b"x"), Fate::Banned);
        assert_eq!(f.fate("b.com", b"x"), Fate::Banned);
        assert_eq!(f.fate("b.com", b"x"), Fate::Banned);
        assert_eq!(f.fate("b.com", b"x"), Fate::Deliver);
        // Other queries are unaffected throughout.
        assert_eq!(f.fate("c.com", b"x"), Fate::Deliver);
    }

    #[test]
    fn plan_scripts_run_before_config_rolls() {
        let plan = FaultPlan::new().script(
            "d17.com",
            [
                FateSpec::Stall(Duration::from_millis(5)),
                FateSpec::Stall(Duration::from_millis(5)),
            ],
        );
        let mut f = FaultInjector::with_plan(FaultConfig::none(), 9, plan);
        assert_eq!(
            f.fate("d17.com", b"x"),
            Fate::Stall(Duration::from_millis(5))
        );
        assert_eq!(
            f.fate("D17.COM", b"x"),
            Fate::Stall(Duration::from_millis(5)),
            "scripts match case-insensitively"
        );
        assert_eq!(f.fate("d17.com", b"x"), Fate::Deliver, "then succeeds");
        assert_eq!(f.fate("other.com", b"x"), Fate::Deliver);
    }
}
