//! Reusable read buffers for the event-loop servers.
//!
//! Every live connection owns one `BytesMut` accumulation buffer while
//! it is being served. Connections churn (a WHOIS exchange is one line
//! in, one body out), so allocating a fresh buffer per accept would put
//! an allocation and a free on the accept path at every churn. The pool
//! recycles them instead: [`BufferPool::get`] hands out a cleared
//! buffer with warm capacity, [`BufferPool::put`] takes it back when
//! the connection closes.
//!
//! Two guards keep the pool from becoming a leak in disguise:
//!
//! * at most `max_pooled` buffers are retained — a connection burst
//!   returns its buffers to the allocator instead of parking them;
//! * a buffer that grew far beyond the standard capacity (a client that
//!   sent a huge request line) is dropped rather than pooled, so one
//!   pathological connection cannot permanently inflate the pool's
//!   footprint.

use bytes::BytesMut;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A buffer kept past this multiple of the standard capacity is
/// returned to the allocator instead of the pool.
const OVERSIZE_FACTOR: usize = 4;

/// Counters for pool effectiveness (relaxed; stats only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Buffers handed out that were freshly allocated.
    pub created: u64,
    /// Buffers handed out from the pool.
    pub reused: u64,
    /// Buffers accepted back into the pool.
    pub recycled: u64,
    /// Buffers dropped on return (pool full or oversized).
    pub discarded: u64,
}

/// A bounded pool of read buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<BytesMut>>,
    buf_capacity: usize,
    max_pooled: usize,
    created: AtomicU64,
    reused: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

impl BufferPool {
    /// Pool handing out buffers with `buf_capacity` bytes reserved,
    /// retaining at most `max_pooled` idle buffers.
    pub fn new(buf_capacity: usize, max_pooled: usize) -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::with_capacity(max_pooled.min(64))),
            buf_capacity: buf_capacity.max(1),
            max_pooled,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// An empty buffer with at least the pool's standard capacity.
    pub fn get(&self) -> BytesMut {
        if let Some(buf) = self.free.lock().pop() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return buf;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(self.buf_capacity)
    }

    /// Return a buffer. Cleared here; dropped instead of pooled when the
    /// pool is full or the buffer grew oversized.
    pub fn put(&self, mut buf: BytesMut) {
        buf.clear();
        if buf.capacity() > self.buf_capacity * OVERSIZE_FACTOR {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut free = self.free.lock();
        if free.len() >= self.max_pooled {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        free.push(buf);
        self.recycled.fetch_add(1, Ordering::Relaxed);
    }

    /// Idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            created: self.created.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_storage() {
        let pool = BufferPool::new(256, 8);
        let mut a = pool.get();
        a.extend_from_slice(b"hello");
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert!(b.capacity() >= 256);
        let s = pool.stats();
        assert_eq!((s.created, s.reused, s.recycled), (1, 1, 1));
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufferPool::new(64, 2);
        let bufs: Vec<_> = (0..4).map(|_| pool.get()).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().discarded, 2);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let pool = BufferPool::new(16, 8);
        let mut b = pool.get();
        b.extend_from_slice(&[0u8; 1024]); // grows far past 16 * 4
        pool.put(b);
        assert_eq!(pool.idle(), 0, "oversized buffer went to the allocator");
        assert_eq!(pool.stats().discarded, 1);
    }

    #[test]
    fn empty_pool_allocates_fresh() {
        let pool = BufferPool::new(32, 4);
        let a = pool.get();
        let b = pool.get();
        assert!(a.capacity() >= 32 && b.capacity() >= 32);
        assert_eq!(pool.stats().created, 2);
        assert_eq!(pool.stats().reused, 0);
    }
}
