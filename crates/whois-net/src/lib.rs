//! # whois-net
//!
//! The WHOIS network substrate: everything the paper's crawl
//! infrastructure (§4.1) needed, over real loopback TCP.
//!
//! * [`proto`] — RFC 3912 framing: a query is one line terminated by
//!   CRLF; the response is free text, terminated by connection close.
//! * [`limiter`] — the per-IP rate limiting the paper fought: a token
//!   bucket with a penalty window, "once a given source IP has issued
//!   more queries … than its limit, the server will stop responding …
//!   queries can then resume after a penalty period".
//! * [`store`] — the thin/thick split (§2.2): a registry store answering
//!   thin records with `Whois Server:` referrals, and per-registrar
//!   stores answering thick records.
//! * [`server`] — a WHOIS server binding `127.0.0.1:0`, with
//!   configurable rate limiting and fault injection, serving either
//!   thread-per-connection (legacy/oracle) or through the nonblocking
//!   event loop.
//! * [`event`] — the readiness core: an epoll-backed [`Poller`] (no
//!   external deps; FFI straight against the platform libc) plus a
//!   [`Waker`] for cross-thread loop interrupts.
//! * [`conn`] — the per-connection state machine shell: pooled read
//!   buffers, queued reply chunks, vectored writes, idle deadlines.
//! * [`buffer_pool`] — bounded recycling of connection read buffers.
//! * [`fault`] — smoltcp-style fault injection: drop, empty-response,
//!   garble, stall, truncate, non-UTF-8, and ban fates, all keyed
//!   deterministically per (query, request index), plus scriptable
//!   per-query [`FaultPlan`]s.
//! * [`client`] — a blocking WHOIS client with timeouts.
//! * [`breaker`] — per-endpoint circuit breakers
//!   (closed→open→half-open) gating crawler traffic to sick servers.
//! * [`journal`] — the crash-safe crawl journal: an append-only,
//!   CRC-framed, fsync'd log of completed domains, torn-tail tolerant.
//! * [`crawler`] — the two-step thin→thick crawler with dynamic
//!   rate-limit inference, multiplicative back-off, bounded retries,
//!   circuit breakers, salvage passes, cancellation, journal-backed
//!   resume, and crawl statistics.
//! * [`pipeline`] — the fused crawl→parse→survey chain: crawled record
//!   bodies stream into a `whois-parser` [`ParseEngine`] in batches and
//!   each parse is folded into `whois-survey` counters while the crawl
//!   is still running.
//!
//! [`ParseEngine`]: whois_parser::ParseEngine

pub mod breaker;
pub mod buffer_pool;
pub mod client;
pub mod conn;
pub mod crawler;
pub mod event;
pub mod fault;
pub mod journal;
pub mod limiter;
pub mod pipeline;
pub mod proto;
pub mod server;
pub mod store;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, KeyedBreaker};
pub use buffer_pool::{BufferPool, BufferPoolStats};
pub use client::WhoisClient;
pub use conn::{Chunk, ConnPhase, EventConn};
pub use crawler::{CrawlReport, CrawlResult, CrawlStatus, Crawler, CrawlerConfig, EndpointStats};
pub use event::{Event, Interest, Poller, Waker};
pub use fault::{FateSpec, FaultConfig, FaultPlan};
pub use journal::CrawlJournal;
pub use limiter::{KeyedRateLimiter, RateLimitConfig, RateLimiter};
pub use pipeline::{crawl_parse_survey, PipelineReport};
pub use server::{ServerConfig, ServerHandle, ServingMode, ShutdownReport, WhoisServer};
pub use store::{InMemoryStore, LoggingStore, RecordStore};
