//! The two-step WHOIS crawler with dynamic rate-limit inference (§4.1).
//!
//! For each `com` domain the crawler first queries the registry for the
//! thin record, extracts the sponsoring registrar's WHOIS server from the
//! `Whois Server:` referral, and then queries that server for the thick
//! record. Rate limits are "rarely published publicly", so the crawler
//! infers them: it tracks its query pacing per server, and "when a given
//! server stops responding with valid data, [it] infer[s] that [the]
//! query rate was the culprit", records the limit, and subsequently
//! queries well under it (multiplicative back-off on the per-server
//! inter-query delay). Every query is retried up to three times before
//! the domain is marked failed.

use crate::client::WhoisClient;
use crate::proto::{self, ReplyKind};
use crossbeam::channel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Crawler configuration.
#[derive(Clone, Debug)]
pub struct CrawlerConfig {
    /// Parallel worker threads ("we use multiple servers to provide for
    /// parallel access").
    pub workers: usize,
    /// Attempts per query before marking it failed (the paper used 3).
    pub retries: usize,
    /// Initial per-server inter-query delay (0 = as fast as possible
    /// until the first refusal teaches us better).
    pub initial_delay: Duration,
    /// Ceiling on the per-server delay.
    pub max_delay: Duration,
    /// Multiplicative back-off factor applied on each refusal.
    pub backoff: f64,
    /// Pause before retrying a failed query (lets penalty windows pass).
    pub retry_pause: Duration,
    /// Client timeouts.
    pub client: WhoisClient,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            workers: 4,
            retries: 3,
            initial_delay: Duration::ZERO,
            max_delay: Duration::from_millis(200),
            backoff: 2.0,
            retry_pause: Duration::from_millis(40),
            client: WhoisClient::default(),
        }
    }
}

/// Outcome for one domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrawlStatus {
    /// Thin and thick records both fetched.
    Full,
    /// Thin record only (referral missing/unresolvable, or the registrar
    /// kept failing).
    ThinOnly,
    /// The registry reported no match (expired since the zone snapshot).
    NoMatch,
    /// Even the thin record could not be fetched.
    Failed,
}

/// One crawled domain.
#[derive(Clone, Debug)]
pub struct CrawlResult {
    /// The domain queried.
    pub domain: String,
    /// Thin record body, when fetched.
    pub thin: Option<String>,
    /// Thick record body, when fetched.
    pub thick: Option<String>,
    /// Outcome.
    pub status: CrawlStatus,
    /// Total queries issued for this domain (across retries).
    pub attempts: u32,
}

/// Aggregate crawl statistics.
#[derive(Clone, Debug, Default)]
pub struct CrawlReport {
    /// Per-domain results, in completion order.
    pub results: Vec<CrawlResult>,
    /// Inferred per-server sustainable delays at the end of the crawl.
    pub inferred_delays: HashMap<SocketAddr, Duration>,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl CrawlReport {
    /// Count of results with a given status.
    pub fn count(&self, status: CrawlStatus) -> usize {
        self.results.iter().filter(|r| r.status == status).count()
    }

    /// Fraction of domains with full (thin+thick) records — the paper
    /// achieved "a bit over 90%".
    pub fn coverage(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.count(CrawlStatus::Full) as f64 / self.results.len() as f64
    }

    /// Fraction of domains that failed outright (~7.5% in the paper).
    pub fn failure_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        (self.count(CrawlStatus::Failed) + self.count(CrawlStatus::ThinOnly)) as f64
            / self.results.len() as f64
    }
}

/// Per-server pacing state.
#[derive(Debug)]
struct Pacing {
    delay: Duration,
    next_allowed: Instant,
    refusals: u32,
}

/// The crawler.
pub struct Crawler {
    cfg: CrawlerConfig,
    registry: SocketAddr,
    /// Referral host name → address (the simulation's DNS).
    resolver: HashMap<String, SocketAddr>,
    pacing: Mutex<HashMap<SocketAddr, Pacing>>,
}

impl Crawler {
    /// Create a crawler against `registry`, resolving referral host
    /// names through `resolver`.
    pub fn new(
        registry: SocketAddr,
        resolver: HashMap<String, SocketAddr>,
        cfg: CrawlerConfig,
    ) -> Self {
        Crawler {
            cfg,
            registry,
            resolver,
            pacing: Mutex::new(HashMap::new()),
        }
    }

    /// Crawl all `domains`, returning per-domain results and the inferred
    /// per-server pacing.
    pub fn crawl(self: &Arc<Self>, domains: &[String]) -> CrawlReport {
        self.crawl_each(domains, |_| {})
    }

    /// [`crawl`](Self::crawl), invoking `on_result` on each result as it
    /// completes (on the collecting thread, while the crawl workers keep
    /// going) — the hook downstream pipeline stages attach to.
    pub fn crawl_each(
        self: &Arc<Self>,
        domains: &[String],
        mut on_result: impl FnMut(&CrawlResult),
    ) -> CrawlReport {
        let start = Instant::now();
        let (work_tx, work_rx) = channel::unbounded::<String>();
        let (result_tx, result_rx) = channel::unbounded::<CrawlResult>();
        for d in domains {
            work_tx.send(d.clone()).expect("queue open");
        }
        drop(work_tx);

        let workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|_| {
                let rx = work_rx.clone();
                let tx = result_tx.clone();
                let me = Arc::clone(self);
                std::thread::spawn(move || {
                    for domain in rx.iter() {
                        let result = me.crawl_one(&domain);
                        if tx.send(result).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        drop(result_tx);

        let mut results: Vec<CrawlResult> = Vec::with_capacity(domains.len());
        for result in result_rx.iter() {
            on_result(&result);
            results.push(result);
        }
        for w in workers {
            let _ = w.join();
        }

        let inferred_delays = self
            .pacing
            .lock()
            .iter()
            .map(|(addr, p)| (*addr, p.delay))
            .collect();
        CrawlReport {
            results,
            inferred_delays,
            elapsed: start.elapsed(),
        }
    }

    /// Crawl one domain: thin, referral, thick.
    fn crawl_one(&self, domain: &str) -> CrawlResult {
        let mut attempts = 0u32;

        // Step 1: thin record from the registry.
        let thin = match self.query_with_retries(self.registry, domain, &mut attempts) {
            QueryOutcome::Record(body) => body,
            QueryOutcome::NoMatch => {
                return CrawlResult {
                    domain: domain.to_string(),
                    thin: None,
                    thick: None,
                    status: CrawlStatus::NoMatch,
                    attempts,
                }
            }
            QueryOutcome::Failed => {
                return CrawlResult {
                    domain: domain.to_string(),
                    thin: None,
                    thick: None,
                    status: CrawlStatus::Failed,
                    attempts,
                }
            }
        };

        // Step 2: resolve the referral.
        let Some(host) = proto::referral_server(&thin) else {
            return CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: None,
                status: CrawlStatus::ThinOnly,
                attempts,
            };
        };
        let Some(&addr) = self.resolver.get(&host) else {
            return CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: None,
                status: CrawlStatus::ThinOnly,
                attempts,
            };
        };

        // Step 3: thick record from the registrar.
        match self.query_with_retries(addr, domain, &mut attempts) {
            QueryOutcome::Record(body) => CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: Some(body),
                status: CrawlStatus::Full,
                attempts,
            },
            _ => CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: None,
                status: CrawlStatus::ThinOnly,
                attempts,
            },
        }
    }

    fn query_with_retries(
        &self,
        server: SocketAddr,
        domain: &str,
        attempts: &mut u32,
    ) -> QueryOutcome {
        for attempt in 0..self.cfg.retries.max(1) {
            self.reserve_slot(server);
            *attempts += 1;
            let reply = self.cfg.client.query(server, domain);
            match reply {
                Ok(body) => match proto::classify_reply(&body) {
                    ReplyKind::Record => {
                        self.note_success(server);
                        return QueryOutcome::Record(body);
                    }
                    ReplyKind::NoMatch => {
                        self.note_success(server);
                        return QueryOutcome::NoMatch;
                    }
                    ReplyKind::RateLimited | ReplyKind::Empty => {
                        // The §4.1 inference: silence or an explicit error
                        // both mean "you asked too fast".
                        self.note_refusal(server);
                    }
                    ReplyKind::Other => {
                        // Garbled reply: not a pacing signal; plain retry.
                    }
                },
                Err(_) => {
                    self.note_refusal(server);
                }
            }
            if attempt + 1 < self.cfg.retries {
                std::thread::sleep(self.cfg.retry_pause);
            }
        }
        QueryOutcome::Failed
    }

    /// Block until this worker may query `server`, honouring the shared
    /// per-server pacing.
    fn reserve_slot(&self, server: SocketAddr) {
        loop {
            let wait = {
                let mut pacing = self.pacing.lock();
                let p = pacing.entry(server).or_insert_with(|| Pacing {
                    delay: self.cfg.initial_delay,
                    next_allowed: Instant::now(),
                    refusals: 0,
                });
                let now = Instant::now();
                if p.next_allowed <= now {
                    p.next_allowed = now + p.delay;
                    None
                } else {
                    Some(p.next_allowed - now)
                }
            };
            match wait {
                None => return,
                Some(d) => std::thread::sleep(d.min(Duration::from_millis(10))),
            }
        }
    }

    /// A refusal teaches us the server's limit: back off multiplicatively.
    fn note_refusal(&self, server: SocketAddr) {
        let mut pacing = self.pacing.lock();
        if let Some(p) = pacing.get_mut(&server) {
            p.refusals += 1;
            let current = p.delay.max(Duration::from_millis(1));
            let next = current.mul_f64(self.cfg.backoff).min(self.cfg.max_delay);
            p.delay = next;
            // Also push the next slot out so the penalty window can pass.
            p.next_allowed = Instant::now() + self.cfg.retry_pause;
        }
    }

    /// Successes leave pacing alone — "subsequently querying well under
    /// this limit" means we do not creep back up.
    fn note_success(&self, _server: SocketAddr) {}

    /// Refusals observed per server (for reporting).
    pub fn refusals(&self) -> HashMap<SocketAddr, u32> {
        self.pacing
            .lock()
            .iter()
            .map(|(a, p)| (*a, p.refusals))
            .collect()
    }
}

enum QueryOutcome {
    Record(String),
    NoMatch,
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limiter::RateLimitConfig;
    use crate::server::{ServerConfig, WhoisServer};
    use crate::store::InMemoryStore;

    /// Build a mini `com` ecosystem: a thin registry plus one registrar.
    fn ecosystem(
        n: usize,
        registrar_cfg: ServerConfig,
    ) -> (
        WhoisServer,
        WhoisServer,
        Vec<String>,
        HashMap<String, SocketAddr>,
    ) {
        let mut thin = InMemoryStore::new();
        let mut thick = InMemoryStore::new();
        let mut domains = Vec::new();
        for i in 0..n {
            let d = format!("domain{i}.com");
            thin.insert(
                &d,
                format!(
                    "   Domain Name: {}\n   Registrar: TESTREG\n   Whois Server: whois.testreg.example\n",
                    d.to_uppercase()
                ),
            );
            thick.insert(
                &d,
                format!("Domain Name: {d}\nRegistrar: TestReg\nRegistrant Name: Owner {i}\n"),
            );
            domains.push(d);
        }
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let registrar = WhoisServer::start(thick, registrar_cfg).unwrap();
        let mut resolver = HashMap::new();
        resolver.insert("whois.testreg.example".to_string(), registrar.addr());
        (registry, registrar, domains, resolver)
    }

    #[test]
    fn full_crawl_without_limits() {
        let (registry, _registrar, domains, resolver) = ecosystem(20, ServerConfig::default());
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig::default(),
        ));
        let report = crawler.crawl(&domains);
        assert_eq!(report.results.len(), 20);
        assert_eq!(report.count(CrawlStatus::Full), 20);
        assert!((report.coverage() - 1.0).abs() < 1e-9);
        for r in &report.results {
            assert!(r.thick.as_deref().unwrap().contains("Registrant Name"));
        }
    }

    #[test]
    fn crawler_infers_rate_limit_and_still_covers() {
        // A tight limiter: burst 4, 100 q/s sustained, 30 ms penalty.
        let cfg = ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 4,
                per_second: 100.0,
                penalty: Duration::from_millis(30),
            },
            ..Default::default()
        };
        let (registry, registrar, domains, resolver) = ecosystem(40, cfg);
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                workers: 4,
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&domains);
        assert!(
            report.coverage() > 0.9,
            "coverage {} with rate limiting",
            report.coverage()
        );
        // The crawler must have slowed itself down for the registrar.
        let delay = report.inferred_delays[&registrar.addr()];
        assert!(
            delay >= Duration::from_millis(2),
            "inferred delay {delay:?} should have backed off"
        );
        // And the server did refuse some queries along the way.
        assert!(crawler.refusals()[&registrar.addr()] > 0);
    }

    #[test]
    fn no_match_domains_are_reported() {
        let (registry, _registrar, mut domains, resolver) = ecosystem(5, ServerConfig::default());
        domains.push("expired-since-snapshot.com".to_string());
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig::default(),
        ));
        let report = crawler.crawl(&domains);
        assert_eq!(report.count(CrawlStatus::NoMatch), 1);
        assert_eq!(report.count(CrawlStatus::Full), 5);
    }

    #[test]
    fn unresolvable_referral_leaves_thin_only() {
        let mut thin = InMemoryStore::new();
        thin.insert(
            "orphan.com",
            "   Whois Server: whois.unknown-registrar.example\n   Domain Name: ORPHAN.COM\n".into(),
        );
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            HashMap::new(),
            CrawlerConfig::default(),
        ));
        let report = crawler.crawl(&["orphan.com".to_string()]);
        assert_eq!(report.count(CrawlStatus::ThinOnly), 1);
        assert!(report.results[0].thin.is_some());
    }

    #[test]
    fn dead_registrar_fails_after_retries() {
        let mut thin = InMemoryStore::new();
        thin.insert(
            "deadend.com",
            "   Whois Server: whois.dead.example\n   Domain Name: DEADEND.COM\n".into(),
        );
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let mut resolver = HashMap::new();
        // Points at a port nobody listens on.
        resolver.insert(
            "whois.dead.example".to_string(),
            "127.0.0.1:1".parse().unwrap(),
        );
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                retry_pause: Duration::from_millis(1),
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&["deadend.com".to_string()]);
        assert_eq!(report.count(CrawlStatus::ThinOnly), 1);
        let r = &report.results[0];
        assert!(
            r.attempts >= 4,
            "1 thin + 3 thick attempts, got {}",
            r.attempts
        );
    }

    #[test]
    fn faulty_registrar_costs_retries_but_mostly_succeeds() {
        let cfg = ServerConfig {
            faults: crate::fault::FaultConfig {
                drop_chance: 0.2,
                empty_chance: 0.1,
                ..Default::default()
            },
            fault_seed: 99,
            ..Default::default()
        };
        let (registry, _registrar, domains, resolver) = ecosystem(30, cfg);
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                retry_pause: Duration::from_millis(2),
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&domains);
        assert!(report.coverage() > 0.8, "coverage {}", report.coverage());
        let total_attempts: u32 = report.results.iter().map(|r| r.attempts).sum();
        assert!(
            total_attempts > 60,
            "faults should force retries: {total_attempts} attempts for 30 domains"
        );
    }
}
