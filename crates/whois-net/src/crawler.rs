//! The two-step WHOIS crawler with dynamic rate-limit inference (§4.1).
//!
//! For each `com` domain the crawler first queries the registry for the
//! thin record, extracts the sponsoring registrar's WHOIS server from the
//! `Whois Server:` referral, and then queries that server for the thick
//! record. Rate limits are "rarely published publicly", so the crawler
//! infers them: it tracks its query pacing per server, and "when a given
//! server stops responding with valid data, [it] infer[s] that [the]
//! query rate was the culprit", records the limit, and subsequently
//! queries well under it (multiplicative back-off on the per-server
//! inter-query delay). Every query is retried up to three times before
//! the domain is marked failed.
//!
//! On top of the paper's retry/backoff, the crawler carries the
//! fault-tolerance layer a weeks-long crawl needs in practice:
//!
//! * **Circuit breakers** ([`crate::breaker`]) — per-endpoint
//!   closed→open→half-open gating on consecutive transport failures,
//!   with per-endpoint failure/latency accounting in the report.
//! * **Salvage passes** — after the main pass, domains that ended
//!   `Failed`/`ThinOnly` are re-queued up to
//!   [`salvage_passes`](CrawlerConfig::salvage_passes) times; a whole
//!   fresh pass (fresh retry budget, later in time, breakers warmed)
//!   recovers most of what a burst of faults took.
//! * **Cancellation** — [`Crawler::cancel`] stops a crawl at the next
//!   domain boundary; in-flight domains finish and are reported.
//! * **Resumable crawls** — [`Crawler::crawl_resumable`] journals every
//!   completed domain to a [`CrawlJournal`] and skips already-journaled
//!   domains on restart, so a killed crawl resumes without re-querying.

use crate::breaker::{BreakerConfig, KeyedBreaker};
use crate::client::WhoisClient;
use crate::journal::CrawlJournal;
use crate::proto::{self, ReplyKind};
use crossbeam::channel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_store::RecordStore;

/// Crawler configuration.
#[derive(Clone, Debug)]
pub struct CrawlerConfig {
    /// Parallel worker threads ("we use multiple servers to provide for
    /// parallel access").
    pub workers: usize,
    /// Attempts per query before marking it failed (the paper used 3).
    pub retries: usize,
    /// Initial per-server inter-query delay (0 = as fast as possible
    /// until the first refusal teaches us better).
    pub initial_delay: Duration,
    /// Ceiling on the per-server delay.
    pub max_delay: Duration,
    /// Multiplicative back-off factor applied on each refusal.
    pub backoff: f64,
    /// Pause before retrying a failed query (lets penalty windows pass).
    pub retry_pause: Duration,
    /// Client timeouts.
    pub client: WhoisClient,
    /// Per-endpoint circuit breakers (`None` = disabled).
    pub breaker: Option<BreakerConfig>,
    /// Extra whole-domain passes over `Failed`/`ThinOnly` results after
    /// the main pass (0 = the paper's single pass).
    pub salvage_passes: usize,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            workers: 4,
            retries: 3,
            initial_delay: Duration::ZERO,
            max_delay: Duration::from_millis(200),
            backoff: 2.0,
            retry_pause: Duration::from_millis(40),
            client: WhoisClient::default(),
            breaker: None,
            salvage_passes: 0,
        }
    }
}

/// Outcome for one domain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlStatus {
    /// Thin and thick records both fetched.
    Full,
    /// Thin record only (referral missing/unresolvable, or the registrar
    /// kept failing).
    ThinOnly,
    /// The registry reported no match (expired since the zone snapshot).
    NoMatch,
    /// Even the thin record could not be fetched.
    Failed,
}

impl CrawlStatus {
    /// Whether a salvage pass could improve on this outcome.
    fn retryable(&self) -> bool {
        matches!(self, CrawlStatus::Failed | CrawlStatus::ThinOnly)
    }

    /// Preference order when merging passes (higher is better).
    fn rank(&self) -> u8 {
        match self {
            CrawlStatus::Full => 3,
            CrawlStatus::NoMatch => 2,
            CrawlStatus::ThinOnly => 1,
            CrawlStatus::Failed => 0,
        }
    }
}

/// One crawled domain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlResult {
    /// The domain queried.
    pub domain: String,
    /// Thin record body, when fetched.
    pub thin: Option<String>,
    /// Thick record body, when fetched.
    pub thick: Option<String>,
    /// Outcome.
    pub status: CrawlStatus,
    /// Total queries issued for this domain (across retries and salvage
    /// passes).
    pub attempts: u32,
}

impl CrawlResult {
    /// Merge a salvage-pass result into an earlier one: the better
    /// status wins, attempts accumulate.
    fn merge(self, later: CrawlResult) -> CrawlResult {
        let attempts = self.attempts + later.attempts;
        let mut best = if later.status.rank() >= self.status.rank() {
            later
        } else {
            self
        };
        best.attempts = attempts;
        best
    }
}

/// Transport-level accounting for one WHOIS endpoint across a crawl.
#[derive(Clone, Debug, Default)]
pub struct EndpointStats {
    /// Queries actually sent (breaker rejections excluded).
    pub queries: u64,
    /// Transport failures: connect/read errors and empty replies.
    pub failures: u64,
    /// Times the endpoint's breaker tripped open.
    pub breaker_trips: u64,
    /// Acquires the breaker rejected (each cost the caller a bounded
    /// wait, not an attempt).
    pub breaker_rejections: u64,
    /// Summed wall-clock latency of sent queries.
    pub total_latency: Duration,
}

impl EndpointStats {
    /// Mean per-query latency. Computed in nanoseconds with u128
    /// arithmetic — a weeks-long crawl can push `queries` past `u32`,
    /// where `Duration / u32` would truncate the divisor.
    pub fn mean_latency(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.total_latency.as_nanos() / self.queries as u128) as u64)
        }
    }
}

/// Aggregate crawl statistics.
#[derive(Clone, Debug, Default)]
pub struct CrawlReport {
    /// Per-domain results, in completion order ([`Crawler::crawl_resumable`]
    /// reorders to input order so resumed and uninterrupted runs compare
    /// equal).
    pub results: Vec<CrawlResult>,
    /// Inferred per-server sustainable delays at the end of the crawl.
    pub inferred_delays: HashMap<SocketAddr, Duration>,
    /// Per-endpoint transport accounting.
    pub endpoints: HashMap<SocketAddr, EndpointStats>,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl CrawlReport {
    /// Count of results with a given status.
    pub fn count(&self, status: CrawlStatus) -> usize {
        self.results.iter().filter(|r| r.status == status).count()
    }

    /// Fraction of domains with full (thin+thick) records — the paper
    /// achieved "a bit over 90%".
    pub fn coverage(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.count(CrawlStatus::Full) as f64 / self.results.len() as f64
    }

    /// Fraction of domains that failed outright (~7.5% in the paper).
    pub fn failure_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        (self.count(CrawlStatus::Failed) + self.count(CrawlStatus::ThinOnly)) as f64
            / self.results.len() as f64
    }

    /// A canonical, timing-free rendering of the per-domain outcomes:
    /// one line per result, sorted by domain, with body content hashed.
    /// Two crawls of the same corpus under the same fault seed must
    /// produce byte-identical summaries — the determinism the fault
    /// tests assert.
    pub fn canonical_summary(&self) -> String {
        fn fnv(s: Option<&str>) -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in s.unwrap_or("\u{0}none").as_bytes() {
                h = (h ^ *b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            h
        }
        let mut lines: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{} {:?} attempts={} thin={:016x} thick={:016x}",
                    r.domain,
                    r.status,
                    r.attempts,
                    fnv(r.thin.as_deref()),
                    fnv(r.thick.as_deref())
                )
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

/// Per-server pacing state.
#[derive(Debug)]
struct Pacing {
    delay: Duration,
    next_allowed: Instant,
    refusals: u32,
}

/// The crawler.
pub struct Crawler {
    cfg: CrawlerConfig,
    registry: SocketAddr,
    /// Referral host name → address (the simulation's DNS).
    resolver: HashMap<String, SocketAddr>,
    pacing: Mutex<HashMap<SocketAddr, Pacing>>,
    breakers: Option<Mutex<KeyedBreaker<SocketAddr>>>,
    endpoints: Mutex<HashMap<SocketAddr, EndpointStats>>,
    cancelled: AtomicBool,
}

impl Crawler {
    /// Create a crawler against `registry`, resolving referral host
    /// names through `resolver`.
    pub fn new(
        registry: SocketAddr,
        resolver: HashMap<String, SocketAddr>,
        cfg: CrawlerConfig,
    ) -> Self {
        Crawler {
            breakers: cfg.breaker.map(|b| Mutex::new(KeyedBreaker::new(b))),
            cfg,
            registry,
            resolver,
            pacing: Mutex::new(HashMap::new()),
            endpoints: Mutex::new(HashMap::new()),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Ask a running crawl to stop at the next domain boundary.
    /// In-flight domains complete (and are reported/journaled); queued
    /// domains are discarded. Cleared when the next crawl starts.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether a cancel has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Crawl all `domains`, returning per-domain results and the inferred
    /// per-server pacing.
    pub fn crawl(self: &Arc<Self>, domains: &[String]) -> CrawlReport {
        self.crawl_each(domains, |_| {})
    }

    /// [`crawl`](Self::crawl), invoking `on_result` on each result as it
    /// completes (on the collecting thread, while the crawl workers keep
    /// going) — the hook downstream pipeline stages attach to.
    pub fn crawl_each(
        self: &Arc<Self>,
        domains: &[String],
        mut on_result: impl FnMut(&CrawlResult),
    ) -> CrawlReport {
        self.cancelled.store(false, Ordering::SeqCst);
        let start = Instant::now();
        // Work items carry their salvage pass number so re-queued
        // domains stop after `salvage_passes` extra rounds.
        let (work_tx, work_rx) = channel::unbounded::<(String, usize)>();
        let (result_tx, result_rx) = channel::unbounded::<(CrawlResult, usize)>();
        for d in domains {
            work_tx.send((d.clone(), 0)).expect("queue open");
        }

        let workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|_| {
                let rx = work_rx.clone();
                let tx = result_tx.clone();
                let me = Arc::clone(self);
                std::thread::spawn(move || {
                    for (domain, pass) in rx.iter() {
                        if me.is_cancelled() {
                            break;
                        }
                        let result = me.crawl_one(&domain);
                        if tx.send((result, pass)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        drop(result_tx);
        drop(work_rx);

        // Collector: finalize results, re-queue salvage candidates. The
        // work sender is dropped once nothing is outstanding (or on
        // cancel), which lets the workers drain and exit.
        let mut work_tx = Some(work_tx);
        let mut outstanding = domains.len();
        // Nothing queued (empty input, or a resumed crawl that is
        // already complete): no result will ever arrive, so drop the
        // sender now or the workers and this collector deadlock.
        if outstanding == 0 {
            work_tx = None;
        }
        let mut partial: HashMap<String, CrawlResult> = HashMap::new();
        let mut results: Vec<CrawlResult> = Vec::with_capacity(domains.len());
        for (result, pass) in result_rx.iter() {
            let merged = match partial.remove(&result.domain) {
                Some(earlier) => earlier.merge(result),
                None => result,
            };
            let salvageable =
                merged.status.retryable() && pass < self.cfg.salvage_passes && !self.is_cancelled();
            if salvageable {
                if let Some(tx) = &work_tx {
                    if tx.send((merged.domain.clone(), pass + 1)).is_ok() {
                        partial.insert(merged.domain.clone(), merged);
                        continue;
                    }
                }
            }
            on_result(&merged);
            results.push(merged);
            outstanding -= 1;
            if outstanding == 0 || self.is_cancelled() {
                work_tx = None;
            }
        }
        drop(work_tx);
        for w in workers {
            let _ = w.join();
        }
        // A cancel can strand re-queued domains; their best-so-far
        // results still count.
        for (_, r) in partial {
            on_result(&r);
            results.push(r);
        }

        let inferred_delays = self
            .pacing
            .lock()
            .iter()
            .map(|(addr, p)| (*addr, p.delay))
            .collect();
        CrawlReport {
            results,
            inferred_delays,
            endpoints: self.endpoints.lock().clone(),
            elapsed: start.elapsed(),
        }
    }

    /// Crash-safe crawl: journal every completed domain to `journal`,
    /// skip domains the journal already has, and return a report over
    /// all of `domains` (journaled + freshly crawled), in input order.
    ///
    /// Killing the process mid-crawl and calling `crawl_resumable` again
    /// with the same journal path yields a final report identical to an
    /// uninterrupted run, with zero re-queries of journaled domains.
    ///
    /// Domains are matched case-insensitively (the journal's semantics)
    /// and duplicates within `domains` are crawled once; every input
    /// occurrence still gets a report entry. If journaling itself fails,
    /// the crawl is cancelled — continuing would burn queries on
    /// results the journal can no longer record — and the error is
    /// returned.
    pub fn crawl_resumable(
        self: &Arc<Self>,
        domains: &[String],
        journal: &mut CrawlJournal,
    ) -> std::io::Result<CrawlReport> {
        let mut queued = HashSet::new();
        let remaining: Vec<String> = domains
            .iter()
            .filter(|d| !journal.contains(d) && queued.insert(d.to_lowercase()))
            .cloned()
            .collect();
        let mut append_err = None;
        let mut report = self.crawl_each(&remaining, |r| {
            if append_err.is_none() {
                if let Err(e) = journal.append(r) {
                    append_err = Some(e);
                    self.cancel();
                }
            }
        });
        if let Some(e) = append_err {
            return Err(e);
        }
        let by_domain: HashMap<String, &CrawlResult> = journal
            .results()
            .iter()
            .map(|r| (r.domain.to_lowercase(), r))
            .collect();
        report.results = domains
            .iter()
            .filter_map(|d| by_domain.get(&d.to_lowercase()).map(|&r| r.clone()))
            .collect();
        Ok(report)
    }

    /// [`crawl`](Self::crawl), sinking each fetched body into a
    /// [`RecordStore`] as it completes: the thick record when the
    /// referral step succeeded, else the thin record. Raw bodies are
    /// generation-free in the store, so everything persisted here
    /// survives model swaps and is parseable by any future model.
    ///
    /// Store write failures are counted, not fatal — a crawl burns
    /// upstream query budget and should not die because one disk append
    /// failed; the report and the sink count let the caller decide.
    /// Returns the report and the number of bodies newly persisted
    /// (identical re-crawls dedup to zero).
    pub fn crawl_into_store(
        self: &Arc<Self>,
        domains: &[String],
        store: &RecordStore,
    ) -> (CrawlReport, u64) {
        let mut sunk = 0u64;
        let report = self.crawl_each(domains, |r| {
            if let Some(body) = r.thick.as_deref().or(r.thin.as_deref()) {
                if matches!(store.put_raw(&r.domain, body), Ok(true)) {
                    sunk += 1;
                }
            }
        });
        (report, sunk)
    }

    /// Crawl one domain: thin, referral, thick.
    fn crawl_one(&self, domain: &str) -> CrawlResult {
        let mut attempts = 0u32;

        // Step 1: thin record from the registry.
        let thin = match self.query_with_retries(self.registry, domain, &mut attempts) {
            QueryOutcome::Record(body) => body,
            QueryOutcome::NoMatch => {
                return CrawlResult {
                    domain: domain.to_string(),
                    thin: None,
                    thick: None,
                    status: CrawlStatus::NoMatch,
                    attempts,
                }
            }
            QueryOutcome::Failed => {
                return CrawlResult {
                    domain: domain.to_string(),
                    thin: None,
                    thick: None,
                    status: CrawlStatus::Failed,
                    attempts,
                }
            }
        };

        // Step 2: resolve the referral.
        let Some(host) = proto::referral_server(&thin) else {
            return CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: None,
                status: CrawlStatus::ThinOnly,
                attempts,
            };
        };
        let Some(&addr) = self.resolver.get(&host) else {
            return CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: None,
                status: CrawlStatus::ThinOnly,
                attempts,
            };
        };

        // Step 3: thick record from the registrar.
        match self.query_with_retries(addr, domain, &mut attempts) {
            QueryOutcome::Record(body) => CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: Some(body),
                status: CrawlStatus::Full,
                attempts,
            },
            _ => CrawlResult {
                domain: domain.to_string(),
                thin: Some(thin),
                thick: None,
                status: CrawlStatus::ThinOnly,
                attempts,
            },
        }
    }

    fn query_with_retries(
        &self,
        server: SocketAddr,
        domain: &str,
        attempts: &mut u32,
    ) -> QueryOutcome {
        for attempt in 0..self.cfg.retries.max(1) {
            self.breaker_admit(server);
            self.reserve_slot(server);
            *attempts += 1;
            let sent = Instant::now();
            let reply = self.cfg.client.query(server, domain);
            let latency = sent.elapsed();
            {
                let mut endpoints = self.endpoints.lock();
                let e = endpoints.entry(server).or_default();
                e.queries += 1;
                e.total_latency += latency;
            }
            match reply {
                Ok(body) => match proto::classify_reply(&body) {
                    ReplyKind::Record => {
                        self.note_success(server);
                        self.breaker_result(server, true);
                        return QueryOutcome::Record(body);
                    }
                    ReplyKind::NoMatch => {
                        self.note_success(server);
                        self.breaker_result(server, true);
                        return QueryOutcome::NoMatch;
                    }
                    ReplyKind::RateLimited => {
                        // An explicit refusal: the server is alive (the
                        // breaker hears success) but we asked too fast
                        // (§4.1 pacing inference backs off).
                        self.note_refusal(server);
                        self.breaker_result(server, true);
                    }
                    ReplyKind::Empty => {
                        // Silence: a pacing signal for §4.1 *and* a
                        // transport failure for the breaker — a dead or
                        // banning server looks exactly like this.
                        self.note_refusal(server);
                        self.breaker_result(server, false);
                    }
                    ReplyKind::Other => {
                        // Garbled reply: not a pacing signal; the server
                        // is alive. Plain retry.
                        self.breaker_result(server, true);
                    }
                },
                Err(_) => {
                    self.note_refusal(server);
                    self.breaker_result(server, false);
                }
            }
            if attempt + 1 < self.cfg.retries {
                std::thread::sleep(self.cfg.retry_pause);
            }
        }
        QueryOutcome::Failed
    }

    /// Wait until the endpoint's breaker admits a request. The wait is
    /// bounded (two cooldowns): past that, the query proceeds anyway —
    /// the breaker shapes pacing toward sick endpoints, while giving up
    /// on a domain remains the retry budget's decision. Keeping
    /// admission wait-based (rather than failing the attempt) is what
    /// keeps per-domain outcomes independent of how *other* domains'
    /// failures interleaved, so seeded fault runs stay reproducible.
    fn breaker_admit(&self, server: SocketAddr) {
        let Some(breakers) = &self.breakers else {
            return;
        };
        let cap = self
            .cfg
            .breaker
            .map(|b| b.cooldown * 2)
            .unwrap_or(Duration::ZERO)
            .max(Duration::from_millis(20));
        let mut waited = Duration::ZERO;
        loop {
            let decision = breakers.lock().try_acquire(&server, Instant::now());
            match decision {
                Ok(()) => return,
                Err(_) if waited >= cap => {
                    return;
                }
                Err(wait) => {
                    self.endpoints
                        .lock()
                        .entry(server)
                        .or_default()
                        .breaker_rejections += 1;
                    let step = wait
                        .min(Duration::from_millis(5))
                        .max(Duration::from_micros(500));
                    std::thread::sleep(step);
                    waited += step;
                }
            }
        }
    }

    /// Feed a query outcome to the endpoint's breaker and accounting.
    fn breaker_result(&self, server: SocketAddr, success: bool) {
        if !success {
            self.endpoints.lock().entry(server).or_default().failures += 1;
        }
        let Some(breakers) = &self.breakers else {
            return;
        };
        let tripped = {
            let mut breakers = breakers.lock();
            if success {
                breakers.record_success(&server);
                false
            } else {
                breakers.record_failure(&server, Instant::now())
            }
        };
        if tripped {
            self.endpoints
                .lock()
                .entry(server)
                .or_default()
                .breaker_trips += 1;
        }
    }

    /// Block until this worker may query `server`, honouring the shared
    /// per-server pacing.
    fn reserve_slot(&self, server: SocketAddr) {
        loop {
            let wait = {
                let mut pacing = self.pacing.lock();
                let p = pacing.entry(server).or_insert_with(|| Pacing {
                    delay: self.cfg.initial_delay,
                    next_allowed: Instant::now(),
                    refusals: 0,
                });
                let now = Instant::now();
                if p.next_allowed <= now {
                    p.next_allowed = now + p.delay;
                    None
                } else {
                    Some(p.next_allowed - now)
                }
            };
            match wait {
                None => return,
                Some(d) => std::thread::sleep(d.min(Duration::from_millis(10))),
            }
        }
    }

    /// A refusal teaches us the server's limit: back off multiplicatively.
    fn note_refusal(&self, server: SocketAddr) {
        let mut pacing = self.pacing.lock();
        if let Some(p) = pacing.get_mut(&server) {
            p.refusals += 1;
            let current = p.delay.max(Duration::from_millis(1));
            let next = current.mul_f64(self.cfg.backoff).min(self.cfg.max_delay);
            p.delay = next;
            // Also push the next slot out so the penalty window can pass.
            p.next_allowed = Instant::now() + self.cfg.retry_pause;
        }
    }

    /// Successes leave pacing alone — "subsequently querying well under
    /// this limit" means we do not creep back up.
    fn note_success(&self, _server: SocketAddr) {}

    /// Refusals observed per server (for reporting).
    pub fn refusals(&self) -> HashMap<SocketAddr, u32> {
        self.pacing
            .lock()
            .iter()
            .map(|(a, p)| (*a, p.refusals))
            .collect()
    }
}

enum QueryOutcome {
    Record(String),
    NoMatch,
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limiter::RateLimitConfig;
    use crate::server::{ServerConfig, WhoisServer};
    use crate::store::InMemoryStore;

    /// Build a mini `com` ecosystem: a thin registry plus one registrar.
    fn ecosystem(
        n: usize,
        registrar_cfg: ServerConfig,
    ) -> (
        WhoisServer,
        WhoisServer,
        Vec<String>,
        HashMap<String, SocketAddr>,
    ) {
        let mut thin = InMemoryStore::new();
        let mut thick = InMemoryStore::new();
        let mut domains = Vec::new();
        for i in 0..n {
            let d = format!("domain{i}.com");
            thin.insert(
                &d,
                format!(
                    "   Domain Name: {}\n   Registrar: TESTREG\n   Whois Server: whois.testreg.example\n",
                    d.to_uppercase()
                ),
            );
            thick.insert(
                &d,
                format!("Domain Name: {d}\nRegistrar: TestReg\nRegistrant Name: Owner {i}\n"),
            );
            domains.push(d);
        }
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let registrar = WhoisServer::start(thick, registrar_cfg).unwrap();
        let mut resolver = HashMap::new();
        resolver.insert("whois.testreg.example".to_string(), registrar.addr());
        (registry, registrar, domains, resolver)
    }

    #[test]
    fn full_crawl_without_limits() {
        let (registry, _registrar, domains, resolver) = ecosystem(20, ServerConfig::default());
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig::default(),
        ));
        let report = crawler.crawl(&domains);
        assert_eq!(report.results.len(), 20);
        assert_eq!(report.count(CrawlStatus::Full), 20);
        assert!((report.coverage() - 1.0).abs() < 1e-9);
        for r in &report.results {
            assert!(r.thick.as_deref().unwrap().contains("Registrant Name"));
        }
        // Endpoint accounting saw both servers, no failures.
        assert_eq!(report.endpoints.len(), 2);
        for stats in report.endpoints.values() {
            assert_eq!(stats.failures, 0);
            assert!(stats.queries >= 20);
            assert!(stats.mean_latency() > Duration::ZERO);
        }
    }

    #[test]
    fn crawler_infers_rate_limit_and_still_covers() {
        // A tight limiter: burst 4, 100 q/s sustained, 30 ms penalty.
        let cfg = ServerConfig {
            rate_limit: RateLimitConfig {
                burst: 4,
                per_second: 100.0,
                penalty: Duration::from_millis(30),
            },
            ..Default::default()
        };
        let (registry, registrar, domains, resolver) = ecosystem(40, cfg);
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                workers: 4,
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&domains);
        assert!(
            report.coverage() > 0.9,
            "coverage {} with rate limiting",
            report.coverage()
        );
        // The crawler must have slowed itself down for the registrar.
        let delay = report.inferred_delays[&registrar.addr()];
        assert!(
            delay >= Duration::from_millis(2),
            "inferred delay {delay:?} should have backed off"
        );
        // And the server did refuse some queries along the way.
        assert!(crawler.refusals()[&registrar.addr()] > 0);
    }

    #[test]
    fn empty_domain_list_returns_an_empty_report() {
        let (registry, _registrar, _domains, resolver) = ecosystem(1, ServerConfig::default());
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig::default(),
        ));
        // Run on a watchdog thread: a regression here deadlocks rather
        // than fails, so give it a deadline.
        let (tx, rx) = std::sync::mpsc::channel();
        let c = Arc::clone(&crawler);
        std::thread::spawn(move || {
            let _ = tx.send(c.crawl(&[]));
        });
        let report = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("crawl(&[]) must return, not deadlock");
        assert!(report.results.is_empty());
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn mean_latency_survives_huge_query_counts() {
        let stats = EndpointStats {
            queries: u32::MAX as u64 * 2,
            total_latency: Duration::from_secs(u32::MAX as u64 * 2 * 3),
            ..Default::default()
        };
        assert_eq!(stats.mean_latency(), Duration::from_secs(3));
    }

    #[test]
    fn no_match_domains_are_reported() {
        let (registry, _registrar, mut domains, resolver) = ecosystem(5, ServerConfig::default());
        domains.push("expired-since-snapshot.com".to_string());
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig::default(),
        ));
        let report = crawler.crawl(&domains);
        assert_eq!(report.count(CrawlStatus::NoMatch), 1);
        assert_eq!(report.count(CrawlStatus::Full), 5);
    }

    #[test]
    fn unresolvable_referral_leaves_thin_only() {
        let mut thin = InMemoryStore::new();
        thin.insert(
            "orphan.com",
            "   Whois Server: whois.unknown-registrar.example\n   Domain Name: ORPHAN.COM\n".into(),
        );
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            HashMap::new(),
            CrawlerConfig::default(),
        ));
        let report = crawler.crawl(&["orphan.com".to_string()]);
        assert_eq!(report.count(CrawlStatus::ThinOnly), 1);
        assert!(report.results[0].thin.is_some());
    }

    #[test]
    fn dead_registrar_fails_after_retries() {
        let mut thin = InMemoryStore::new();
        thin.insert(
            "deadend.com",
            "   Whois Server: whois.dead.example\n   Domain Name: DEADEND.COM\n".into(),
        );
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let mut resolver = HashMap::new();
        // Points at a port nobody listens on.
        resolver.insert(
            "whois.dead.example".to_string(),
            "127.0.0.1:1".parse().unwrap(),
        );
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                retry_pause: Duration::from_millis(1),
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&["deadend.com".to_string()]);
        assert_eq!(report.count(CrawlStatus::ThinOnly), 1);
        let r = &report.results[0];
        assert!(
            r.attempts >= 4,
            "1 thin + 3 thick attempts, got {}",
            r.attempts
        );
        // The dead endpoint's failures were accounted.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert_eq!(report.endpoints[&dead].failures, 3);
    }

    #[test]
    fn dead_registrar_with_breaker_still_terminates() {
        let mut thin = InMemoryStore::new();
        for i in 0..6 {
            thin.insert(
                &format!("dead{i}.com"),
                format!("   Whois Server: whois.dead.example\n   Domain Name: DEAD{i}.COM\n"),
            );
        }
        let registry = WhoisServer::start(thin, ServerConfig::default()).unwrap();
        let mut resolver = HashMap::new();
        resolver.insert(
            "whois.dead.example".to_string(),
            "127.0.0.1:1".parse().unwrap(),
        );
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                retry_pause: Duration::from_millis(1),
                breaker: Some(BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_millis(20),
                }),
                ..Default::default()
            },
        ));
        let domains: Vec<String> = (0..6).map(|i| format!("dead{i}.com")).collect();
        let report = crawler.crawl(&domains);
        assert_eq!(report.count(CrawlStatus::ThinOnly), 6);
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let stats = &report.endpoints[&dead];
        assert!(stats.breaker_trips >= 1, "breaker never tripped: {stats:?}");
        assert!(
            stats.breaker_rejections >= 1,
            "breaker never pushed back: {stats:?}"
        );
    }

    #[test]
    fn faulty_registrar_costs_retries_but_mostly_succeeds() {
        let cfg = ServerConfig {
            faults: crate::fault::FaultConfig {
                drop_chance: 0.2,
                empty_chance: 0.1,
                ..Default::default()
            },
            fault_seed: 99,
            ..Default::default()
        };
        let (registry, _registrar, domains, resolver) = ecosystem(30, cfg);
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                retry_pause: Duration::from_millis(2),
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&domains);
        assert!(report.coverage() > 0.8, "coverage {}", report.coverage());
        let total_attempts: u32 = report.results.iter().map(|r| r.attempts).sum();
        assert!(
            total_attempts > 60,
            "faults should force retries: {total_attempts} attempts for 30 domains"
        );
    }

    #[test]
    fn salvage_pass_recovers_scripted_failures() {
        use crate::fault::{FateSpec, FaultPlan};
        // domain0 drops every query of the first pass (2 queries × 3
        // retries... thin succeeds, thick drops 3×), then delivers.
        let plan = FaultPlan::new().script(
            "domain0.com",
            std::iter::repeat_n(FateSpec::Drop, 3).collect::<Vec<_>>(),
        );
        let cfg = ServerConfig {
            fault_plan: plan,
            ..Default::default()
        };
        let (registry, _registrar, domains, resolver) = ecosystem(4, cfg);
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                retry_pause: Duration::from_millis(1),
                salvage_passes: 1,
                ..Default::default()
            },
        ));
        let report = crawler.crawl(&domains);
        assert_eq!(
            report.count(CrawlStatus::Full),
            4,
            "salvage pass must recover the scripted failure: {:?}",
            report.results
        );
        let r = report
            .results
            .iter()
            .find(|r| r.domain == "domain0.com")
            .unwrap();
        assert!(
            r.attempts > 4,
            "merged attempts span both passes: {}",
            r.attempts
        );
    }

    #[test]
    fn cancel_stops_at_a_domain_boundary() {
        let (registry, _registrar, domains, resolver) = ecosystem(50, ServerConfig::default());
        let crawler = Arc::new(Crawler::new(
            registry.addr(),
            resolver,
            CrawlerConfig {
                workers: 1,
                ..Default::default()
            },
        ));
        let c2 = Arc::clone(&crawler);
        let mut seen = 0usize;
        let report = crawler.crawl_each(&domains, |_| {
            seen += 1;
            if seen == 10 {
                c2.cancel();
            }
        });
        assert!(
            report.results.len() < 50,
            "cancel must stop early, got {}",
            report.results.len()
        );
        assert!(report.results.len() >= 10);
        for r in &report.results {
            assert_eq!(r.status, CrawlStatus::Full, "completed domains are whole");
        }
        // The next crawl starts fresh.
        let report = crawler.crawl(&domains);
        assert_eq!(report.results.len(), 50);
    }

    #[test]
    fn canonical_summary_is_order_insensitive() {
        let a = CrawlReport {
            results: vec![
                CrawlResult {
                    domain: "b.com".into(),
                    thin: Some("t".into()),
                    thick: None,
                    status: CrawlStatus::ThinOnly,
                    attempts: 2,
                },
                CrawlResult {
                    domain: "a.com".into(),
                    thin: Some("t".into()),
                    thick: Some("T".into()),
                    status: CrawlStatus::Full,
                    attempts: 2,
                },
            ],
            ..Default::default()
        };
        let mut b = a.clone();
        b.results.reverse();
        b.elapsed = Duration::from_secs(5);
        assert_eq!(a.canonical_summary(), b.canonical_summary());
        assert!(a.canonical_summary().contains("a.com Full"));
    }
}
