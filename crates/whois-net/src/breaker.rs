//! Per-server circuit breakers for the crawler.
//!
//! A WHOIS server that stops answering (dead host, hard ban, network
//! partition) would otherwise eat a connect-timeout per query while the
//! crawler hammers it. The breaker is the classic three-state machine:
//!
//! * **Closed** — requests flow; consecutive transport failures are
//!   counted, and reaching the threshold trips the breaker.
//! * **Open** — requests are rejected until a cooldown expires.
//! * **Half-open** — one probe request is admitted; success closes the
//!   breaker, failure re-opens it for another cooldown.
//!
//! The crawler uses the breaker as *backpressure*, not abandonment: a
//! rejected acquire makes the caller wait out (a bounded slice of) the
//! cooldown and try again, so per-domain retry budgets — and therefore
//! the keyed fault determinism the tests rely on — are unaffected by
//! how other domains' failures happened to interleave. Abandoning a
//! domain remains the retry budget's job.

use std::collections::HashMap;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// Breaker parameters.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive transport failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow.
    Closed,
    /// Requests are rejected until the cooldown expires.
    Open,
    /// One probe is (or may be) in flight.
    HalfOpen,
}

#[derive(Clone, Copy, Debug)]
enum Inner {
    Closed { consecutive: u32 },
    Open { until: Instant },
    HalfOpen { probe_in_flight: bool },
}

/// One endpoint's breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Inner,
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Acquires rejected while open (or while a probe was in flight).
    pub rejections: u64,
}

impl CircuitBreaker {
    /// New breaker, closed.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            inner: Inner::Closed { consecutive: 0 },
            trips: 0,
            rejections: 0,
        }
    }

    /// The state as of `now` (an expired open window reads as half-open).
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.inner {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { until } if now < until => BreakerState::Open,
            Inner::Open { .. } | Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Try to admit a request at `now`. `Err` carries how long to wait
    /// before the next acquire can possibly succeed.
    pub fn try_acquire(&mut self, now: Instant) -> Result<(), Duration> {
        match self.inner {
            Inner::Closed { .. } => Ok(()),
            Inner::Open { until } => {
                if now >= until {
                    self.inner = Inner::HalfOpen {
                        probe_in_flight: true,
                    };
                    Ok(())
                } else {
                    self.rejections += 1;
                    Err(until - now)
                }
            }
            Inner::HalfOpen { probe_in_flight } => {
                if probe_in_flight {
                    self.rejections += 1;
                    Err(Duration::from_millis(1))
                } else {
                    self.inner = Inner::HalfOpen {
                        probe_in_flight: true,
                    };
                    Ok(())
                }
            }
        }
    }

    /// Record a successful request: the endpoint is healthy again.
    pub fn record_success(&mut self) {
        self.inner = Inner::Closed { consecutive: 0 };
    }

    /// Record a transport failure at `now`. Returns `true` when this
    /// failure tripped the breaker open.
    pub fn record_failure(&mut self, now: Instant) -> bool {
        match self.inner {
            Inner::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.failure_threshold {
                    self.trip(now);
                    true
                } else {
                    self.inner = Inner::Closed { consecutive };
                    false
                }
            }
            Inner::HalfOpen { .. } => {
                // The probe failed: back to open for another cooldown.
                self.trip(now);
                true
            }
            Inner::Open { until } => {
                // A request admitted before the trip finished late;
                // extend the window rather than double-count a trip.
                self.inner = Inner::Open {
                    until: until.max(now + self.cfg.cooldown),
                };
                false
            }
        }
    }

    fn trip(&mut self, now: Instant) {
        self.inner = Inner::Open {
            until: now + self.cfg.cooldown,
        };
        self.trips += 1;
    }
}

/// One breaker per key (per WHOIS endpoint), mirroring
/// [`KeyedRateLimiter`](crate::limiter::KeyedRateLimiter)'s shape.
#[derive(Clone, Debug)]
pub struct KeyedBreaker<K: Hash + Eq + Clone> {
    cfg: BreakerConfig,
    breakers: HashMap<K, CircuitBreaker>,
}

impl<K: Hash + Eq + Clone> KeyedBreaker<K> {
    /// New keyed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        KeyedBreaker {
            cfg,
            breakers: HashMap::new(),
        }
    }

    /// Try to admit a request for `key` at `now`.
    pub fn try_acquire(&mut self, key: &K, now: Instant) -> Result<(), Duration> {
        let cfg = self.cfg;
        self.breakers
            .entry(key.clone())
            .or_insert_with(|| CircuitBreaker::new(cfg))
            .try_acquire(now)
    }

    /// Record a success for `key`.
    pub fn record_success(&mut self, key: &K) {
        if let Some(b) = self.breakers.get_mut(key) {
            b.record_success();
        }
    }

    /// Record a failure for `key`; `true` when it tripped the breaker.
    pub fn record_failure(&mut self, key: &K, now: Instant) -> bool {
        let cfg = self.cfg;
        self.breakers
            .entry(key.clone())
            .or_insert_with(|| CircuitBreaker::new(cfg))
            .record_failure(now)
    }

    /// The breaker for `key`, if any requests have touched it.
    pub fn get(&self, key: &K) -> Option<&CircuitBreaker> {
        self.breakers.get(key)
    }

    /// Iterate over all tracked breakers.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &CircuitBreaker)> {
        self.breakers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg(3, 100));
        let t0 = Instant::now();
        assert!(!b.record_failure(t0));
        assert!(!b.record_failure(t0));
        assert!(b.record_failure(t0), "third consecutive failure trips");
        assert_eq!(b.state(t0), BreakerState::Open);
        assert_eq!(b.trips, 1);
        assert!(b.try_acquire(t0).is_err());
        assert_eq!(b.rejections, 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(cfg(3, 100));
        let t0 = Instant::now();
        b.record_failure(t0);
        b.record_failure(t0);
        b.record_success();
        b.record_failure(t0);
        b.record_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "count was reset");
        assert_eq!(b.trips, 0);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = CircuitBreaker::new(cfg(1, 50));
        let t0 = Instant::now();
        assert!(b.record_failure(t0));
        // Within the cooldown: rejected, with the remaining wait.
        let wait = b.try_acquire(t0 + Duration::from_millis(10)).unwrap_err();
        assert!(wait <= Duration::from_millis(40));
        // After the cooldown: one probe admitted, a second rejected.
        let t1 = t0 + Duration::from_millis(60);
        assert!(b.try_acquire(t1).is_ok());
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        assert!(b.try_acquire(t1).is_err(), "only one probe in flight");
        b.record_success();
        assert_eq!(b.state(t1), BreakerState::Closed);
        assert!(b.try_acquire(t1).is_ok());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(cfg(1, 50));
        let t0 = Instant::now();
        b.record_failure(t0);
        let t1 = t0 + Duration::from_millis(60);
        assert!(b.try_acquire(t1).is_ok());
        assert!(b.record_failure(t1), "failed probe re-trips");
        assert_eq!(b.state(t1), BreakerState::Open);
        assert_eq!(b.trips, 2);
        assert!(b.try_acquire(t1).is_err());
    }

    #[test]
    fn late_failure_while_open_extends_without_double_counting() {
        let mut b = CircuitBreaker::new(cfg(1, 50));
        let t0 = Instant::now();
        b.record_failure(t0);
        assert!(!b.record_failure(t0 + Duration::from_millis(20)));
        assert_eq!(b.trips, 1);
        // The window now runs from the late failure.
        assert!(b.try_acquire(t0 + Duration::from_millis(60)).is_err());
        assert!(b.try_acquire(t0 + Duration::from_millis(80)).is_ok());
    }

    #[test]
    fn keyed_breakers_are_independent() {
        let mut kb: KeyedBreaker<&str> = KeyedBreaker::new(cfg(1, 50));
        let t0 = Instant::now();
        assert!(kb.record_failure(&"a", t0));
        assert!(kb.try_acquire(&"a", t0).is_err());
        assert!(kb.try_acquire(&"b", t0).is_ok());
        kb.record_success(&"b");
        assert_eq!(kb.get(&"a").unwrap().trips, 1);
        assert_eq!(kb.get(&"b").unwrap().trips, 0);
        assert_eq!(kb.iter().count(), 2);
    }
}
