//! Per-connection state for the event-loop servers.
//!
//! An [`EventConn`] is the nonblocking shell around one accepted
//! socket: a pooled read-accumulation buffer, a queue of reply chunks
//! flushed with vectored writes, an explicit phase in the serving state
//! machine, and the activity timestamps the idle-deadline (slowloris)
//! guard needs. Protocol logic stays with the owning server — the shell
//! only moves bytes:
//!
//! ```text
//!           ┌────────── fill() drains socket → buf ──────────┐
//!           ▼                                                │
//!        Reading ──complete line──► (server decodes/queues) ─┤
//!           ▲                                                ▼
//!           │                                             Queued      (a worker owns the request)
//!           │                                                │ reply
//!        flush() == drained                                  ▼
//!           └─────────────────────────────────────────── Writing
//!                                                            │ close_after_flush
//!                                                            ▼
//!                                                        Draining → deregister + close
//! ```
//!
//! Reply chunks are reference-counted where the caller already has an
//! `Arc` (the parse daemon's cached reply lines) so queueing a reply to
//! a thousand connections shares one allocation.

use crate::event::Interest;
use bytes::{Bytes, BytesMut};
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// Where a connection is in its serving lifecycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ConnPhase {
    /// Accumulating request bytes; no request outstanding.
    Reading,
    /// A decoded request is on the worker queue; its reply will arrive
    /// through the completion channel.
    Queued,
    /// Unflushed reply bytes are queued on the socket.
    Writing,
    /// Final flush before close (`close_after_flush` connections that
    /// have emptied their queue but may still need the shutdown
    /// handshake observed).
    Draining,
}

/// One queued reply chunk.
#[derive(Clone, Debug)]
pub enum Chunk {
    /// A shared reply line (cached daemon replies): queueing is one
    /// refcount bump, not a copy.
    Shared(Arc<String>),
    /// Owned bytes (whois bodies, fault-injected garbage).
    Owned(Bytes),
    /// A static fragment (line terminators, canned error lines).
    Static(&'static [u8]),
}

impl Chunk {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Chunk::Shared(s) => s.as_bytes(),
            Chunk::Owned(b) => b,
            Chunk::Static(s) => s,
        }
    }
}

/// What [`EventConn::fill`] observed on the socket.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadStatus {
    /// Bytes appended to the accumulation buffer.
    pub bytes: usize,
    /// The peer half-closed (EOF after any buffered bytes).
    pub eof: bool,
}

/// Most slices handed to one vectored write. Past this the syscall
/// payoff flattens and the stack array stops being free.
const MAX_IOVEC: usize = 16;

/// The nonblocking shell around one accepted connection.
#[derive(Debug)]
pub struct EventConn {
    /// The accepted socket (nonblocking).
    pub stream: TcpStream,
    /// Peer address at accept time.
    pub peer: SocketAddr,
    /// The poller token this connection is registered under.
    pub token: u64,
    /// Serving phase.
    pub phase: ConnPhase,
    /// Read accumulation buffer (leased from the server's pool).
    pub buf: BytesMut,
    /// When the current read deadline expires (slowloris guard) or a
    /// scheduled action (fault stalls) fires. `None` = no deadline.
    pub deadline: Option<Instant>,
    /// Close once the write queue drains.
    pub close_after_flush: bool,
    out: VecDeque<Chunk>,
    /// Bytes of `out[0]` already written.
    head_written: usize,
    out_bytes: usize,
}

impl EventConn {
    /// Wrap an accepted stream. Sets nonblocking + nodelay (reply lines
    /// are latency-sensitive and tiny).
    pub fn new(stream: TcpStream, peer: SocketAddr, token: u64, buf: BytesMut) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(EventConn {
            stream,
            peer,
            token,
            phase: ConnPhase::Reading,
            buf,
            deadline: None,
            close_after_flush: false,
            out: VecDeque::new(),
            head_written: 0,
            out_bytes: 0,
        })
    }

    /// Drain the socket into the accumulation buffer until `WouldBlock`
    /// or EOF. `scratch` is the server's shared read chunk.
    pub fn fill(&mut self, scratch: &mut [u8]) -> io::Result<ReadStatus> {
        let mut status = ReadStatus::default();
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    status.eof = true;
                    return Ok(status);
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&scratch[..n]);
                    status.bytes += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(status),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Queue a reply chunk for writing.
    pub fn queue(&mut self, chunk: Chunk) {
        self.out_bytes += chunk.as_bytes().len();
        self.out.push_back(chunk);
    }

    /// Unflushed reply bytes.
    pub fn pending_out(&self) -> usize {
        self.out_bytes - self.head_written
    }

    /// Vectored flush of the queued chunks. Returns `true` once the
    /// queue is empty (flushed), `false` if the socket backpressured.
    pub fn flush(&mut self) -> io::Result<bool> {
        while !self.out.is_empty() {
            let mut slices: [IoSlice<'_>; MAX_IOVEC] = [IoSlice::new(&[]); MAX_IOVEC];
            let mut count = 0;
            for (i, chunk) in self.out.iter().take(MAX_IOVEC).enumerate() {
                let bytes = chunk.as_bytes();
                slices[i] = IoSlice::new(if i == 0 {
                    &bytes[self.head_written..]
                } else {
                    bytes
                });
                count = i + 1;
            }
            let written = match self.stream.write_vectored(&slices[..count]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.consume(written);
        }
        Ok(true)
    }

    /// Advance the queue past `written` flushed bytes.
    fn consume(&mut self, mut written: usize) {
        self.out_bytes -= written;
        while written > 0 {
            let head_len = self.out[0].as_bytes().len() - self.head_written;
            if written >= head_len {
                written -= head_len;
                self.head_written = 0;
                self.out.pop_front();
            } else {
                self.head_written += written;
                written = 0;
            }
        }
    }

    /// The poller interest this connection currently needs: writable
    /// while replies are queued, readable while the server would act on
    /// more request bytes.
    pub fn interest(&self) -> Interest {
        Interest {
            readable: matches!(self.phase, ConnPhase::Reading),
            writable: !self.out.is_empty(),
            edge: false,
        }
    }

    /// Hand the accumulation buffer back (for the pool) on close.
    pub fn take_buf(&mut self) -> BytesMut {
        std::mem::take(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn accepted_pair() -> (TcpStream, EventConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, peer) = listener.accept().unwrap();
        let conn = EventConn::new(server, peer, 1, BytesMut::with_capacity(256)).unwrap();
        (client, conn)
    }

    #[test]
    fn fill_accumulates_across_fragments() {
        let (mut client, mut conn) = accepted_pair();
        let mut scratch = [0u8; 64];
        client.write_all(b"exam").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let s = conn.fill(&mut scratch).unwrap();
        assert_eq!(s.bytes, 4);
        assert!(!s.eof);
        client.write_all(b"ple.com\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        conn.fill(&mut scratch).unwrap();
        assert_eq!(&conn.buf[..], b"example.com\r\n");
    }

    #[test]
    fn fill_reports_eof() {
        let (mut client, mut conn) = accepted_pair();
        client.write_all(b"bye").unwrap();
        drop(client);
        std::thread::sleep(Duration::from_millis(10));
        let mut scratch = [0u8; 64];
        let s = conn.fill(&mut scratch).unwrap();
        assert_eq!(s.bytes, 3);
        assert!(s.eof, "EOF is reported after the final bytes");
    }

    #[test]
    fn flush_writes_chunks_in_order_vectored() {
        let (mut client, mut conn) = accepted_pair();
        conn.queue(Chunk::Shared(Arc::new("{\"ok\":true}".to_string())));
        conn.queue(Chunk::Static(b"\n"));
        conn.queue(Chunk::Owned(Bytes::from(&b"tail"[..])));
        assert_eq!(conn.pending_out(), 16);
        assert!(conn.flush().unwrap());
        assert_eq!(conn.pending_out(), 0);
        drop(conn);
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert_eq!(got, "{\"ok\":true}\ntail");
    }

    #[test]
    fn flush_survives_backpressure_and_resumes() {
        let (client, mut conn) = accepted_pair();
        // A payload far beyond the socket buffers forces WouldBlock.
        let big = vec![b'x'; 4 << 20];
        conn.queue(Chunk::Owned(Bytes::from(big.clone())));
        conn.queue(Chunk::Static(b"END"));
        let mut done = conn.flush().unwrap();
        assert!(!done, "a 4MiB burst cannot fit the socket buffers");

        let reader = std::thread::spawn(move || {
            let mut client = client;
            let mut all = Vec::new();
            client.read_to_end(&mut all).unwrap();
            all
        });
        // Keep flushing as the reader drains.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !done && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            done = conn.flush().unwrap();
        }
        assert!(done, "flush completes once the peer drains");
        drop(conn);
        let all = reader.join().unwrap();
        assert_eq!(all.len(), big.len() + 3);
        assert_eq!(&all[all.len() - 3..], b"END");
        assert!(all[..all.len() - 3].iter().all(|&b| b == b'x'));
    }

    #[test]
    fn interest_tracks_phase_and_queue() {
        let (_client, mut conn) = accepted_pair();
        assert_eq!(conn.interest(), Interest::READ);
        conn.queue(Chunk::Static(b"x"));
        assert!(conn.interest().writable && conn.interest().readable);
        conn.phase = ConnPhase::Queued;
        assert!(!conn.interest().readable, "no reads while a job is queued");
        conn.flush().unwrap();
        assert!(!conn.interest().writable);
    }
}
