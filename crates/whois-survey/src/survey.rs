//! The survey accumulator (§6).

use crate::counter::Counter;
use crate::country;
use crate::privacy;
use std::collections::BTreeMap;
use whois_model::ParsedRecord;

/// One row of a per-year proportion series (Figure 4b).
#[derive(Clone, Debug, PartialEq)]
pub struct SurveyRow {
    /// Creation year.
    pub year: i32,
    /// Bucket name (country, `Private`, `Unknown`, `Other`).
    pub bucket: String,
    /// Proportion of that year's domains.
    pub proportion: f64,
}

/// Streaming aggregator over parsed records.
///
/// Mirrors the paper's §6 analysis: privacy-protected domains are
/// detected from the registrant identity and excluded from country
/// statistics ("the country of the registrant cannot be inferred");
/// records without a country count as `(Unknown)`.
#[derive(Clone, Debug, Default)]
pub struct Survey {
    /// Total records surveyed.
    pub total: u64,
    /// Registrant countries, all time (privacy-protected excluded).
    pub country_all: Counter,
    /// Registrant countries among 2014 creations.
    pub country_2014: Counter,
    /// Registrars, all time.
    pub registrar_all: Counter,
    /// Registrars among 2014 creations.
    pub registrar_2014: Counter,
    /// Privacy services (Table 7).
    pub privacy_services: Counter,
    /// Registrars of privacy-protected domains (Table 6).
    pub privacy_registrars: Counter,
    /// Registrant organizations (Table 4 input).
    pub orgs: Counter,
    /// Creation-year histogram (Figure 4a).
    pub year_histogram: BTreeMap<i32, u64>,
    /// Per-year country/privacy buckets (Figure 4b).
    pub year_buckets: BTreeMap<i32, Counter>,
    /// Per-registrar registrant-country mix (Figure 5).
    pub registrar_countries: BTreeMap<String, Counter>,
    /// Registrant countries of blacklisted 2014 domains (Table 8).
    pub dbl_country: Counter,
    /// Registrars of blacklisted 2014 domains (Table 9).
    pub dbl_registrar: Counter,
    /// Total blacklisted domains seen.
    pub dbl_total: u64,
}

impl Survey {
    /// Empty survey.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one parsed record; `listed` marks DBL membership.
    pub fn add(&mut self, rec: &ParsedRecord, listed: bool) {
        self.total += 1;
        let year = rec.creation_year();
        let registrar = rec.registrar.clone().unwrap_or_default();
        let is_2014 = year == Some(2014);

        self.registrar_all.add(&registrar);
        if is_2014 {
            self.registrar_2014.add(&registrar);
        }

        // Privacy detection from the registrant identity.
        let service = rec.registrant.as_ref().and_then(privacy::detect);
        if let Some(s) = service {
            self.privacy_services.add(s);
            self.privacy_registrars.add(&registrar);
        }

        // Country statistics exclude privacy-protected domains.
        let country =
            country::normalize(rec.registrant.as_ref().and_then(|c| c.country.as_deref()));
        if service.is_none() {
            self.country_all.add(&country);
            if is_2014 {
                self.country_2014.add(&country);
            }
            if !registrar.is_empty() {
                self.registrar_countries
                    .entry(registrar.clone())
                    .or_default()
                    .add(&country);
            }
            if let Some(org) = rec.registrant.as_ref().and_then(|c| c.org.as_deref()) {
                self.orgs.add(org);
            }
        }

        // Temporal series.
        if let Some(y) = year {
            *self.year_histogram.entry(y).or_insert(0) += 1;
            let bucket = if service.is_some() {
                "Private".to_string()
            } else if country.is_empty() {
                "Unknown".to_string()
            } else {
                country.clone()
            };
            self.year_buckets.entry(y).or_default().add(&bucket);
        }

        // Blacklist breakdowns (2014 creations, per §6.4).
        if listed && is_2014 {
            self.dbl_total += 1;
            self.dbl_registrar.add(&registrar);
            if service.is_none() {
                self.dbl_country.add(&country);
            }
        }
    }

    /// Merge another survey into this one (for sharded pipelines).
    pub fn merge(&mut self, other: &Survey) {
        self.total += other.total;
        merge_counter(&mut self.country_all, &other.country_all);
        merge_counter(&mut self.country_2014, &other.country_2014);
        merge_counter(&mut self.registrar_all, &other.registrar_all);
        merge_counter(&mut self.registrar_2014, &other.registrar_2014);
        merge_counter(&mut self.privacy_services, &other.privacy_services);
        merge_counter(&mut self.privacy_registrars, &other.privacy_registrars);
        merge_counter(&mut self.orgs, &other.orgs);
        merge_counter(&mut self.dbl_country, &other.dbl_country);
        merge_counter(&mut self.dbl_registrar, &other.dbl_registrar);
        self.dbl_total += other.dbl_total;
        for (y, c) in &other.year_histogram {
            *self.year_histogram.entry(*y).or_insert(0) += c;
        }
        for (y, counter) in &other.year_buckets {
            merge_counter(self.year_buckets.entry(*y).or_default(), counter);
        }
        for (r, counter) in &other.registrar_countries {
            merge_counter(
                self.registrar_countries.entry(r.clone()).or_default(),
                counter,
            );
        }
    }

    /// Figure 4b rows: per-year proportions of the given country buckets
    /// plus `Private`, `Unknown`, and `Other`.
    pub fn year_proportions(&self, countries: &[&str]) -> Vec<SurveyRow> {
        let mut rows = Vec::new();
        for (&year, counter) in &self.year_buckets {
            let total = counter.total().max(1) as f64;
            let mut covered = 0u64;
            for &c in countries {
                let n = counter.get(c);
                covered += n;
                rows.push(SurveyRow {
                    year,
                    bucket: c.to_string(),
                    proportion: n as f64 / total,
                });
            }
            for special in ["Private", "Unknown"] {
                let n = counter.get(special);
                covered += n;
                rows.push(SurveyRow {
                    year,
                    bucket: special.to_string(),
                    proportion: n as f64 / total,
                });
            }
            rows.push(SurveyRow {
                year,
                bucket: "Other".to_string(),
                proportion: (counter.total() - covered) as f64 / total,
            });
        }
        rows
    }

    /// Figure 4a as text: an aligned per-year histogram with bars.
    pub fn render_year_histogram(&self) -> String {
        let max = self.year_histogram.values().copied().max().unwrap_or(1);
        let mut s = String::from("Creation year histogram (Figure 4a)\n");
        for (y, &n) in &self.year_histogram {
            let bar = "#".repeat(((n as f64 / max as f64) * 50.0).round() as usize);
            s.push_str(&format!("{y} {n:>10} {bar}\n"));
        }
        s
    }

    /// Figure 5 as text: top-3 registrant countries per requested
    /// registrar.
    pub fn render_registrar_mix(&self, registrars: &[&str]) -> String {
        let mut s = String::from("Top registrant countries per registrar (Figure 5)\n");
        for &r in registrars {
            let Some(counter) = self
                .registrar_countries
                .iter()
                .find(|(name, _)| name.contains(r))
                .map(|(_, c)| c)
            else {
                s.push_str(&format!("{r}: (no data)\n"));
                continue;
            };
            let total = counter.total().max(1) as f64;
            let top: Vec<String> = counter
                .top(3)
                .into_iter()
                .map(|(name, n)| {
                    let display = if name.is_empty() { "[]" } else { &name };
                    format!("{display} {:.0}%", 100.0 * n as f64 / total)
                })
                .collect();
            s.push_str(&format!("{r}: {}\n", top.join(", ")));
        }
        s
    }

    /// Table 4: counts for a fixed list of well-known brand
    /// organizations, sorted descending.
    pub fn brand_counts(&self, brands: &[&str]) -> Vec<(String, u64)> {
        // Snapshot the org table once rather than per brand.
        let orgs: Vec<(String, u64)> = self
            .orgs
            .top(usize::MAX)
            .into_iter()
            .map(|(org, c)| (org.to_lowercase(), c))
            .collect();
        let mut rows: Vec<(String, u64)> = brands
            .iter()
            .map(|&b| {
                // Sum org variants containing the brand's first word.
                let key = b.split_whitespace().next().unwrap_or(b).to_lowercase();
                let count = orgs
                    .iter()
                    .filter(|(org, _)| org.contains(&key))
                    .map(|(_, c)| c)
                    .sum();
                (b.to_string(), count)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }
}

fn merge_counter(into: &mut Counter, from: &Counter) {
    for (key, count) in from.top(usize::MAX) {
        into.add_n(&key, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_model::Contact;

    fn record(
        registrar: &str,
        created: Option<&str>,
        country: Option<&str>,
        org: Option<&str>,
        name: &str,
    ) -> ParsedRecord {
        let mut p = ParsedRecord::new("x.com");
        p.registrar = Some(registrar.to_string());
        p.created = created.map(str::to_string);
        p.registrant = Some(Contact {
            name: Some(name.to_string()),
            org: org.map(str::to_string),
            country: country.map(str::to_string),
            ..Default::default()
        });
        p
    }

    #[test]
    fn counts_countries_and_registrars() {
        let mut s = Survey::new();
        s.add(
            &record("GoDaddy", Some("2014-02-03"), Some("US"), None, "J"),
            false,
        );
        s.add(
            &record("eNom", Some("2010-02-03"), Some("CN"), None, "K"),
            false,
        );
        s.add(&record("eNom", Some("2014-05-06"), None, None, "L"), false);
        assert_eq!(s.total, 3);
        assert_eq!(s.country_all.get("United States"), 1);
        assert_eq!(s.country_all.get("China"), 1);
        assert_eq!(s.country_all.get(""), 1, "missing country counted unknown");
        assert_eq!(s.country_2014.total(), 2);
        assert_eq!(s.registrar_2014.get("eNom"), 1);
        assert_eq!(s.year_histogram[&2014], 2);
    }

    #[test]
    fn privacy_domains_excluded_from_country_stats() {
        let mut s = Survey::new();
        s.add(
            &record(
                "GoDaddy",
                Some("2014-01-01"),
                Some("US"),
                Some("Domains By Proxy, LLC"),
                "Registration Private",
            ),
            false,
        );
        assert_eq!(s.privacy_services.get("Domains By Proxy"), 1);
        assert_eq!(s.privacy_registrars.get("GoDaddy"), 1);
        assert_eq!(
            s.country_all.total(),
            0,
            "private domain has no country row"
        );
        let rows = s.year_proportions(&["United States"]);
        let private = rows
            .iter()
            .find(|r| r.year == 2014 && r.bucket == "Private")
            .unwrap();
        assert!((private.proportion - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dbl_breakdowns_only_cover_2014() {
        let mut s = Survey::new();
        s.add(
            &record("eNom", Some("2014-01-01"), Some("JP"), None, "J"),
            true,
        );
        s.add(
            &record("eNom", Some("2013-01-01"), Some("JP"), None, "K"),
            true,
        );
        assert_eq!(s.dbl_total, 1);
        assert_eq!(s.dbl_country.get("Japan"), 1);
        assert_eq!(s.dbl_registrar.get("eNom"), 1);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Survey::new();
        a.add(
            &record("GoDaddy", Some("2014-01-01"), Some("US"), None, "J"),
            false,
        );
        let mut b = Survey::new();
        b.add(
            &record("GoDaddy", Some("2014-01-01"), Some("US"), None, "K"),
            true,
        );
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.country_all.get("United States"), 2);
        assert_eq!(a.dbl_total, 1);
        assert_eq!(a.year_histogram[&2014], 2);
    }

    #[test]
    fn renders_are_textual() {
        let mut s = Survey::new();
        s.add(
            &record("GoDaddy", Some("2013-01-01"), Some("US"), None, "J"),
            false,
        );
        s.add(
            &record("GoDaddy", Some("2014-01-01"), Some("CN"), None, "K"),
            false,
        );
        let h = s.render_year_histogram();
        assert!(h.contains("2013") && h.contains("2014") && h.contains('#'));
        let mix = s.render_registrar_mix(&["GoDaddy", "Missing Registrar"]);
        assert!(mix.contains("GoDaddy:"));
        assert!(mix.contains("(no data)"));
    }

    #[test]
    fn brand_counts_match_substring() {
        let mut s = Survey::new();
        for _ in 0..3 {
            s.add(
                &record(
                    "R",
                    Some("2010-01-01"),
                    Some("US"),
                    Some("Amazon Technologies, Inc."),
                    "DA",
                ),
                false,
            );
        }
        s.add(
            &record(
                "R",
                Some("2010-01-01"),
                Some("US"),
                Some("Google Inc."),
                "DA",
            ),
            false,
        );
        let rows = s.brand_counts(&["Amazon Technologies, Inc.", "Google Inc.", "Nike, Inc."]);
        assert_eq!(rows[0], ("Amazon Technologies, Inc.".to_string(), 3));
        assert_eq!(rows[1], ("Google Inc.".to_string(), 1));
        assert_eq!(rows[2].1, 0);
    }
}
