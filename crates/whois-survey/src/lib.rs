//! # whois-survey
//!
//! The §6 survey pipeline: aggregate parsed WHOIS records into the
//! paper's tables and figures.
//!
//! * [`counter`] — counted top-k tables with percentage rendering.
//! * [`country`] — registrant-country normalization (ISO codes and
//!   display names → canonical names).
//! * [`privacy`] — privacy-protection detection via "a small set of
//!   keywords to match against registrant name and/or organization
//!   fields" (§6.3).
//! * [`survey`] — the [`survey::Survey`] accumulator producing: registrant
//!   countries all-time and 2014 (Table 3), brand-company portfolios
//!   (Table 4), registrars (Table 5), privacy services and their
//!   registrars (Tables 6–7), blacklisted-domain breakdowns (Tables
//!   8–9), the creation-date histogram (Figure 4a), per-year country and
//!   privacy proportions (Figure 4b), and per-registrar country mixes
//!   (Figure 5).

pub mod counter;
pub mod country;
pub mod privacy;
pub mod survey;

pub use counter::Counter;
pub use survey::{Survey, SurveyRow};
