//! Counted top-k tables.

use std::collections::HashMap;

/// A string-keyed counter with top-k extraction and table rendering —
//  the building block behind every table in §6.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    counts: HashMap<String, u64>,
    total: u64,
}

impl Counter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one occurrence of `key`.
    pub fn add(&mut self, key: &str) {
        self.add_n(key, 1);
    }

    /// Count `n` occurrences of `key` at once (used when merging).
    pub fn add_n(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(key.to_string()).or_insert(0) += n;
        self.total += n;
    }

    /// Count of a specific key.
    pub fn get(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent keys with counts, ties broken
    /// alphabetically for determinism.
    pub fn top(&self, k: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.counts.iter().map(|(s, &c)| (s.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Render a paper-style table: top-k rows with counts and
    /// percentages, then `(Other)` and `Total` rows.
    pub fn render_table(&self, title: &str, k: usize) -> String {
        let mut s = format!("{title}\n{:<44} {:>12} {:>8}\n", "", "Number", "(% All)");
        let top = self.top(k);
        let mut top_sum = 0u64;
        for (name, count) in &top {
            top_sum += count;
            let display = if name.is_empty() { "(Unknown)" } else { name };
            s.push_str(&format!(
                "{:<44} {:>12} {:>7.1}%\n",
                display,
                count,
                100.0 * *count as f64 / self.total.max(1) as f64
            ));
        }
        let other = self.total - top_sum;
        if other > 0 {
            s.push_str(&format!(
                "{:<44} {:>12} {:>7.1}%\n",
                "(Other)",
                other,
                100.0 * other as f64 / self.total.max(1) as f64
            ));
        }
        s.push_str(&format!(
            "{:<44} {:>12} {:>7.1}%\n",
            "Total", self.total, 100.0
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counter {
        let mut c = Counter::new();
        for _ in 0..5 {
            c.add("US");
        }
        for _ in 0..3 {
            c.add("CN");
        }
        c.add("GB");
        c.add("");
        c
    }

    #[test]
    fn counting_and_totals() {
        let c = sample();
        assert_eq!(c.get("US"), 5);
        assert_eq!(c.get("CN"), 3);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.total(), 10);
        assert_eq!(c.distinct(), 4);
    }

    #[test]
    fn top_k_ordering_and_ties() {
        let c = sample();
        let top = c.top(2);
        assert_eq!(top, vec![("US".to_string(), 5), ("CN".to_string(), 3)]);
        let mut t = Counter::new();
        t.add("b");
        t.add("a");
        assert_eq!(t.top(2)[0].0, "a", "alphabetical tie-break");
    }

    #[test]
    fn render_includes_other_and_unknown() {
        let c = sample();
        let table = c.render_table("Top countries", 2);
        assert!(table.contains("US"));
        assert!(table.contains("(Other)"));
        assert!(table.contains("Total"));
        assert!(table.contains("50.0%"));
        let all = c.render_table("All", 10);
        assert!(all.contains("(Unknown)"), "empty key renders as Unknown");
    }

    #[test]
    fn empty_counter_renders_safely() {
        let c = Counter::new();
        let t = c.render_table("Empty", 5);
        assert!(t.contains("Total"));
    }
}
