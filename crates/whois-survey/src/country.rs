//! Registrant-country normalization.
//!
//! WHOIS records write countries as ISO codes (`US`, `cn`), full names
//! (`United States`), or not at all. The survey canonicalizes everything
//! to a display name, with `""` for unknown.

const CODE_TO_NAME: &[(&str, &str)] = &[
    ("US", "United States"),
    ("CN", "China"),
    ("GB", "United Kingdom"),
    ("UK", "United Kingdom"),
    ("DE", "Germany"),
    ("FR", "France"),
    ("CA", "Canada"),
    ("ES", "Spain"),
    ("AU", "Australia"),
    ("JP", "Japan"),
    ("IN", "India"),
    ("TR", "Turkey"),
    ("RU", "Russia"),
    ("VN", "Vietnam"),
    ("NL", "Netherlands"),
    ("IT", "Italy"),
    ("BR", "Brazil"),
    ("HK", "Hong Kong"),
    ("KR", "South Korea"),
    ("MX", "Mexico"),
    ("SE", "Sweden"),
    ("CH", "Switzerland"),
    ("PL", "Poland"),
    ("TW", "Taiwan"),
    ("SG", "Singapore"),
    ("IE", "Ireland"),
    ("NZ", "New Zealand"),
];

/// Names accepted as-is (lower-case key → canonical display name).
const NAME_ALIASES: &[(&str, &str)] = &[
    ("united states", "United States"),
    ("united states of america", "United States"),
    ("usa", "United States"),
    ("china", "China"),
    ("united kingdom", "United Kingdom"),
    ("great britain", "United Kingdom"),
    ("germany", "Germany"),
    ("france", "France"),
    ("canada", "Canada"),
    ("spain", "Spain"),
    ("australia", "Australia"),
    ("japan", "Japan"),
    ("india", "India"),
    ("turkey", "Turkey"),
    ("russia", "Russia"),
    ("russian federation", "Russia"),
    ("vietnam", "Vietnam"),
    ("viet nam", "Vietnam"),
    ("netherlands", "Netherlands"),
    ("italy", "Italy"),
    ("brazil", "Brazil"),
    ("hong kong", "Hong Kong"),
];

/// Normalize a raw registrant-country value to a canonical display name;
/// returns `""` when the value is missing or unrecognizable.
pub fn normalize(raw: Option<&str>) -> String {
    let Some(raw) = raw else {
        return String::new();
    };
    let t = raw.trim();
    if t.is_empty() {
        return String::new();
    }
    if t.len() == 2 {
        let code = t.to_ascii_uppercase();
        if let Some((_, name)) = CODE_TO_NAME.iter().find(|(c, _)| *c == code) {
            return (*name).to_string();
        }
    }
    let lower = t.to_lowercase();
    if let Some((_, name)) = NAME_ALIASES.iter().find(|(a, _)| *a == lower) {
        return (*name).to_string();
    }
    // Unknown but present: title-case passthrough keeps long-tail
    // countries countable.
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_normalize() {
        assert_eq!(normalize(Some("US")), "United States");
        assert_eq!(normalize(Some("cn")), "China");
        assert_eq!(normalize(Some("UK")), "United Kingdom");
    }

    #[test]
    fn names_normalize() {
        assert_eq!(normalize(Some("United States")), "United States");
        assert_eq!(normalize(Some("VIET NAM")), "Vietnam");
        assert_eq!(normalize(Some("Russian Federation")), "Russia");
    }

    #[test]
    fn missing_and_unknown() {
        assert_eq!(normalize(None), "");
        assert_eq!(normalize(Some("  ")), "");
        assert_eq!(normalize(Some("Gondor")), "Gondor", "passthrough");
        assert_eq!(normalize(Some("ZZ")), "ZZ", "unknown code passthrough");
    }
}
