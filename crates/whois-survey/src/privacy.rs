//! Privacy-protection detection (§6.3).
//!
//! "We identify privacy protection services using a small set of
//! keywords to match against registrant name and/or organization fields
//! in the WHOIS records." A match also canonicalizes the service name so
//! Table 7 groups variants together.

use whois_model::Contact;

/// `(needle, canonical service name)` — matched case-insensitively
/// against registrant name and organization.
const SERVICES: &[(&str, &str)] = &[
    ("domains by proxy", "Domains By Proxy"),
    ("whoisguard", "WhoisGuard"),
    ("whois privacy protect", "Whois Privacy Protect"),
    ("fbo registrant", "FBO REGISTRANT"),
    ("privacyprotect.org", "PrivacyProtect.org"),
    ("aliyun", "Aliyun"),
    ("perfect privacy", "Perfect Privacy"),
    ("happy dreamhost", "Happy DreamHost"),
    ("muumuudomain", "MuuMuuDomain"),
    ("1&1 internet inc", "1&1 Internet"),
    ("contact privacy", "Contact Privacy"),
    ("moniker privacy", "Moniker Privacy Services"),
    ("privacyguardian", "PrivacyGuardian.org"),
    ("whoisproxy", "WhoisProxy.com"),
    ("identity protection service", "Identity Protection Service"),
    (
        "whois privacy protection service",
        "Whois Privacy Protection Service",
    ),
    (
        "hidden by whois privacy",
        "Hidden by Whois Privacy Protection Service",
    ),
    ("private registration", "Private Registration"),
    ("registration private", "Registration Private"),
    ("privacy", "Privacy Service (generic)"),
    ("proxy", "Proxy Service (generic)"),
];

/// Detect whether a registrant contact is a privacy-service proxy,
/// returning the canonical service name.
///
/// The organization field is checked first (services put their company
/// name there); generic keywords only fire when nothing specific does.
pub fn detect(contact: &Contact) -> Option<&'static str> {
    let hay_org = contact.org.as_deref().unwrap_or("").to_lowercase();
    let hay_name = contact.name.as_deref().unwrap_or("").to_lowercase();
    for (needle, service) in SERVICES {
        if hay_org.contains(needle) {
            return Some(service);
        }
    }
    for (needle, service) in SERVICES {
        if hay_name.contains(needle) {
            return Some(service);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contact(name: &str, org: Option<&str>) -> Contact {
        Contact {
            name: Some(name.to_string()),
            org: org.map(str::to_string),
            ..Default::default()
        }
    }

    #[test]
    fn detects_named_services_in_org() {
        let c = contact("Registration Private", Some("Domains By Proxy, LLC"));
        assert_eq!(detect(&c), Some("Domains By Proxy"));
        let c = contact("X", Some("WhoisGuard Protected"));
        assert_eq!(detect(&c), Some("WhoisGuard"));
    }

    #[test]
    fn detects_in_name_when_org_clean() {
        let c = contact("WHOIS PRIVACY PROTECT", None);
        assert_eq!(detect(&c), Some("Whois Privacy Protect"));
    }

    #[test]
    fn specific_match_beats_generic() {
        let c = contact("X", Some("Perfect Privacy, LLC"));
        assert_eq!(detect(&c), Some("Perfect Privacy"));
    }

    #[test]
    fn generic_keywords_are_a_fallback() {
        let c = contact("X", Some("Super Privacy Shield Ltd"));
        assert_eq!(detect(&c), Some("Privacy Service (generic)"));
    }

    #[test]
    fn ordinary_registrants_not_flagged() {
        assert_eq!(detect(&contact("John Smith", Some("Acme Corp"))), None);
        assert_eq!(detect(&Contact::default()), None);
    }
}
