//! # whois-model
//!
//! Shared vocabulary for the `whoisml` workspace: the label spaces used by
//! the two-level statistical parser of *"Who is .com? Learning to Parse
//! WHOIS Records"* (IMC 2015), raw and labeled record containers, the
//! structured output type produced by every parser in the workspace, and
//! registry/TLD metadata for the thin/thick WHOIS lookup model.
//!
//! Every other crate in the workspace depends on this one; it has no
//! dependencies beyond `serde` so that the type vocabulary stays cheap to
//! build and free of policy.

pub mod error;
pub mod label;
pub mod metrics;
pub mod parsed;
pub mod record;
pub mod tld;

pub use error::WhoisError;
pub use label::{BlockLabel, Label, RegistrantLabel};
pub use metrics::ConfusionMatrix;
pub use parsed::parse_year;
pub use parsed::{Contact, ContactKind, ParsedRecord};
pub use record::{non_empty_lines, ErrorStats, LabeledLine, LabeledRecord, RawRecord};
pub use tld::{RegistryModel, Tld};
