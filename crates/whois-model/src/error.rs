//! Workspace-wide error type.

use std::fmt;

/// Errors produced across the `whoisml` workspace.
#[derive(Debug)]
pub enum WhoisError {
    /// A parser could not handle the record (e.g. no template matched).
    ParseFailure {
        /// Domain of the record that failed.
        domain: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A network operation failed.
    Network(std::io::Error),
    /// A WHOIS server refused or rate-limited the query.
    RateLimited {
        /// The server that limited us.
        server: String,
    },
    /// The queried domain does not exist at the responding server.
    NoMatch {
        /// The domain queried.
        domain: String,
    },
    /// A model file or corpus file could not be (de)serialized.
    Serialization(String),
    /// Training was given invalid or empty data.
    InvalidTrainingData(String),
}

impl fmt::Display for WhoisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhoisError::ParseFailure { domain, reason } => {
                write!(f, "failed to parse record for {domain}: {reason}")
            }
            WhoisError::Network(e) => write!(f, "network error: {e}"),
            WhoisError::RateLimited { server } => write!(f, "rate limited by {server}"),
            WhoisError::NoMatch { domain } => write!(f, "no match for {domain}"),
            WhoisError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            WhoisError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
        }
    }
}

impl std::error::Error for WhoisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WhoisError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WhoisError {
    fn from(e: std::io::Error) -> Self {
        WhoisError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = WhoisError::ParseFailure {
            domain: "x.com".into(),
            reason: "no template".into(),
        };
        assert_eq!(
            e.to_string(),
            "failed to parse record for x.com: no template"
        );
        assert!(WhoisError::RateLimited {
            server: "whois.example".into()
        }
        .to_string()
        .contains("rate limited"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "boom");
        let e: WhoisError = io.into();
        assert!(matches!(e, WhoisError::Network(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
