//! Raw and labeled WHOIS record containers.
//!
//! A [`RawRecord`] is what the crawler hands to a parser: the queried domain
//! plus the verbatim response text. A [`LabeledRecord`] pairs each non-empty
//! line with a ground-truth (or predicted) label; it is the unit of training
//! data for the statistical parser and the unit of evaluation for the
//! error-rate experiments (Figures 2 and 3 of the paper).

use crate::label::Label;
use serde::{Deserialize, Serialize};

/// Split record text into its non-empty lines, exactly as the paper's
/// chunker does (§3): line breaks delimit fields, and lines that are empty
/// or contain no alphanumeric character are not labeled.
///
/// The returned slices borrow from `text` and preserve original (untrimmed)
/// content so downstream feature extraction can still observe leading
/// whitespace (the paper's `SHL` shift marker).
pub fn non_empty_lines(text: &str) -> Vec<&str> {
    text.lines()
        .filter(|l| l.chars().any(|c| c.is_alphanumeric()))
        .collect()
}

/// A raw WHOIS response as returned by a server, before any parsing.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawRecord {
    /// The domain that was queried (lower-case, e.g. `"example.com"`).
    pub domain: String,
    /// Verbatim response body.
    pub text: String,
}

impl RawRecord {
    /// Create a record, normalizing the domain to lower-case.
    pub fn new(domain: impl Into<String>, text: impl Into<String>) -> Self {
        RawRecord {
            domain: domain.into().to_ascii_lowercase(),
            text: text.into(),
        }
    }

    /// The non-empty (labelable) lines of the record.
    pub fn lines(&self) -> Vec<&str> {
        non_empty_lines(&self.text)
    }

    /// The TLD portion of the queried domain, if any.
    pub fn tld(&self) -> Option<&str> {
        self.domain.rsplit_once('.').map(|(_, tld)| tld)
    }
}

/// One line of a record together with its label.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledLine<L> {
    /// The verbatim line text (untrimmed).
    pub text: String,
    /// The label assigned to the line.
    pub label: L,
}

/// A WHOIS record whose every non-empty line carries a label.
///
/// `L` is [`crate::BlockLabel`] for first-level training data and
/// [`crate::RegistrantLabel`] for second-level training data.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledRecord<L> {
    /// The domain the record describes.
    pub domain: String,
    /// Labeled lines, in original order.
    pub lines: Vec<LabeledLine<L>>,
}

impl<L: Label> LabeledRecord<L> {
    /// Build a labeled record from parallel line/label sequences.
    ///
    /// # Panics
    /// Panics if the two sequences have different lengths.
    pub fn from_parts(
        domain: impl Into<String>,
        lines: impl IntoIterator<Item = String>,
        labels: impl IntoIterator<Item = L>,
    ) -> Self {
        let lines: Vec<String> = lines.into_iter().collect();
        let labels: Vec<L> = labels.into_iter().collect();
        assert_eq!(
            lines.len(),
            labels.len(),
            "line/label sequences must have equal length"
        );
        LabeledRecord {
            domain: domain.into(),
            lines: lines
                .into_iter()
                .zip(labels)
                .map(|(text, label)| LabeledLine { text, label })
                .collect(),
        }
    }

    /// Number of labeled lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if the record has no labeled lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The line texts, in order.
    pub fn texts(&self) -> Vec<&str> {
        self.lines.iter().map(|l| l.text.as_str()).collect()
    }

    /// The labels, in order.
    pub fn labels(&self) -> Vec<L> {
        self.lines.iter().map(|l| l.label).collect()
    }

    /// Drop the labels, recovering a [`RawRecord`] whose text is the lines
    /// joined by newlines.
    pub fn to_raw(&self) -> RawRecord {
        RawRecord {
            domain: self.domain.clone(),
            text: self
                .lines
                .iter()
                .map(|l| l.text.as_str())
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }

    /// Count of positions where `predicted` disagrees with this record's
    /// labels. Used by the line-error-rate metric of Figure 2.
    ///
    /// # Panics
    /// Panics if `predicted` has the wrong length.
    pub fn count_errors(&self, predicted: &[L]) -> usize {
        assert_eq!(
            predicted.len(),
            self.lines.len(),
            "prediction length mismatch"
        );
        self.lines
            .iter()
            .zip(predicted)
            .filter(|(l, &p)| l.label != p)
            .count()
    }
}

/// Aggregate line/document error statistics over an evaluation set
/// (the two metrics of Figures 2 and 3 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Total labeled lines evaluated.
    pub lines: usize,
    /// Lines whose predicted label was wrong.
    pub line_errors: usize,
    /// Total records evaluated.
    pub documents: usize,
    /// Records with at least one mislabeled line.
    pub document_errors: usize,
}

impl ErrorStats {
    /// Record one document's outcome.
    pub fn record(&mut self, total_lines: usize, errors: usize) {
        self.lines += total_lines;
        self.line_errors += errors;
        self.documents += 1;
        if errors > 0 {
            self.document_errors += 1;
        }
    }

    /// Fraction of lines mislabeled (0 if nothing evaluated).
    pub fn line_error_rate(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.line_errors as f64 / self.lines as f64
        }
    }

    /// Fraction of documents with >=1 mislabeled line (0 if nothing
    /// evaluated).
    pub fn document_error_rate(&self) -> f64 {
        if self.documents == 0 {
            0.0
        } else {
            self.document_errors as f64 / self.documents as f64
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.lines += other.lines;
        self.line_errors += other.line_errors;
        self.documents += other.documents;
        self.document_errors += other.document_errors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::BlockLabel;

    #[test]
    fn non_empty_lines_skips_blank_and_symbol_only() {
        let text = "Domain Name: EXAMPLE.COM\n\n   \n%%%\n>>> Last update <<<\n--\nabc";
        let lines = non_empty_lines(text);
        assert_eq!(
            lines,
            vec!["Domain Name: EXAMPLE.COM", ">>> Last update <<<", "abc"]
        );
    }

    #[test]
    fn non_empty_lines_keeps_leading_whitespace() {
        let lines = non_empty_lines("   indented value\n");
        assert_eq!(lines, vec!["   indented value"]);
    }

    #[test]
    fn raw_record_lowercases_domain_and_extracts_tld() {
        let r = RawRecord::new("ExAmPlE.COM", "x: y");
        assert_eq!(r.domain, "example.com");
        assert_eq!(r.tld(), Some("com"));
        assert_eq!(RawRecord::new("nodots", "").tld(), None);
    }

    #[test]
    fn labeled_record_roundtrip() {
        let rec = LabeledRecord::from_parts(
            "example.com",
            vec![
                "Registrar: GoDaddy".to_string(),
                "Created: 2001".to_string(),
            ],
            vec![BlockLabel::Registrar, BlockLabel::Date],
        );
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
        assert_eq!(rec.labels(), vec![BlockLabel::Registrar, BlockLabel::Date]);
        let raw = rec.to_raw();
        assert_eq!(raw.text, "Registrar: GoDaddy\nCreated: 2001");
        assert_eq!(raw.lines().len(), 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn labeled_record_rejects_mismatched_lengths() {
        let _ = LabeledRecord::from_parts(
            "x.com",
            vec!["a".to_string()],
            vec![BlockLabel::Null, BlockLabel::Null],
        );
    }

    #[test]
    fn count_errors_counts_disagreements() {
        let rec = LabeledRecord::from_parts(
            "x.com",
            vec!["a".into(), "b".into(), "c".into()],
            vec![BlockLabel::Domain, BlockLabel::Date, BlockLabel::Null],
        );
        let pred = vec![BlockLabel::Domain, BlockLabel::Null, BlockLabel::Null];
        assert_eq!(rec.count_errors(&pred), 1);
        assert_eq!(rec.count_errors(&rec.labels()), 0);
    }

    #[test]
    fn error_stats_rates() {
        let mut s = ErrorStats::default();
        s.record(10, 0);
        s.record(10, 2);
        assert_eq!(s.lines, 20);
        assert_eq!(s.line_errors, 2);
        assert!((s.line_error_rate() - 0.1).abs() < 1e-12);
        assert!((s.document_error_rate() - 0.5).abs() < 1e-12);

        let mut t = ErrorStats::default();
        t.record(5, 5);
        s.merge(&t);
        assert_eq!(s.documents, 3);
        assert_eq!(s.document_errors, 2);
        assert_eq!(s.line_errors, 7);
    }

    #[test]
    fn error_stats_empty_is_zero() {
        let s = ErrorStats::default();
        assert_eq!(s.line_error_rate(), 0.0);
        assert_eq!(s.document_error_rate(), 0.0);
    }

    #[test]
    fn labeled_record_serde_roundtrip() {
        let rec = LabeledRecord::from_parts(
            "x.com",
            vec!["Registrant Name: J".to_string()],
            vec![BlockLabel::Registrant],
        );
        let json = serde_json::to_string(&rec).unwrap();
        let back: LabeledRecord<BlockLabel> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}
