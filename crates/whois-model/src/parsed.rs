//! Structured output of a WHOIS parse.
//!
//! All three parser families in the workspace (statistical, rule-based,
//! template-based) reduce a raw record to a [`ParsedRecord`]: the six block
//! label texts plus, where available, a structured registrant [`Contact`].
//! The §6 survey pipeline consumes `ParsedRecord`s exclusively, so any
//! parser can back the survey.

use crate::label::{BlockLabel, Label, RegistrantLabel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which contact a block of contact information describes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum ContactKind {
    /// The registrant (owner) of the domain.
    Registrant,
    /// Administrative contact.
    Admin,
    /// Technical contact.
    Tech,
    /// Billing contact.
    Billing,
}

/// A structured contact extracted from a WHOIS record.
///
/// Fields mirror the second-level label space; every field is optional
/// because real records omit fields freely. `street` is multi-valued since
/// addresses commonly span several lines.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contact {
    /// Personal name.
    pub name: Option<String>,
    /// Registry-assigned contact ID.
    pub id: Option<String>,
    /// Organization.
    pub org: Option<String>,
    /// Street address lines, in order.
    pub street: Vec<String>,
    /// City.
    pub city: Option<String>,
    /// State or province.
    pub state: Option<String>,
    /// Postal code.
    pub postcode: Option<String>,
    /// Country name or code.
    pub country: Option<String>,
    /// Telephone number.
    pub phone: Option<String>,
    /// Fax number.
    pub fax: Option<String>,
    /// E-mail address.
    pub email: Option<String>,
    /// Unclassified lines inside the contact block.
    pub other: Vec<String>,
}

impl Contact {
    /// True if no field is populated.
    pub fn is_empty(&self) -> bool {
        self.name.is_none()
            && self.id.is_none()
            && self.org.is_none()
            && self.street.is_empty()
            && self.city.is_none()
            && self.state.is_none()
            && self.postcode.is_none()
            && self.country.is_none()
            && self.phone.is_none()
            && self.fax.is_none()
            && self.email.is_none()
            && self.other.is_empty()
    }

    /// Set (or append, for multi-valued fields) the field identified by a
    /// second-level label. Values are trimmed; empty values are ignored.
    /// For single-valued fields the first non-empty value wins, matching
    /// how "title: value" records repeat titles for continuation lines.
    pub fn set_field(&mut self, label: RegistrantLabel, value: &str) {
        let value = value.trim();
        if value.is_empty() {
            return;
        }
        let slot = match label {
            RegistrantLabel::Name => &mut self.name,
            RegistrantLabel::Id => &mut self.id,
            RegistrantLabel::Org => &mut self.org,
            RegistrantLabel::Street => {
                self.street.push(value.to_string());
                return;
            }
            RegistrantLabel::City => &mut self.city,
            RegistrantLabel::State => &mut self.state,
            RegistrantLabel::Postcode => &mut self.postcode,
            RegistrantLabel::Country => &mut self.country,
            RegistrantLabel::Phone => &mut self.phone,
            RegistrantLabel::Fax => &mut self.fax,
            RegistrantLabel::Email => &mut self.email,
            RegistrantLabel::Other => {
                self.other.push(value.to_string());
                return;
            }
        };
        if slot.is_none() {
            *slot = Some(value.to_string());
        }
    }

    /// Read the field identified by a second-level label (first street /
    /// other line for the multi-valued fields).
    pub fn get_field(&self, label: RegistrantLabel) -> Option<&str> {
        match label {
            RegistrantLabel::Name => self.name.as_deref(),
            RegistrantLabel::Id => self.id.as_deref(),
            RegistrantLabel::Org => self.org.as_deref(),
            RegistrantLabel::Street => self.street.first().map(String::as_str),
            RegistrantLabel::City => self.city.as_deref(),
            RegistrantLabel::State => self.state.as_deref(),
            RegistrantLabel::Postcode => self.postcode.as_deref(),
            RegistrantLabel::Country => self.country.as_deref(),
            RegistrantLabel::Phone => self.phone.as_deref(),
            RegistrantLabel::Fax => self.fax.as_deref(),
            RegistrantLabel::Email => self.email.as_deref(),
            RegistrantLabel::Other => self.other.first().map(String::as_str),
        }
    }
}

/// The structured result of parsing one thick WHOIS record.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ParsedRecord {
    /// Domain the record describes.
    pub domain: String,
    /// Registrar name, if identified.
    pub registrar: Option<String>,
    /// Registrar WHOIS server, if present (used for thin→thick referral).
    pub whois_server: Option<String>,
    /// Name servers listed for the domain.
    pub name_servers: Vec<String>,
    /// Domain status strings (e.g. `clientTransferProhibited`).
    pub statuses: Vec<String>,
    /// Creation date, verbatim as found.
    pub created: Option<String>,
    /// Last-updated date, verbatim.
    pub updated: Option<String>,
    /// Expiration date, verbatim.
    pub expires: Option<String>,
    /// Structured registrant contact (second-level parse), if extracted.
    pub registrant: Option<Contact>,
    /// Additional contacts (admin/tech/billing) when a parser separates
    /// them.
    pub contacts: BTreeMap<String, Contact>,
    /// The raw lines grouped by first-level block label.
    pub blocks: BTreeMap<String, Vec<String>>,
}

impl ParsedRecord {
    /// Create an empty result for `domain`.
    pub fn new(domain: impl Into<String>) -> Self {
        ParsedRecord {
            domain: domain.into(),
            ..Default::default()
        }
    }

    /// Append a raw line to the block bucket for `label`.
    pub fn push_block_line(&mut self, label: BlockLabel, line: &str) {
        self.blocks
            .entry(label.name().to_string())
            .or_default()
            .push(line.to_string());
    }

    /// Lines previously bucketed under `label`.
    pub fn block_lines(&self, label: BlockLabel) -> &[String] {
        self.blocks
            .get(label.name())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True if a registrant with at least one populated field was
    /// extracted. This is the success criterion used when comparing against
    /// the `pythonwhois`-style baseline in §2.3.
    pub fn has_registrant(&self) -> bool {
        self.registrant.as_ref().is_some_and(|c| !c.is_empty())
    }

    /// Creation year parsed out of the `created` date, if recognizable.
    ///
    /// Accepts the common WHOIS date shapes (`2014-03-01`,
    /// `01-mar-2014`, `2014.03.01`, `03/01/2014`).
    pub fn creation_year(&self) -> Option<i32> {
        let created = self.created.as_deref()?;
        parse_year(created)
    }
}

/// Extract a plausible 4-digit year (1980..=2100) from a date string.
pub fn parse_year(s: &str) -> Option<i32> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i - start == 4 {
                if let Ok(y) = s[start..i].parse::<i32>() {
                    if (1980..=2100).contains(&y) {
                        return Some(y);
                    }
                }
            }
        } else {
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contact_set_get_roundtrip() {
        let mut c = Contact::default();
        assert!(c.is_empty());
        c.set_field(RegistrantLabel::Name, "  John Smith ");
        c.set_field(RegistrantLabel::Street, "1 Main St");
        c.set_field(RegistrantLabel::Street, "Suite 200");
        c.set_field(RegistrantLabel::Email, "j@example.com");
        assert!(!c.is_empty());
        assert_eq!(c.get_field(RegistrantLabel::Name), Some("John Smith"));
        assert_eq!(c.street, vec!["1 Main St", "Suite 200"]);
        assert_eq!(c.get_field(RegistrantLabel::Street), Some("1 Main St"));
    }

    #[test]
    fn contact_first_value_wins_for_single_fields() {
        let mut c = Contact::default();
        c.set_field(RegistrantLabel::City, "San Diego");
        c.set_field(RegistrantLabel::City, "La Jolla");
        assert_eq!(c.city.as_deref(), Some("San Diego"));
    }

    #[test]
    fn contact_ignores_empty_values() {
        let mut c = Contact::default();
        c.set_field(RegistrantLabel::Phone, "   ");
        assert!(c.is_empty());
    }

    #[test]
    fn parsed_record_blocks_and_registrant() {
        let mut p = ParsedRecord::new("example.com");
        p.push_block_line(BlockLabel::Registrar, "Registrar: GoDaddy");
        p.push_block_line(BlockLabel::Registrar, "IANA ID: 146");
        assert_eq!(p.block_lines(BlockLabel::Registrar).len(), 2);
        assert!(p.block_lines(BlockLabel::Date).is_empty());

        assert!(!p.has_registrant());
        p.registrant = Some(Contact::default());
        assert!(!p.has_registrant(), "empty contact does not count");
        let mut c = Contact::default();
        c.set_field(RegistrantLabel::Name, "J");
        p.registrant = Some(c);
        assert!(p.has_registrant());
    }

    #[test]
    fn year_parsing_handles_common_formats() {
        assert_eq!(parse_year("2014-03-01"), Some(2014));
        assert_eq!(parse_year("01-mar-1997"), Some(1997));
        assert_eq!(parse_year("2015.06.30 12:00:00"), Some(2015));
        assert_eq!(parse_year("03/01/2009"), Some(2009));
        assert_eq!(parse_year("no digits here"), None);
        assert_eq!(parse_year("123456"), None, "six digits is not a year");
        assert_eq!(parse_year("1776-07-04"), None, "out of range");
    }

    #[test]
    fn creation_year_reads_created_field() {
        let mut p = ParsedRecord::new("x.com");
        assert_eq!(p.creation_year(), None);
        p.created = Some("Creation Date: 2011-08-09T00:00:00Z".into());
        assert_eq!(p.creation_year(), Some(2011));
    }

    #[test]
    fn parsed_record_serde_roundtrip() {
        let mut p = ParsedRecord::new("x.com");
        p.registrar = Some("eNom".into());
        p.push_block_line(BlockLabel::Null, "legal boilerplate");
        let json = serde_json::to_string(&p).unwrap();
        let back: ParsedRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
