//! TLD and registry metadata for the thin/thick WHOIS lookup model (§2.2).

use serde::{Deserialize, Serialize};

/// How a TLD's registry stores registration data.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum RegistryModel {
    /// The registry stores the complete record; one query suffices.
    Thick,
    /// The registry stores only registrar / dates / name servers; the full
    /// record must be fetched from the sponsoring registrar's WHOIS server
    /// in a second query.
    Thin,
}

/// Metadata about a top-level domain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tld {
    /// The TLD string without the leading dot (e.g. `"com"`).
    pub name: String,
    /// Thin or thick registry operation.
    pub model: RegistryModel,
}

impl Tld {
    /// Construct TLD metadata.
    pub fn new(name: impl Into<String>, model: RegistryModel) -> Self {
        Tld {
            name: name.into().to_ascii_lowercase(),
            model,
        }
    }

    /// The thin-registry TLDs at the time of the paper: `com` and `net`
    /// (45% of all registered domains), still operated thin by Verisign.
    pub fn is_thin_era_tld(name: &str) -> bool {
        matches!(name, "com" | "net")
    }

    /// The twelve "new TLD" examples evaluated in Table 2 of the paper.
    /// Each is operated thick with a single consistent template.
    pub const TABLE2_TLDS: [&'static str; 12] = [
        "aero", "asia", "biz", "coop", "info", "mobi", "name", "org", "pro", "travel", "us", "xxx",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tld_lowercases_name() {
        let t = Tld::new("COM", RegistryModel::Thin);
        assert_eq!(t.name, "com");
        assert_eq!(t.model, RegistryModel::Thin);
    }

    #[test]
    fn thin_era_tlds() {
        assert!(Tld::is_thin_era_tld("com"));
        assert!(Tld::is_thin_era_tld("net"));
        assert!(!Tld::is_thin_era_tld("org"), "org went thick in 2003");
        assert!(!Tld::is_thin_era_tld("info"));
    }

    #[test]
    fn table2_has_twelve_unique_tlds() {
        let set: std::collections::HashSet<_> = Tld::TABLE2_TLDS.iter().collect();
        assert_eq!(set.len(), 12);
        assert!(set.contains(&"coop"));
    }

    #[test]
    fn registry_model_serde() {
        assert_eq!(
            serde_json::to_string(&RegistryModel::Thin).unwrap(),
            "\"thin\""
        );
    }
}
