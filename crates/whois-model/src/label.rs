//! Label spaces for the two-level CRF parser.
//!
//! The paper parses a WHOIS record in two passes. The first pass assigns
//! each non-empty line one of six coarse **block** labels ([`BlockLabel`]);
//! the second pass re-parses the lines labeled `registrant` into twelve
//! fine-grained **sub-field** labels ([`RegistrantLabel`]).
//!
//! Both enums implement the [`Label`] trait, which is the interface the
//! generic CRF in `whois-crf` uses: a dense index in `0..COUNT`, a stable
//! display name, and an exhaustive `ALL` listing.

use serde::{Deserialize, Serialize};

/// A finite, dense label space usable as the state space of a linear-chain
/// CRF.
///
/// Implementations must guarantee that [`Label::index`] is a bijection onto
/// `0..Self::COUNT` and that `Self::ALL[i].index() == i`.
pub trait Label:
    Copy + Clone + Eq + PartialEq + std::hash::Hash + std::fmt::Debug + Send + Sync + 'static
{
    /// Number of distinct labels in the space.
    const COUNT: usize;
    /// All labels, ordered by index.
    const ALL: &'static [Self];

    /// Dense index of this label in `0..Self::COUNT`.
    fn index(self) -> usize;

    /// Inverse of [`Label::index`].
    ///
    /// # Panics
    /// Panics if `i >= Self::COUNT`.
    fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Stable lower-case display name (used in reports and model dumps).
    fn name(self) -> &'static str;

    /// Parse a label from its display name.
    fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|l| l.name() == name)
    }
}

/// First-level block labels (§3.2 of the paper).
///
/// Each non-empty line of a thick WHOIS record receives exactly one of
/// these six labels.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum BlockLabel {
    /// Information about the registrar: name, URL, IANA ID, abuse contacts.
    Registrar,
    /// Information about the domain itself: name, name servers, status,
    /// DNSSEC.
    Domain,
    /// Registration dates: created, updated, expires.
    Date,
    /// Identity and contact information of the registrant.
    Registrant,
    /// Administrative, billing, and technical contacts.
    Other,
    /// Boilerplate, legalese, notices, and uninformative text.
    Null,
}

impl Label for BlockLabel {
    const COUNT: usize = 6;
    const ALL: &'static [Self] = &[
        BlockLabel::Registrar,
        BlockLabel::Domain,
        BlockLabel::Date,
        BlockLabel::Registrant,
        BlockLabel::Other,
        BlockLabel::Null,
    ];

    fn index(self) -> usize {
        self as usize
    }

    fn name(self) -> &'static str {
        match self {
            BlockLabel::Registrar => "registrar",
            BlockLabel::Domain => "domain",
            BlockLabel::Date => "date",
            BlockLabel::Registrant => "registrant",
            BlockLabel::Other => "other",
            BlockLabel::Null => "null",
        }
    }
}

impl std::fmt::Display for BlockLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Second-level registrant sub-field labels (§3.2 of the paper).
///
/// Lines that the first-level parser labels [`BlockLabel::Registrant`] are
/// re-parsed into these twelve sub-fields.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum RegistrantLabel {
    /// Personal name of the registrant.
    Name,
    /// Registry/registrar-assigned registrant identifier.
    Id,
    /// Organization name.
    Org,
    /// Street address (possibly multiple lines).
    Street,
    /// City.
    City,
    /// State or province.
    State,
    /// Postal / ZIP code.
    Postcode,
    /// Country name or ISO code.
    Country,
    /// Telephone number.
    Phone,
    /// Fax number.
    Fax,
    /// E-mail address.
    Email,
    /// Anything else inside the registrant block.
    Other,
}

impl Label for RegistrantLabel {
    const COUNT: usize = 12;
    const ALL: &'static [Self] = &[
        RegistrantLabel::Name,
        RegistrantLabel::Id,
        RegistrantLabel::Org,
        RegistrantLabel::Street,
        RegistrantLabel::City,
        RegistrantLabel::State,
        RegistrantLabel::Postcode,
        RegistrantLabel::Country,
        RegistrantLabel::Phone,
        RegistrantLabel::Fax,
        RegistrantLabel::Email,
        RegistrantLabel::Other,
    ];

    fn index(self) -> usize {
        self as usize
    }

    fn name(self) -> &'static str {
        match self {
            RegistrantLabel::Name => "name",
            RegistrantLabel::Id => "id",
            RegistrantLabel::Org => "org",
            RegistrantLabel::Street => "street",
            RegistrantLabel::City => "city",
            RegistrantLabel::State => "state",
            RegistrantLabel::Postcode => "postcode",
            RegistrantLabel::Country => "country",
            RegistrantLabel::Phone => "phone",
            RegistrantLabel::Fax => "fax",
            RegistrantLabel::Email => "email",
            RegistrantLabel::Other => "other",
        }
    }
}

impl std::fmt::Display for RegistrantLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_label_index_roundtrip() {
        for (i, &l) in BlockLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(BlockLabel::from_index(i), l);
        }
        assert_eq!(BlockLabel::ALL.len(), BlockLabel::COUNT);
    }

    #[test]
    fn registrant_label_index_roundtrip() {
        for (i, &l) in RegistrantLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(RegistrantLabel::from_index(i), l);
        }
        assert_eq!(RegistrantLabel::ALL.len(), RegistrantLabel::COUNT);
    }

    #[test]
    fn names_are_unique_and_parse_back() {
        let mut seen = std::collections::HashSet::new();
        for &l in BlockLabel::ALL {
            assert!(seen.insert(l.name()));
            assert_eq!(BlockLabel::from_name(l.name()), Some(l));
        }
        let mut seen = std::collections::HashSet::new();
        for &l in RegistrantLabel::ALL {
            assert!(seen.insert(l.name()));
            assert_eq!(RegistrantLabel::from_name(l.name()), Some(l));
        }
        assert_eq!(BlockLabel::from_name("bogus"), None);
    }

    #[test]
    fn serde_uses_lowercase_names() {
        let json = serde_json::to_string(&BlockLabel::Registrant).unwrap();
        assert_eq!(json, "\"registrant\"");
        let back: BlockLabel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, BlockLabel::Registrant);
        let json = serde_json::to_string(&RegistrantLabel::Postcode).unwrap();
        assert_eq!(json, "\"postcode\"");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(BlockLabel::Null.to_string(), "null");
        assert_eq!(RegistrantLabel::Email.to_string(), "email");
    }
}
