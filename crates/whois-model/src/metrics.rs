//! Per-label evaluation metrics: confusion matrix, precision, recall,
//! F1.
//!
//! The paper reports line and document error rates (see
//! [`crate::record::ErrorStats`]); this module adds the per-label view
//! used in `EXPERIMENTS.md` to show *where* the residual errors live.

use crate::label::Label;
use serde::{Deserialize, Serialize};

/// A dense confusion matrix over a label space `L`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n: usize,
    names: Vec<String>,
    /// `counts[gold * n + predicted]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Empty matrix for label space `L`.
    pub fn new<L: Label>() -> Self {
        ConfusionMatrix {
            n: L::COUNT,
            names: L::ALL.iter().map(|l| l.name().to_string()).collect(),
            counts: vec![0; L::COUNT * L::COUNT],
        }
    }

    /// Record one `(gold, predicted)` observation.
    pub fn observe<L: Label>(&mut self, gold: L, predicted: L) {
        debug_assert_eq!(self.n, L::COUNT);
        self.counts[gold.index() * self.n + predicted.index()] += 1;
    }

    /// Record a full sequence pair.
    ///
    /// # Panics
    /// Panics if the sequences have different lengths.
    pub fn observe_all<L: Label>(&mut self, gold: &[L], predicted: &[L]) {
        assert_eq!(gold.len(), predicted.len(), "sequence length mismatch");
        for (&g, &p) in gold.iter().zip(predicted) {
            self.observe(g, p);
        }
    }

    /// Count at `(gold, predicted)` by index.
    pub fn get(&self, gold: usize, predicted: usize) -> u64 {
        self.counts[gold * self.n + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.n).map(|i| self.get(i, i)).sum();
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision for label index `j`: `tp / (tp + fp)`; 1.0 when the
    /// label was never predicted.
    pub fn precision(&self, j: usize) -> f64 {
        let tp = self.get(j, j);
        let predicted: u64 = (0..self.n).map(|g| self.get(g, j)).sum();
        if predicted == 0 {
            1.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for label index `j`: `tp / (tp + fn)`; 1.0 when the label
    /// never occurs in gold.
    pub fn recall(&self, j: usize) -> f64 {
        let tp = self.get(j, j);
        let gold: u64 = (0..self.n).map(|p| self.get(j, p)).sum();
        if gold == 0 {
            1.0
        } else {
            tp as f64 / gold as f64
        }
    }

    /// F1 for label index `j`.
    pub fn f1(&self, j: usize) -> f64 {
        let p = self.precision(j);
        let r = self.recall(j);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over labels that occur in gold.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for j in 0..self.n {
            let gold: u64 = (0..self.n).map(|p| self.get(j, p)).sum();
            if gold > 0 {
                sum += self.f1(j);
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            sum / count as f64
        }
    }

    /// Merge another matrix (same label space) into this one.
    ///
    /// # Panics
    /// Panics on label-space mismatch.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n, other.n, "label space mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Render as an aligned text table with per-label P/R/F1.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:<12}", "gold\\pred"));
        for name in &self.names {
            s.push_str(&format!("{:>11}", name));
        }
        s.push_str(&format!("{:>11} {:>8} {:>8}\n", "recall", "prec", "f1"));
        for (g, name) in self.names.iter().enumerate() {
            s.push_str(&format!("{:<12}", name));
            for p in 0..self.n {
                s.push_str(&format!("{:>11}", self.get(g, p)));
            }
            s.push_str(&format!(
                "{:>10.1}% {:>7.1}% {:>7.1}%\n",
                100.0 * self.recall(g),
                100.0 * self.precision(g),
                100.0 * self.f1(g)
            ));
        }
        s.push_str(&format!(
            "accuracy {:.4}  macro-F1 {:.4}  ({} observations)\n",
            self.accuracy(),
            self.macro_f1(),
            self.total()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::BlockLabel;

    fn sample() -> ConfusionMatrix {
        use BlockLabel::*;
        let mut m = ConfusionMatrix::new::<BlockLabel>();
        m.observe_all(
            &[Domain, Domain, Date, Registrant, Null],
            &[Domain, Date, Date, Registrant, Null],
        );
        m
    }

    #[test]
    fn counts_and_accuracy() {
        let m = sample();
        assert_eq!(m.total(), 5);
        assert_eq!(
            m.get(BlockLabel::Domain.index(), BlockLabel::Date.index()),
            1
        );
        assert!((m.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let m = sample();
        let date = BlockLabel::Date.index();
        // Date: tp=1, fp=1 (domain→date), fn=0.
        assert!((m.precision(date) - 0.5).abs() < 1e-12);
        assert!((m.recall(date) - 1.0).abs() < 1e-12);
        assert!((m.f1(date) - 2.0 / 3.0).abs() < 1e-12);
        let domain = BlockLabel::Domain.index();
        assert!((m.recall(domain) - 0.5).abs() < 1e-12);
        assert!((m.precision(domain) - 1.0).abs() < 1e-12);
        // Registrar never occurs: neutral 1.0 by convention.
        assert_eq!(m.precision(BlockLabel::Registrar.index()), 1.0);
        assert_eq!(m.recall(BlockLabel::Registrar.index()), 1.0);
    }

    #[test]
    fn macro_f1_skips_absent_labels() {
        let m = sample();
        // Gold labels present: domain, date, registrant, null.
        let expected = (m.f1(BlockLabel::Domain.index())
            + m.f1(BlockLabel::Date.index())
            + m.f1(BlockLabel::Registrant.index())
            + m.f1(BlockLabel::Null.index()))
            / 4.0;
        assert!((m.macro_f1() - expected).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 10);
        assert!((a.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_neutral() {
        let m = ConfusionMatrix::new::<BlockLabel>();
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn render_contains_all_labels() {
        let text = sample().render();
        for l in BlockLabel::ALL {
            assert!(text.contains(l.name()));
        }
        assert!(text.contains("accuracy"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn observe_all_rejects_misaligned() {
        let mut m = ConfusionMatrix::new::<BlockLabel>();
        m.observe_all(&[BlockLabel::Null], &[]);
    }
}
