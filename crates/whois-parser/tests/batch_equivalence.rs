//! Property test: `ParseEngine::parse_batch` is exactly the sequential
//! `WhoisParser::parse` loop, for any worker count and any slice of
//! records — the engine may only change *where* buffers live, never what
//! comes out.

use proptest::prelude::*;
use std::sync::OnceLock;
use whois_gen::corpus::{generate_corpus, GenConfig};
use whois_model::{BlockLabel, ParsedRecord, RawRecord, RegistrantLabel};
use whois_parser::{ParseEngine, ParserConfig, TrainExample, WhoisParser};

/// Train once; every property case reuses the same parser and record
/// pool (training dominates the runtime otherwise).
fn fixture() -> &'static (WhoisParser, Vec<RawRecord>, Vec<ParsedRecord>) {
    static FIXTURE: OnceLock<(WhoisParser, Vec<RawRecord>, Vec<ParsedRecord>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = generate_corpus(GenConfig::new(31, 180));
        let (train, test) = corpus.split_at(120);
        let first: Vec<TrainExample<BlockLabel>> = train
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let second: Vec<TrainExample<RegistrantLabel>> = train
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                if reg.is_empty() {
                    return None;
                }
                Some(TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
        let raws: Vec<RawRecord> = test.iter().map(|d| d.raw()).collect();
        let sequential: Vec<ParsedRecord> = raws.iter().map(|r| parser.parse(r)).collect();
        (parser, raws, sequential)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parse_batch_matches_sequential_for_any_worker_count(
        workers in 1usize..=8,
        start in 0usize..40,
        len in 0usize..40,
    ) {
        let (parser, raws, sequential) = fixture();
        let end = (start + len).min(raws.len());
        let subset = &raws[start..end];

        let engine = ParseEngine::with_workers(parser.clone(), workers);
        let batch = engine.parse_batch(subset);
        prop_assert_eq!(&batch, &sequential[start..end]);

        // A second pass through the now-warm scratch pool must agree too.
        let (again, stats) = engine.parse_batch_with_stats(subset);
        prop_assert_eq!(&again, &sequential[start..end]);
        prop_assert_eq!(stats.records, subset.len());
    }
}
