//! Property tests for the line cache's contract: a cached parse is
//! **bit-identical** to an uncached one — for any records, any cache
//! capacity (including 0 = disabled and 1 = perpetual eviction), any
//! worker count, and across model hot swaps (a stale generation's
//! entries are never served).

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use whois_gen::corpus::{generate_corpus, GenConfig};
use whois_model::{BlockLabel, ParsedRecord, RawRecord, RegistrantLabel};
use whois_parser::{LineCache, ParseEngine, ParserConfig, TrainExample, WhoisParser};

fn train_on(seed: u64, count: usize, split: usize) -> (WhoisParser, Vec<RawRecord>) {
    let corpus = generate_corpus(GenConfig::new(seed, count));
    let (train, test) = corpus.split_at(split);
    let first: Vec<TrainExample<BlockLabel>> = train
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = train
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            if reg.is_empty() {
                return None;
            }
            Some(TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
    let raws: Vec<RawRecord> = test.iter().map(|d| d.raw()).collect();
    (parser, raws)
}

/// Two trained models (the "hot swap" pair) and a shared record pool
/// with each model's uncached outputs, trained once.
struct Fixture {
    model_a: WhoisParser,
    model_b: WhoisParser,
    raws: Vec<RawRecord>,
    uncached_a: Vec<ParsedRecord>,
    uncached_b: Vec<ParsedRecord>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (model_a, raws) = train_on(33, 160, 110);
        // A second model trained on different data: the swap target.
        // It must behave differently enough that serving a stale row
        // would be visible — different weights guarantee different
        // emission rows even when outputs agree.
        let (model_b, _) = train_on(57, 120, 90);
        let uncached_a: Vec<ParsedRecord> = raws.iter().map(|r| model_a.parse(r)).collect();
        let uncached_b: Vec<ParsedRecord> = raws.iter().map(|r| model_b.parse(r)).collect();
        Fixture {
            model_a,
            model_b,
            raws,
            uncached_a,
            uncached_b,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached ≡ uncached for any capacity (0, 1, tiny, large), shard
    /// count, worker count, and record subset — including a second pass
    /// over the warm cache.
    #[test]
    fn cached_parse_is_bit_identical_for_any_capacity_and_workers(
        // Fixed spread of capacities: disabled, perpetual-eviction,
        // several tiny (eviction-heavy), and one comfortably large.
        capacity in (0usize..8).prop_map(|i| [0usize, 1, 2, 3, 5, 11, 23, 4096][i]),
        shards in 1usize..5,
        workers in 1usize..=4,
        start in 0usize..30,
        len in 0usize..30,
    ) {
        let f = fixture();
        let end = (start + len).min(f.raws.len());
        let subset = &f.raws[start..end];
        let want = &f.uncached_a[start..end];

        let cache = Arc::new(LineCache::new(capacity, shards));
        let engine = ParseEngine::with_line_cache(f.model_a.clone(), workers, cache.clone());
        prop_assert_eq!(&engine.parse_batch(subset), want);
        // Warm-cache pass: hits (and, at tiny capacities, evictions)
        // must not change a single byte.
        prop_assert_eq!(&engine.parse_batch(subset), want);
        prop_assert!(cache.len() <= capacity.max(shards * capacity.div_ceil(shards.max(1))));
        if capacity == 0 {
            prop_assert_eq!(cache.stats().misses, 0, "disabled cache must not be consulted");
        }
    }

    /// A model hot swap over a *shared* cache: engines built before and
    /// after the generation bump each match their own model's uncached
    /// output, in any interleaving — stale-generation entries are never
    /// served.
    #[test]
    fn hot_swap_never_serves_stale_rows(
        capacity in (0usize..6).prop_map(|i| [1usize, 2, 7, 17, 31, 4096][i]),
        workers in 1usize..=3,
        start in 0usize..30,
        len in 1usize..25,
    ) {
        let f = fixture();
        let end = (start + len).min(f.raws.len());
        let subset = &f.raws[start..end];
        let want_a = &f.uncached_a[start..end];
        let want_b = &f.uncached_b[start..end];

        let cache = Arc::new(LineCache::new(capacity, 2));
        let engine_a = ParseEngine::with_line_cache(f.model_a.clone(), workers, cache.clone());
        prop_assert_eq!(engine_a.cache_generation(), 1);
        prop_assert_eq!(&engine_a.parse_batch(subset), want_a);

        // Hot swap: bump the shared cache's generation, then build the
        // new model's engine — exactly the registry's install order.
        cache.set_generation(2);
        let engine_b = ParseEngine::with_line_cache(f.model_b.clone(), workers, cache.clone());
        prop_assert_eq!(engine_b.cache_generation(), 2);
        prop_assert_eq!(&engine_b.parse_batch(subset), want_b);

        // The old engine is still in flight (requests that started
        // before the swap): it keeps producing its own model's output,
        // never reading generation-2 rows.
        prop_assert_eq!(&engine_a.parse_batch(subset), want_a);
        prop_assert_eq!(&engine_b.parse_batch(subset), want_b);
    }
}

/// Deterministic end-to-end check that single-record parses through the
/// cache agree with the plain parser for every record in the pool —
/// the `parse_one` path with its pooled, L1-carrying scratches.
#[test]
fn parse_one_through_cache_matches_plain_parse_for_every_record() {
    let f = fixture();
    let engine =
        ParseEngine::with_line_cache(f.model_a.clone(), 2, Arc::new(LineCache::new(64, 2)));
    for (raw, want) in f.raws.iter().zip(&f.uncached_a) {
        assert_eq!(&engine.parse_one(raw), want);
    }
    // And again over the warm cache/L1s.
    for (raw, want) in f.raws.iter().zip(&f.uncached_a) {
        assert_eq!(&engine.parse_one(raw), want);
    }
    let stats = engine.line_cache().stats();
    assert!(stats.l1_hits + stats.l2_hits > 0, "{stats:?}");
}
