//! End-to-end byte-identity under `WHOIS_FORCE_SCALAR=1`.
//!
//! This file is its own test binary — its own process — so forcing the
//! override here cannot leak into other suites. Every test sets the
//! variable before the first kernel touch; `KernelLevel::active()` then
//! caches the forced scalar level for the whole process. Explicitly
//! compiled levels bypass the process default (that is their point), so
//! one process can compare forced-scalar output against every SIMD
//! level byte for byte.

use std::sync::Arc;
use whois_gen::corpus::{generate_corpus, GenConfig};
use whois_model::{BlockLabel, RawRecord, RegistrantLabel};
use whois_parser::{
    DecodeCounters, DecodeTier, KernelLevel, LineCache, ParseEngine, ParserConfig, TrainExample,
    WhoisParser,
};

/// Install the override and confirm the process-wide level honors it.
/// Safe to call from every test: all callers set the same value, and
/// `active()` caches on first use.
fn force_scalar() {
    std::env::set_var("WHOIS_FORCE_SCALAR", "1");
    assert_eq!(
        KernelLevel::active(),
        KernelLevel::Scalar,
        "WHOIS_FORCE_SCALAR=1 must pin the active kernel to scalar"
    );
}

fn train_on(seed: u64, count: usize, split: usize) -> (WhoisParser, Vec<RawRecord>) {
    let corpus = generate_corpus(GenConfig::new(seed, count));
    let (train, test) = corpus.split_at(split);
    let first: Vec<TrainExample<BlockLabel>> = train
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = train
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            if reg.is_empty() {
                return None;
            }
            Some(TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
    let raws: Vec<RawRecord> = test.iter().map(|d| d.raw()).collect();
    (parser, raws)
}

/// A fast-tier engine with the line cache disabled, so every record
/// exercises the decode tier (and its kernels).
fn fast_engine(parser: WhoisParser, workers: usize) -> ParseEngine {
    ParseEngine::with_decode_tier(
        parser,
        workers,
        Arc::new(LineCache::disabled()),
        DecodeTier::Fast,
        Arc::new(DecodeCounters::new()),
    )
}

/// Forced-scalar fast-tier parses are byte-identical to the exact `f64`
/// engine for every requested worker count 1–4.
#[test]
fn forced_scalar_replies_are_byte_identical_across_workers() {
    force_scalar();
    let (parser, records) = train_on(211, 120, 90);
    let want: Vec<String> = records
        .iter()
        .map(|r| serde_json::to_string(&parser.parse(r)).unwrap())
        .collect();
    for workers in 1..=4 {
        let engine = fast_engine(parser.clone(), workers);
        assert_eq!(engine.kernel_level(), KernelLevel::Scalar);
        let got: Vec<String> = engine
            .parse_batch(&records)
            .iter()
            .map(|p| serde_json::to_string(p).unwrap())
            .collect();
        assert_eq!(got, want, "workers = {workers}");
    }
}

/// Every explicitly compiled SIMD level produces the same bytes as the
/// forced-scalar engine — the on/off differential in one process.
#[test]
fn explicit_simd_levels_match_forced_scalar_bytes() {
    force_scalar();
    let (parser, records) = train_on(212, 110, 80);
    let scalar = fast_engine(parser.clone(), 1);
    let want: Vec<String> = scalar
        .parse_batch(&records)
        .iter()
        .map(|p| serde_json::to_string(p).unwrap())
        .collect();
    for &level in &KernelLevel::ALL {
        for workers in 1..=4 {
            let engine = fast_engine(parser.clone(), workers).with_kernel_level(level);
            let got: Vec<String> = engine
                .parse_batch(&records)
                .iter()
                .map(|p| serde_json::to_string(p).unwrap())
                .collect();
            assert_eq!(got, want, "level {} workers {workers}", level.name());
        }
    }
}

/// A model hot swap (new parser through the same records) stays
/// byte-identical between forced scalar and every explicit SIMD level.
#[test]
fn hot_swap_stays_byte_identical_under_forced_scalar() {
    force_scalar();
    let (parser_v1, records) = train_on(213, 100, 70);
    let (parser_v2, _) = train_on(214, 100, 70);
    for parser in [parser_v1, parser_v2] {
        let want: Vec<String> = fast_engine(parser.clone(), 2)
            .parse_batch(&records)
            .iter()
            .map(|p| serde_json::to_string(p).unwrap())
            .collect();
        for &level in &KernelLevel::ALL {
            let engine = fast_engine(parser.clone(), 2).with_kernel_level(level);
            let got: Vec<String> = engine
                .parse_batch(&records)
                .iter()
                .map(|p| serde_json::to_string(p).unwrap())
                .collect();
            assert_eq!(got, want, "level {} after swap", level.name());
        }
    }
}
