//! Property tests for the fast decode tier's contract: a fast-tier
//! parse is **byte-identical** to the exact engine's — for any records,
//! any worker count, with or without a line cache, across model hot
//! swaps, and under forced margin-guard fallback.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use whois_gen::corpus::{generate_corpus, GenConfig};
use whois_model::{BlockLabel, ParsedRecord, RawRecord, RegistrantLabel};
use whois_parser::{
    DecodeCounters, DecodeTier, FastParser, FastScratch, LineCache, ParseEngine, ParserConfig,
    TrainExample, WhoisParser, DEFAULT_MARGIN_GUARD,
};

fn train_on(seed: u64, count: usize, split: usize) -> (WhoisParser, Vec<RawRecord>) {
    let corpus = generate_corpus(GenConfig::new(seed, count));
    let (train, test) = corpus.split_at(split);
    let first: Vec<TrainExample<BlockLabel>> = train
        .iter()
        .map(|d| TrainExample {
            text: d.rendered.text(),
            labels: d.block_labels().labels(),
        })
        .collect();
    let second: Vec<TrainExample<RegistrantLabel>> = train
        .iter()
        .filter_map(|d| {
            let reg = d.registrant_labels();
            if reg.is_empty() {
                return None;
            }
            Some(TrainExample {
                text: reg.texts().join("\n"),
                labels: reg.labels(),
            })
        })
        .collect();
    let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
    let raws: Vec<RawRecord> = test.iter().map(|d| d.raw()).collect();
    (parser, raws)
}

struct Fixture {
    model_a: WhoisParser,
    model_b: WhoisParser,
    raws: Vec<RawRecord>,
    exact_a: Vec<ParsedRecord>,
    exact_b: Vec<ParsedRecord>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (model_a, raws) = train_on(41, 160, 110);
        let (model_b, _) = train_on(63, 120, 90);
        let exact_a: Vec<ParsedRecord> = raws.iter().map(|r| model_a.parse(r)).collect();
        let exact_b: Vec<ParsedRecord> = raws.iter().map(|r| model_b.parse(r)).collect();
        Fixture {
            model_a,
            model_b,
            raws,
            exact_a,
            exact_b,
        }
    })
}

fn fast_engine(model: &WhoisParser, workers: usize, cache: Arc<LineCache>) -> ParseEngine {
    ParseEngine::with_decode_tier(
        model.clone(),
        workers,
        cache,
        DecodeTier::Fast,
        Arc::new(DecodeCounters::new()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast-tier engine output ≡ exact output for any worker count and
    /// record subset. The cache is disabled so every record takes the
    /// fast tier.
    #[test]
    fn fast_tier_parse_is_byte_identical(
        workers in 1usize..=4,
        start in 0usize..30,
        len in 0usize..30,
    ) {
        let f = fixture();
        let end = (start + len).min(f.raws.len());
        let subset = &f.raws[start..end];
        let want = &f.exact_a[start..end];

        let engine = fast_engine(&f.model_a, workers, Arc::new(LineCache::disabled()));
        prop_assert!(engine.fast_tier_active());
        prop_assert_eq!(&engine.parse_batch(subset), want);
        // Second pass through the same pooled scratches: reused banks
        // and stamps must not leak state between records.
        prop_assert_eq!(&engine.parse_batch(subset), want);
        let c = engine.decode_counters();
        prop_assert!(c.fast_decodes() + c.exact_fallbacks() >= subset.len() as u64 * 2);
    }

    /// First-level label agreement, checked directly on the compiled
    /// tier against the f64 engine (no extraction layer in between).
    #[test]
    fn fast_labels_match_exact_labels(idx in 0usize..50) {
        let f = fixture();
        let raw = &f.raws[idx % f.raws.len()];
        let fast = FastParser::compile(&f.model_a).expect("default options compile");
        let mut scratch = FastScratch::new();
        if let Some(labels) = fast
            .first_level()
            .predict::<BlockLabel>(&raw.text, &mut scratch, DEFAULT_MARGIN_GUARD)
        {
            prop_assert_eq!(labels, f.model_a.label_blocks(&raw.text));
        }
        // A margin under the guard is legitimate (the engine would fall
        // back); anything returned must agree exactly.
    }

    /// A model hot swap over a shared cache: each engine's fast tier is
    /// compiled from its own model and keeps matching that model's
    /// exact output before and after the generation bump.
    #[test]
    fn fast_tier_survives_hot_swap(
        workers in 1usize..=3,
        start in 0usize..30,
        len in 1usize..25,
    ) {
        let f = fixture();
        let end = (start + len).min(f.raws.len());
        let subset = &f.raws[start..end];

        let cache = Arc::new(LineCache::new(64, 2));
        let engine_a = fast_engine(&f.model_a, workers, cache.clone());
        prop_assert_eq!(&engine_a.parse_batch(subset), &f.exact_a[start..end]);

        // Install order: bump the generation, then build the new
        // engine — its DecodeModel is compiled fresh from model B.
        cache.set_generation(2);
        let engine_b = fast_engine(&f.model_b, workers, cache.clone());
        prop_assert_eq!(engine_b.cache_generation(), 2);
        prop_assert_eq!(&engine_b.parse_batch(subset), &f.exact_b[start..end]);
        // The pre-swap engine still serves its own model's output.
        prop_assert_eq!(&engine_a.parse_batch(subset), &f.exact_a[start..end]);
    }
}

/// Degenerate records: empty text, blank-only, and single-line records
/// take the fast tier without drama and agree with the exact engine.
#[test]
fn degenerate_records_agree() {
    let f = fixture();
    let engine = fast_engine(&f.model_a, 1, Arc::new(LineCache::disabled()));
    for text in [
        "",
        "\n\n\n",
        "   \n\t\n",
        "single line",
        "Domain Name: X.COM\n",
    ] {
        let raw = RawRecord {
            domain: "x.com".into(),
            text: text.to_string(),
        };
        assert_eq!(engine.parse_one(&raw), f.model_a.parse(&raw), "{text:?}");
    }
}

/// Margin-guard fallback: an infinite guard makes every fast decode a
/// near-tie by definition — every record must fall back to the exact
/// engine and the served output stays byte-identical.
#[test]
fn forced_fallback_is_byte_identical_and_counted() {
    let f = fixture();
    let engine = fast_engine(&f.model_a, 2, Arc::new(LineCache::disabled()))
        .with_margin_guard(f32::INFINITY);
    assert_eq!(engine.parse_batch(&f.raws), f.exact_a);
    let c = engine.decode_counters();
    assert_eq!(c.fast_decodes(), 0, "infinite guard admits nothing");
    assert!(c.exact_fallbacks() >= f.raws.len() as u64);
    assert_eq!(c.fallback_rate(), 1.0);
}

/// A crafted exact near-tie: with all-zero weights every path scores
/// identically, the decode margin is 0, and even the default guard
/// rejects the fast decode.
#[test]
fn zero_weight_near_tie_triggers_fallback() {
    let f = fixture();
    let mut model = f.model_a.clone();
    // Zero both levels' weights in place: every label sequence now ties.
    for w in model.first_level_mut().crf_mut().weights_mut() {
        *w = 0.0;
    }
    for w in model.second_level_mut().crf_mut().weights_mut() {
        *w = 0.0;
    }
    let fast = FastParser::compile(&model).unwrap();
    let mut scratch = FastScratch::new();
    let raw = &f.raws[0];
    assert!(
        fast.first_level()
            .predict::<BlockLabel>(&raw.text, &mut scratch, DEFAULT_MARGIN_GUARD)
            .is_none(),
        "an exact tie must fall under the margin guard"
    );
    // End to end the tie still parses — on the exact engine — and the
    // fallback is visible in the counters.
    let engine = fast_engine(&model, 1, Arc::new(LineCache::disabled()));
    let want = model.parse(raw);
    assert_eq!(engine.parse_one(raw), want);
    assert!(engine.decode_counters().exact_fallbacks() > 0);
}

/// Exact-tier engines never touch the fast counters.
#[test]
fn exact_tier_engine_reports_inactive_fast_tier() {
    let f = fixture();
    let engine = ParseEngine::with_workers(f.model_a.clone(), 1);
    assert_eq!(engine.decode_tier(), DecodeTier::Exact);
    assert!(!engine.fast_tier_active());
    let _ = engine.parse_one(&f.raws[0]);
    let c = engine.decode_counters();
    assert_eq!((c.fast_decodes(), c.exact_fallbacks()), (0, 0));
    assert_eq!(c.fallback_rate(), 0.0);
}

/// The adaptive cache bypass preserves byte identity: a cache with an
/// aggressive floor over low-hit-rate traffic steers records to the
/// fast tier mid-batch, and the output must not change.
#[test]
fn bypassing_cache_engine_stays_byte_identical() {
    let f = fixture();
    // Tiny cache + max floor: the bypass engages as soon as the first
    // epoch closes, whatever the corpus' natural hit rate.
    let cache = Arc::new(LineCache::new(32, 2).with_bypass_floor(1.0));
    let engine = fast_engine(&f.model_a, 2, cache.clone());
    for _ in 0..3 {
        assert_eq!(engine.parse_batch(&f.raws), f.exact_a);
    }
    let stats = cache.stats();
    assert!(
        stats.bypassed_records > 0,
        "floor 1.0 should have bypassed something: {stats:?}"
    );
}
