//! Batch parsing engine: a trained parser plus a pool of per-worker
//! scratches.
//!
//! [`WhoisParser::parse`] allocates its working buffers per call; at
//! crawl scale (the paper parses 102M records) those allocations
//! dominate. [`ParseEngine`] owns the parser together with a pool of
//! [`ParseScratch`]es so that
//!
//! * [`ParseEngine::parse_one`] decodes a record with buffers checked
//!   out of the pool — steady-state parsing performs no per-feature
//!   `String` allocation, and the DP lattices are reused at high-water
//!   capacity; and
//! * [`ParseEngine::parse_batch`] fans a slice of records out over
//!   `crossbeam` scoped threads (the same idiom as the trainer's
//!   parallel objective), one scratch per worker, preserving input
//!   order.
//!
//! Results are identical to calling [`WhoisParser::parse`] in a loop —
//! the engine only changes where buffers live and which thread decodes
//! which record.

use crate::fast::{FastParser, FastScratch, DEFAULT_MARGIN_GUARD};
use crate::line_cache::{CachedLine, LineCache};
use crate::parser::WhoisParser;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whois_crf::{InferenceScratch, KernelLevel};
use whois_model::{ParsedRecord, RawRecord};
use whois_tokenize::AnnotateScratch;

/// Reusable buffers for one parsing worker: annotation interner,
/// inference lattices, spare sequence rows, and the worker's private
/// line-cache L1.
#[derive(Default, Debug)]
pub struct ParseScratch {
    /// Feature composition buffers and dedup interner.
    pub(crate) annotate: AnnotateScratch,
    /// Score table, α/β/marginal/Viterbi lattices.
    pub(crate) infer: InferenceScratch,
    /// Spent sequence rows, recycled into the next encode.
    pub(crate) rows: Vec<Vec<u32>>,
    /// Per-worker L1 over the shared line cache: repeat lines within
    /// this worker's stream hit without taking any lock. Entries are
    /// keyed by the same composed key as the L2, so they are implicitly
    /// generation- and level-scoped.
    pub(crate) l1: HashMap<u64, Arc<CachedLine>>,
    /// The current record's per-line cache entries, in line order.
    pub(crate) entries: Vec<Arc<CachedLine>>,
    /// Emission-row staging buffer for line-cache misses.
    pub(crate) emit_row: Vec<f64>,
    /// Edge-row staging buffer for line-cache misses.
    pub(crate) edge_row: Vec<f64>,
    /// Indices of the registrant block's lines (reused per record).
    pub(crate) reg_idx: Vec<usize>,
    /// Join buffer for the registrant block text (reused per record).
    pub(crate) block_text: String,
    /// Fast-tier banks and decode scratch (see [`crate::fast`]).
    pub(crate) fast: FastScratch,
}

impl ParseScratch {
    /// New empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Throughput report for one [`ParseEngine::parse_batch_with_stats`]
/// call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Records parsed.
    pub records: usize,
    /// Non-empty lines labeled across both levels' first pass.
    pub lines_labeled: usize,
    /// Records in which a non-empty registrant contact was extracted.
    pub registrant_blocks: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchStats {
    /// Records parsed per second of wall-clock time.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.records as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    fn absorb(&mut self, parsed: &ParsedRecord) {
        self.records += 1;
        self.lines_labeled += parsed.blocks.values().map(Vec::len).sum::<usize>();
        if parsed.has_registrant() {
            self.registrant_blocks += 1;
        }
    }

    /// Accumulate another report — e.g. successive chunks of a crawl
    /// pipeline. Counts add; `elapsed` sums; `workers` keeps the max.
    pub fn merge(&mut self, other: &BatchStats) {
        self.records += other.records;
        self.lines_labeled += other.lines_labeled;
        self.registrant_blocks += other.registrant_blocks;
        self.workers = self.workers.max(other.workers);
        self.elapsed += other.elapsed;
    }
}

/// Which engine decodes records that miss (or bypass) the line cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DecodeTier {
    /// The `f64` reference engine: tokenize → dictionary → `ScoreTable`
    /// → Viterbi. Always available; always exact.
    #[default]
    Exact,
    /// The compiled fast tier ([`crate::fast`]): pruned/quantized `f32`
    /// SoA weights, fused tokenize-and-score, batched Viterbi over the
    /// record's unique lines. Low-margin records transparently re-decode
    /// on the exact engine, so parse output is byte-identical.
    Fast,
}

impl DecodeTier {
    /// Parse a CLI/config spelling (`"fast"` / `"exact"`).
    pub fn parse(s: &str) -> Option<DecodeTier> {
        match s {
            "fast" => Some(DecodeTier::Fast),
            "exact" => Some(DecodeTier::Exact),
            _ => None,
        }
    }

    /// The CLI/config spelling.
    pub fn name(self) -> &'static str {
        match self {
            DecodeTier::Exact => "exact",
            DecodeTier::Fast => "fast",
        }
    }
}

/// Shared counters of fast-tier decode outcomes. One `Arc` of these can
/// outlive individual engines (the serve registry keeps its counters
/// across model hot swaps).
#[derive(Debug, Default)]
pub struct DecodeCounters {
    fast_decodes: AtomicU64,
    exact_fallbacks: AtomicU64,
}

impl DecodeCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Level decodes completed on the fast tier.
    pub fn fast_decodes(&self) -> u64 {
        self.fast_decodes.load(Ordering::Relaxed)
    }

    /// Level decodes that fell back to the exact engine (decode margin
    /// under the guard threshold).
    pub fn exact_fallbacks(&self) -> u64 {
        self.exact_fallbacks.load(Ordering::Relaxed)
    }

    /// `exact_fallbacks / (fast_decodes + exact_fallbacks)`, 0.0 before
    /// any fast-tier decode.
    pub fn fallback_rate(&self) -> f64 {
        let fast = self.fast_decodes();
        let fallback = self.exact_fallbacks();
        let total = fast + fallback;
        if total > 0 {
            fallback as f64 / total as f64
        } else {
            0.0
        }
    }

    pub(crate) fn record(&self, fell_back: bool) {
        if fell_back {
            self.exact_fallbacks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fast_decodes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A trained [`WhoisParser`] wired for high-throughput batch parsing.
#[derive(Debug)]
pub struct ParseEngine {
    parser: WhoisParser,
    workers: usize,
    pool: Mutex<Vec<ParseScratch>>,
    /// Scratches retained at check-in; starts at `workers` and is only
    /// raised by explicit [`warm`](Self::warm) calls, so concurrent
    /// `parse_one` bursts can't grow the pool without bound.
    pool_cap: AtomicUsize,
    /// Shared L2 line cache (see [`LineCache`]); disabled caches make
    /// every parse take the plain uncached path.
    cache: Arc<LineCache>,
    /// The cache generation this engine's entries belong to, captured
    /// at construction (the serve registry bumps the cache's generation
    /// before building the engine for a newly installed model).
    generation: u64,
    /// Requested decode tier for uncached records.
    tier: DecodeTier,
    /// The compiled fast tier; `None` when the tier is [`DecodeTier::Exact`]
    /// or the model's feature options fall outside the fast tier's
    /// exactness envelope (see [`crate::fast`]).
    fast: Option<FastParser>,
    /// Decode margin under which a fast-tier decode re-runs exactly.
    guard: f32,
    /// Fast-tier outcome counters (shared; survives engine rebuilds).
    counters: Arc<DecodeCounters>,
}

impl ParseEngine {
    /// Wrap a trained parser, using all available parallelism for
    /// batches.
    pub fn new(parser: WhoisParser) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(parser, workers)
    }

    /// Wrap a trained parser with an explicit batch worker count
    /// (`0` means use available parallelism) and a private
    /// default-capacity line cache.
    pub fn with_workers(parser: WhoisParser, workers: usize) -> Self {
        Self::with_line_cache(
            parser,
            workers,
            Arc::new(LineCache::with_default_capacity()),
        )
    }

    /// Wrap a trained parser with an explicit worker count and a shared
    /// [`LineCache`]. The engine memoizes under the cache's *current*
    /// generation; callers swapping models over a shared cache must bump
    /// its generation before constructing the next engine. Pass
    /// [`LineCache::disabled`] for the uncached baseline engine.
    pub fn with_line_cache(parser: WhoisParser, workers: usize, cache: Arc<LineCache>) -> Self {
        Self::with_decode_tier(
            parser,
            workers,
            cache,
            DecodeTier::Exact,
            Arc::new(DecodeCounters::new()),
        )
    }

    /// [`with_line_cache`](Self::with_line_cache) plus an explicit
    /// [`DecodeTier`] for records that miss or bypass the cache, and a
    /// caller-shared [`DecodeCounters`]. Requesting [`DecodeTier::Fast`]
    /// compiles the model's fast tier at construction; if the model's
    /// feature options are outside the fast tier's envelope the engine
    /// silently stays exact ([`fast_tier_active`](Self::fast_tier_active)
    /// reports the outcome).
    pub fn with_decode_tier(
        parser: WhoisParser,
        workers: usize,
        cache: Arc<LineCache>,
        tier: DecodeTier,
        counters: Arc<DecodeCounters>,
    ) -> Self {
        // Clamp to the host's actual parallelism: oversubscribing a
        // small host with more batch threads than cores only adds
        // scheduling churn (the `batch_parse` bench measured 0.89x at
        // `workers=4` on one core).
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = if workers == 0 {
            available
        } else {
            workers.min(available)
        };
        let generation = cache.generation();
        let fast = match tier {
            DecodeTier::Fast => FastParser::compile(&parser),
            DecodeTier::Exact => None,
        };
        ParseEngine {
            parser,
            workers,
            pool: Mutex::new(Vec::new()),
            pool_cap: AtomicUsize::new(workers),
            cache,
            generation,
            tier,
            fast,
            guard: DEFAULT_MARGIN_GUARD,
            counters,
        }
    }

    /// Override the decode-margin guard (testing hook: `f32::INFINITY`
    /// forces every fast-tier decode to fall back).
    pub fn with_margin_guard(mut self, guard: f32) -> Self {
        self.guard = guard;
        self
    }

    /// Recompile the fast tier with an explicit [`KernelLevel`]
    /// (testing/benchmarking hook; levels are bit-exact, so this never
    /// changes parse output, only speed). No-op when the engine has no
    /// fast tier; the exact `f64` path always dispatches on the
    /// process-wide [`KernelLevel::active`].
    pub fn with_kernel_level(mut self, kernel: KernelLevel) -> Self {
        if self.fast.is_some() {
            self.fast = FastParser::compile_with_kernel(&self.parser, kernel);
        }
        self
    }

    /// The SIMD kernel level this engine's decodes dispatch to: the fast
    /// tier's compiled level when one is active, otherwise the
    /// process-wide [`KernelLevel::active`].
    pub fn kernel_level(&self) -> KernelLevel {
        self.fast
            .as_ref()
            .map_or_else(KernelLevel::active, FastParser::kernel_level)
    }

    /// The requested decode tier.
    pub fn decode_tier(&self) -> DecodeTier {
        self.tier
    }

    /// Whether the fast tier actually compiled and serves decodes.
    pub fn fast_tier_active(&self) -> bool {
        self.fast.is_some()
    }

    /// The fast-tier outcome counters.
    pub fn decode_counters(&self) -> &Arc<DecodeCounters> {
        &self.counters
    }

    /// The engine's line cache.
    pub fn line_cache(&self) -> &Arc<LineCache> {
        &self.cache
    }

    /// The cache generation this engine memoizes under.
    pub fn cache_generation(&self) -> u64 {
        self.generation
    }

    /// The wrapped parser.
    pub fn parser(&self) -> &WhoisParser {
        &self.parser
    }

    /// The batch worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Unwrap the engine, recovering the parser.
    pub fn into_parser(self) -> WhoisParser {
        self.parser
    }

    /// Pre-populate the scratch pool with `n` scratches so the first
    /// requests of a long-running service don't pay the cold-start
    /// allocations. Buffers still grow to their high-water marks on
    /// first use; warming just guarantees `n` concurrent callers find a
    /// scratch to check out. Warming above the worker count raises the
    /// pool's retention cap to `n` — the caller is declaring that many
    /// concurrent users.
    pub fn warm(&self, n: usize) {
        self.pool_cap.fetch_max(n, Ordering::Relaxed);
        let mut pool = self.pool.lock();
        while pool.len() < n {
            pool.push(ParseScratch::new());
        }
    }

    /// Scratches currently checked in (pool size).
    pub fn pooled_scratches(&self) -> usize {
        self.pool.lock().len()
    }

    fn checkout(&self) -> ParseScratch {
        self.pool.lock().pop().unwrap_or_default()
    }

    /// Return a scratch to the pool, dropping it instead when the pool
    /// is already at its cap — otherwise a burst of concurrent
    /// `parse_one` callers would leak high-water scratches (and their
    /// grown buffers) for the lifetime of the engine.
    fn checkin(&self, scratch: ParseScratch) {
        let mut pool = self.pool.lock();
        if pool.len() < self.pool_cap.load(Ordering::Relaxed) {
            pool.push(scratch);
        }
    }

    fn parse_into(&self, record: &RawRecord, scratch: &mut ParseScratch) -> ParsedRecord {
        if self.cache.enabled() && self.cache.admit_record() {
            return self
                .parser
                .parse_cached(record, scratch, &self.cache, self.generation);
        }
        if let Some(fast) = &self.fast {
            return self
                .parser
                .parse_fast(record, scratch, fast, self.guard, &self.counters);
        }
        self.parser.parse_with(record, scratch)
    }

    /// Parse one record with pooled buffers.
    pub fn parse_one(&self, record: &RawRecord) -> ParsedRecord {
        let mut scratch = self.checkout();
        let parsed = self.parse_into(record, &mut scratch);
        self.checkin(scratch);
        parsed
    }

    /// [`parse_one`](Self::parse_one) that also exports the per-record
    /// confidence the serving drift monitor feeds on. Routes around the
    /// line cache (the memoized path decodes without marginals): the
    /// fast tier's decode margin when one is active, otherwise the mean
    /// first-level posterior marginal on the exact engine — see
    /// [`WhoisParser::parse_fast_confident`]. The parse output matches
    /// [`parse_one`](Self::parse_one) byte for byte.
    pub fn parse_one_confident(&self, record: &RawRecord) -> (ParsedRecord, f64) {
        let mut scratch = self.checkout();
        let out = match &self.fast {
            Some(fast) => self.parser.parse_fast_confident(
                record,
                &mut scratch,
                fast,
                self.guard,
                &self.counters,
            ),
            None => self.parser.parse_with_confidence(record, &mut scratch),
        };
        self.checkin(scratch);
        out
    }

    /// Parse a batch in parallel, preserving input order.
    pub fn parse_batch(&self, records: &[RawRecord]) -> Vec<ParsedRecord> {
        self.parse_batch_with_stats(records).0
    }

    /// Parse a batch in parallel and report throughput statistics.
    pub fn parse_batch_with_stats(&self, records: &[RawRecord]) -> (Vec<ParsedRecord>, BatchStats) {
        let start = Instant::now();
        let workers = self.workers.min(records.len()).max(1);
        let mut stats = BatchStats {
            workers,
            ..BatchStats::default()
        };
        let mut out = Vec::with_capacity(records.len());
        if workers <= 1 {
            let mut scratch = self.checkout();
            for record in records {
                let parsed = self.parse_into(record, &mut scratch);
                stats.absorb(&parsed);
                out.push(parsed);
            }
            self.checkin(scratch);
        } else {
            let chunk_size = records.len().div_ceil(workers);
            let results: Vec<(Vec<ParsedRecord>, BatchStats)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = records
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            let mut scratch = self.checkout();
                            let mut local = BatchStats::default();
                            let parsed: Vec<ParsedRecord> = chunk
                                .iter()
                                .map(|record| {
                                    let p = self.parse_into(record, &mut scratch);
                                    local.absorb(&p);
                                    p
                                })
                                .collect();
                            self.checkin(scratch);
                            (parsed, local)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("parse worker panicked");
            for (parsed, local) in results {
                stats.merge(&local);
                out.extend(parsed);
            }
        }
        stats.elapsed = start.elapsed();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::TrainExample;
    use crate::level::ParserConfig;
    use whois_gen::corpus::{generate_corpus, GenConfig, GeneratedDomain};
    use whois_model::{BlockLabel, RegistrantLabel};

    fn trained_engine(workers: usize) -> (ParseEngine, Vec<GeneratedDomain>) {
        let corpus = generate_corpus(GenConfig::new(77, 140));
        let (train_set, test_set) = corpus.split_at(100);
        let first: Vec<TrainExample<BlockLabel>> = train_set
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let second: Vec<TrainExample<RegistrantLabel>> = train_set
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                if reg.is_empty() {
                    return None;
                }
                Some(TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
        (
            ParseEngine::with_workers(parser, workers),
            test_set.to_vec(),
        )
    }

    #[test]
    fn parse_one_matches_plain_parse() {
        let (engine, test) = trained_engine(2);
        for d in test.iter().take(10) {
            let raw = d.raw();
            assert_eq!(engine.parse_one(&raw), engine.parser().parse(&raw));
            // Twice through the pool: reused buffers must not leak state.
            assert_eq!(engine.parse_one(&raw), engine.parser().parse(&raw));
        }
    }

    #[test]
    fn parse_batch_preserves_order_and_matches_sequential() {
        let (engine, test) = trained_engine(4);
        let records: Vec<_> = test.iter().map(|d| d.raw()).collect();
        let sequential: Vec<_> = records.iter().map(|r| engine.parser().parse(r)).collect();
        for workers in [1, 2, 4] {
            let engine = ParseEngine::with_workers(engine.parser().clone(), workers);
            let (batch, stats) = engine.parse_batch_with_stats(&records);
            assert_eq!(batch, sequential, "workers = {workers}");
            assert_eq!(stats.records, records.len());
            // Requested workers are clamped to the host's cores before
            // the per-batch record clamp.
            assert_eq!(stats.workers, engine.workers().min(records.len()));
            assert!(engine.workers() <= workers);
        }
    }

    #[test]
    fn batch_stats_count_lines_and_registrants() {
        let (engine, test) = trained_engine(3);
        let records: Vec<_> = test.iter().map(|d| d.raw()).collect();
        let (batch, stats) = engine.parse_batch_with_stats(&records);
        let want_lines: usize = records.iter().map(|r| r.lines().len()).sum();
        let want_reg = batch.iter().filter(|p| p.has_registrant()).count();
        assert_eq!(stats.lines_labeled, want_lines);
        assert_eq!(stats.registrant_blocks, want_reg);
        assert!(stats.records_per_sec() > 0.0);
        assert!(stats.elapsed > Duration::ZERO);
    }

    #[test]
    fn warm_populates_pool_and_parsing_reuses_it() {
        let (engine, test) = trained_engine(2);
        engine.warm(3);
        assert_eq!(engine.pooled_scratches(), 3);
        let raw = test[0].raw();
        let _ = engine.parse_one(&raw);
        // Checked out and back in: pool size unchanged.
        assert_eq!(engine.pooled_scratches(), 3);
        // Warming never shrinks the pool.
        engine.warm(1);
        assert_eq!(engine.pooled_scratches(), 3);
    }

    #[test]
    fn checkin_never_grows_pool_past_worker_count() {
        let (engine, test) = trained_engine(2);
        let records: Vec<_> = test.iter().map(|d| d.raw()).collect();
        // 8 concurrent parse_one callers on a 2-worker engine: each
        // checks out a fresh scratch (pool is empty), but check-in
        // retains at most `workers` of them.
        std::thread::scope(|scope| {
            for w in 0..8 {
                let engine = &engine;
                let records = &records;
                scope.spawn(move || {
                    for r in records.iter().skip(w % 4).take(6) {
                        let _ = engine.parse_one(r);
                    }
                });
            }
        });
        assert!(
            engine.pooled_scratches() <= engine.workers(),
            "pool {} exceeds workers {}",
            engine.pooled_scratches(),
            engine.workers()
        );
        // Sequential traffic keeps it bounded too.
        for r in records.iter().take(5) {
            let _ = engine.parse_one(r);
        }
        assert!(engine.pooled_scratches() <= engine.workers());
    }

    #[test]
    fn cached_engine_matches_uncached_engine_and_counts_hits() {
        let (engine, test) = trained_engine(1);
        let records: Vec<_> = test.iter().map(|d| d.raw()).collect();
        let uncached = ParseEngine::with_line_cache(
            engine.parser().clone(),
            1,
            Arc::new(LineCache::disabled()),
        );
        assert!(engine.line_cache().enabled());
        assert!(!uncached.line_cache().enabled());
        let want = uncached.parse_batch(&records);
        // Two passes through the cached engine: the second is hit-heavy
        // and must still be bit-identical.
        assert_eq!(engine.parse_batch(&records), want);
        assert_eq!(engine.parse_batch(&records), want);
        let stats = engine.line_cache().stats();
        assert!(stats.misses > 0, "{stats:?}");
        assert!(
            stats.l1_hits + stats.l2_hits > stats.misses,
            "second pass should be dominated by hits: {stats:?}"
        );
        assert!(stats.entries > 0 && stats.hit_rate > 0.0);
        let none = uncached.line_cache().stats();
        assert_eq!((none.l1_hits, none.l2_hits, none.misses), (0, 0, 0));
    }

    #[test]
    fn parse_one_confident_matches_parse_and_scores_sanely() {
        let (engine, test) = trained_engine(1);
        // Exercise both routes: the exact-tier engine and a fast-tier one.
        let fast = ParseEngine::with_decode_tier(
            engine.parser().clone(),
            1,
            Arc::new(LineCache::disabled()),
            DecodeTier::Fast,
            Arc::new(DecodeCounters::new()),
        );
        assert!(fast.fast_tier_active());
        let mut high = 0usize;
        for d in test.iter().take(20) {
            let raw = d.raw();
            let want = engine.parser().parse(&raw);
            for eng in [&engine, &fast] {
                let (parsed, confidence) = eng.parse_one_confident(&raw);
                assert_eq!(parsed, want, "confident parse must not change output");
                assert!(
                    (0.0..=1.0).contains(&confidence),
                    "confidence {confidence} out of range"
                );
                if confidence > 0.5 {
                    high += 1;
                }
            }
        }
        assert!(
            high >= 30,
            "held-out in-format records should be confident: {high}/40"
        );
    }

    #[test]
    fn drifted_records_score_lower_confidence_than_clean() {
        // The drift monitor's premise: a schema the model never saw
        // yields lower per-record confidence than the training schemas.
        let (engine, _) = trained_engine(1);
        let clean = generate_corpus(GenConfig::new(555, 60));
        let drifted = generate_corpus(GenConfig {
            drift_fraction: 1.0,
            ..GenConfig::new(555, 60)
        });
        let mean = |set: &[GeneratedDomain]| {
            let sum: f64 = set
                .iter()
                .map(|d| engine.parse_one_confident(&d.raw()).1)
                .sum();
            sum / set.len() as f64
        };
        let clean_mean = mean(&clean);
        let drifted_mean = mean(&drifted);
        assert!(
            drifted_mean < clean_mean,
            "drifted {drifted_mean} should score below clean {clean_mean}"
        );
    }

    #[test]
    fn empty_batch_is_benign() {
        let (engine, _) = trained_engine(2);
        let (batch, stats) = engine.parse_batch_with_stats(&[]);
        assert!(batch.is_empty());
        assert_eq!(stats.records, 0);
    }
}
