//! Batch parsing engine: a trained parser plus a pool of per-worker
//! scratches.
//!
//! [`WhoisParser::parse`] allocates its working buffers per call; at
//! crawl scale (the paper parses 102M records) those allocations
//! dominate. [`ParseEngine`] owns the parser together with a pool of
//! [`ParseScratch`]es so that
//!
//! * [`ParseEngine::parse_one`] decodes a record with buffers checked
//!   out of the pool — steady-state parsing performs no per-feature
//!   `String` allocation, and the DP lattices are reused at high-water
//!   capacity; and
//! * [`ParseEngine::parse_batch`] fans a slice of records out over
//!   `crossbeam` scoped threads (the same idiom as the trainer's
//!   parallel objective), one scratch per worker, preserving input
//!   order.
//!
//! Results are identical to calling [`WhoisParser::parse`] in a loop —
//! the engine only changes where buffers live and which thread decodes
//! which record.

use crate::parser::WhoisParser;
use parking_lot::Mutex;
use std::time::{Duration, Instant};
use whois_crf::InferenceScratch;
use whois_model::{ParsedRecord, RawRecord};
use whois_tokenize::AnnotateScratch;

/// Reusable buffers for one parsing worker: annotation interner,
/// inference lattices, and spare sequence rows.
#[derive(Default, Debug)]
pub struct ParseScratch {
    /// Feature composition buffers and dedup interner.
    pub(crate) annotate: AnnotateScratch,
    /// Score table, α/β/marginal/Viterbi lattices.
    pub(crate) infer: InferenceScratch,
    /// Spent sequence rows, recycled into the next encode.
    pub(crate) rows: Vec<Vec<u32>>,
}

impl ParseScratch {
    /// New empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Throughput report for one [`ParseEngine::parse_batch_with_stats`]
/// call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Records parsed.
    pub records: usize,
    /// Non-empty lines labeled across both levels' first pass.
    pub lines_labeled: usize,
    /// Records in which a non-empty registrant contact was extracted.
    pub registrant_blocks: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchStats {
    /// Records parsed per second of wall-clock time.
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.records as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    fn absorb(&mut self, parsed: &ParsedRecord) {
        self.records += 1;
        self.lines_labeled += parsed.blocks.values().map(Vec::len).sum::<usize>();
        if parsed.has_registrant() {
            self.registrant_blocks += 1;
        }
    }

    /// Accumulate another report — e.g. successive chunks of a crawl
    /// pipeline. Counts add; `elapsed` sums; `workers` keeps the max.
    pub fn merge(&mut self, other: &BatchStats) {
        self.records += other.records;
        self.lines_labeled += other.lines_labeled;
        self.registrant_blocks += other.registrant_blocks;
        self.workers = self.workers.max(other.workers);
        self.elapsed += other.elapsed;
    }
}

/// A trained [`WhoisParser`] wired for high-throughput batch parsing.
#[derive(Debug)]
pub struct ParseEngine {
    parser: WhoisParser,
    workers: usize,
    pool: Mutex<Vec<ParseScratch>>,
}

impl ParseEngine {
    /// Wrap a trained parser, using all available parallelism for
    /// batches.
    pub fn new(parser: WhoisParser) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_workers(parser, workers)
    }

    /// Wrap a trained parser with an explicit batch worker count
    /// (`0` means use available parallelism).
    pub fn with_workers(parser: WhoisParser, workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            workers
        };
        ParseEngine {
            parser,
            workers,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped parser.
    pub fn parser(&self) -> &WhoisParser {
        &self.parser
    }

    /// The batch worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Unwrap the engine, recovering the parser.
    pub fn into_parser(self) -> WhoisParser {
        self.parser
    }

    /// Pre-populate the scratch pool with `n` scratches so the first
    /// requests of a long-running service don't pay the cold-start
    /// allocations. Buffers still grow to their high-water marks on
    /// first use; warming just guarantees `n` concurrent callers find a
    /// scratch to check out.
    pub fn warm(&self, n: usize) {
        let mut pool = self.pool.lock();
        while pool.len() < n {
            pool.push(ParseScratch::new());
        }
    }

    /// Scratches currently checked in (pool size).
    pub fn pooled_scratches(&self) -> usize {
        self.pool.lock().len()
    }

    fn checkout(&self) -> ParseScratch {
        self.pool.lock().pop().unwrap_or_default()
    }

    fn checkin(&self, scratch: ParseScratch) {
        self.pool.lock().push(scratch);
    }

    /// Parse one record with pooled buffers.
    pub fn parse_one(&self, record: &RawRecord) -> ParsedRecord {
        let mut scratch = self.checkout();
        let parsed = self.parser.parse_with(record, &mut scratch);
        self.checkin(scratch);
        parsed
    }

    /// Parse a batch in parallel, preserving input order.
    pub fn parse_batch(&self, records: &[RawRecord]) -> Vec<ParsedRecord> {
        self.parse_batch_with_stats(records).0
    }

    /// Parse a batch in parallel and report throughput statistics.
    pub fn parse_batch_with_stats(&self, records: &[RawRecord]) -> (Vec<ParsedRecord>, BatchStats) {
        let start = Instant::now();
        let workers = self.workers.min(records.len()).max(1);
        let mut stats = BatchStats {
            workers,
            ..BatchStats::default()
        };
        let mut out = Vec::with_capacity(records.len());
        if workers <= 1 {
            let mut scratch = self.checkout();
            for record in records {
                let parsed = self.parser.parse_with(record, &mut scratch);
                stats.absorb(&parsed);
                out.push(parsed);
            }
            self.checkin(scratch);
        } else {
            let chunk_size = records.len().div_ceil(workers);
            let results: Vec<(Vec<ParsedRecord>, BatchStats)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = records
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            let mut scratch = self.checkout();
                            let mut local = BatchStats::default();
                            let parsed: Vec<ParsedRecord> = chunk
                                .iter()
                                .map(|record| {
                                    let p = self.parser.parse_with(record, &mut scratch);
                                    local.absorb(&p);
                                    p
                                })
                                .collect();
                            self.checkin(scratch);
                            (parsed, local)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("parse worker panicked");
            for (parsed, local) in results {
                stats.merge(&local);
                out.extend(parsed);
            }
        }
        stats.elapsed = start.elapsed();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::TrainExample;
    use crate::level::ParserConfig;
    use whois_gen::corpus::{generate_corpus, GenConfig, GeneratedDomain};
    use whois_model::{BlockLabel, RegistrantLabel};

    fn trained_engine(workers: usize) -> (ParseEngine, Vec<GeneratedDomain>) {
        let corpus = generate_corpus(GenConfig::new(77, 140));
        let (train_set, test_set) = corpus.split_at(100);
        let first: Vec<TrainExample<BlockLabel>> = train_set
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let second: Vec<TrainExample<RegistrantLabel>> = train_set
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                if reg.is_empty() {
                    return None;
                }
                Some(TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
        (
            ParseEngine::with_workers(parser, workers),
            test_set.to_vec(),
        )
    }

    #[test]
    fn parse_one_matches_plain_parse() {
        let (engine, test) = trained_engine(2);
        for d in test.iter().take(10) {
            let raw = d.raw();
            assert_eq!(engine.parse_one(&raw), engine.parser().parse(&raw));
            // Twice through the pool: reused buffers must not leak state.
            assert_eq!(engine.parse_one(&raw), engine.parser().parse(&raw));
        }
    }

    #[test]
    fn parse_batch_preserves_order_and_matches_sequential() {
        let (engine, test) = trained_engine(4);
        let records: Vec<_> = test.iter().map(|d| d.raw()).collect();
        let sequential: Vec<_> = records.iter().map(|r| engine.parser().parse(r)).collect();
        for workers in [1, 2, 4] {
            let engine = ParseEngine::with_workers(engine.parser().clone(), workers);
            let (batch, stats) = engine.parse_batch_with_stats(&records);
            assert_eq!(batch, sequential, "workers = {workers}");
            assert_eq!(stats.records, records.len());
            assert_eq!(stats.workers, workers.min(records.len()));
        }
    }

    #[test]
    fn batch_stats_count_lines_and_registrants() {
        let (engine, test) = trained_engine(3);
        let records: Vec<_> = test.iter().map(|d| d.raw()).collect();
        let (batch, stats) = engine.parse_batch_with_stats(&records);
        let want_lines: usize = records.iter().map(|r| r.lines().len()).sum();
        let want_reg = batch.iter().filter(|p| p.has_registrant()).count();
        assert_eq!(stats.lines_labeled, want_lines);
        assert_eq!(stats.registrant_blocks, want_reg);
        assert!(stats.records_per_sec() > 0.0);
        assert!(stats.elapsed > Duration::ZERO);
    }

    #[test]
    fn warm_populates_pool_and_parsing_reuses_it() {
        let (engine, test) = trained_engine(2);
        engine.warm(3);
        assert_eq!(engine.pooled_scratches(), 3);
        let raw = test[0].raw();
        let _ = engine.parse_one(&raw);
        // Checked out and back in: pool size unchanged.
        assert_eq!(engine.pooled_scratches(), 3);
        // Warming never shrinks the pool.
        engine.warm(1);
        assert_eq!(engine.pooled_scratches(), 3);
    }

    #[test]
    fn empty_batch_is_benign() {
        let (engine, _) = trained_engine(2);
        let (batch, stats) = engine.parse_batch_with_stats(&[]);
        assert!(batch.is_empty());
        assert_eq!(stats.records, 0);
    }
}
