//! Mechanical value extraction from labeled lines.
//!
//! Once the CRF has identified *what* each line is, pulling the value out
//! is mechanical: split at the first separator and take the right side (or
//! the whole line in label-free block formats). The keyword heuristics
//! here only ever run *within* an already-labeled block — the CRF does
//! the hard part.

use whois_model::{BlockLabel, Contact, ParsedRecord, RegistrantLabel};
use whois_tokenize::split_title_value;

/// Split a `[Title] value` line (the bracketed JP-registry convention,
/// which has no separator character).
fn split_bracketed(line: &str) -> Option<(&str, &str)> {
    let t = line.trim_start();
    let rest = t.strip_prefix('[')?;
    let close = rest.find(']')?;
    Some((&rest[..close], &rest[close + 1..]))
}

/// The value side of a line: text after the first separator (or after a
/// leading `[Title]`), or the whole trimmed line when there is none.
pub fn value_of(line: &str) -> &str {
    if let Some((_, v)) = split_bracketed(line) {
        return v.trim();
    }
    match split_title_value(line) {
        Some((_, v, _)) => v.trim(),
        None => line.trim(),
    }
}

/// The title side of a line, lower-cased, or `""` when there is no
/// separator.
pub fn title_of(line: &str) -> String {
    if let Some((t, _)) = split_bracketed(line) {
        return t.trim().to_lowercase();
    }
    match split_title_value(line) {
        Some((t, _, _)) => t.trim().to_lowercase(),
        None => String::new(),
    }
}

fn title_has(line: &str, words: &[&str]) -> bool {
    let t = title_of(line);
    words.iter().any(|w| t.contains(w))
}

/// Word-exact title membership (avoids `"id"` matching inside
/// `"provider"`).
fn title_has_word(line: &str, words: &[&str]) -> bool {
    let t = title_of(line);
    t.split(|c: char| !c.is_alphanumeric())
        .any(|tok| words.contains(&tok))
}

/// Assemble a [`ParsedRecord`] from first-level labels and second-level
/// registrant labels.
///
/// `lines` and `blocks` must align; `registrant` pairs each
/// registrant-block line (in order) with its sub-field label.
pub fn assemble(
    domain: &str,
    lines: &[&str],
    blocks: &[BlockLabel],
    registrant: &[(String, RegistrantLabel)],
) -> ParsedRecord {
    assert_eq!(lines.len(), blocks.len(), "labels must align with lines");
    let mut out = ParsedRecord::new(domain);

    for (&line, &label) in lines.iter().zip(blocks) {
        out.push_block_line(label, line);
        match label {
            BlockLabel::Registrar => {
                let v = value_of(line);
                if v.is_empty() {
                    continue;
                }
                if title_has(line, &["whois", "server"]) && !title_has(line, &["url"]) {
                    if out.whois_server.is_none() && v.contains('.') && !v.contains(' ') {
                        out.whois_server = Some(v.to_string());
                    }
                } else if title_has(line, &["registrar", "sponsor", "provider", "sponsoring"])
                    && !title_has_word(line, &["id", "url", "abuse", "iana"])
                    && out.registrar.is_none()
                {
                    out.registrar = Some(v.to_string());
                }
            }
            BlockLabel::Domain => {
                let v = value_of(line);
                if v.is_empty() {
                    continue;
                }
                if title_has(line, &["server", "nserver", "host", "dns", "nameserver"]) {
                    if v.contains('.') && !v.contains(' ') {
                        out.name_servers.push(v.to_lowercase());
                    }
                } else if title_has(line, &["status"]) {
                    out.statuses.push(v.to_string());
                } else if v.contains('.') && !v.contains(' ') && title_of(line).is_empty() {
                    // Bare name-server lines under a "Domain servers" header.
                    let lc = v.to_lowercase();
                    if lc.starts_with("ns") || lc.split('.').count() >= 3 {
                        out.name_servers.push(lc);
                    }
                }
            }
            BlockLabel::Date => {
                let v = value_of(line);
                if v.is_empty() || whois_model::parse_year(v).is_none() {
                    continue;
                }
                // Expiry first: "Registrar Registration Expiration Date"
                // contains "registration" but is an expiry date.
                if title_has(line, &["expir", "renew", "valid"]) {
                    if out.expires.is_none() {
                        out.expires = Some(v.to_string());
                    }
                } else if title_has(line, &["creat", "registered", "registration", "activat"]) {
                    if out.created.is_none() {
                        out.created = Some(v.to_string());
                    }
                } else if title_has(line, &["updat", "modif", "changed", "touched"])
                    && out.updated.is_none()
                {
                    out.updated = Some(v.to_string());
                }
            }
            BlockLabel::Registrant | BlockLabel::Other | BlockLabel::Null => {}
        }
    }

    if !registrant.is_empty() {
        let mut c = Contact::default();
        for (line, label) in registrant {
            if *label == RegistrantLabel::Other {
                continue;
            }
            c.set_field(*label, value_of(line));
        }
        if !c.is_empty() {
            out.registrant = Some(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_extraction_handles_separators() {
        assert_eq!(value_of("Registrar: GoDaddy.com, LLC"), "GoDaddy.com, LLC");
        assert_eq!(value_of("Expires on..........2016-05-01"), "2016-05-01");
        assert_eq!(value_of("   Just A Value   "), "Just A Value");
        assert_eq!(value_of("domain\texample.com"), "example.com");
    }

    #[test]
    fn title_extraction() {
        assert_eq!(title_of("Registrant Name: X"), "registrant name");
        assert_eq!(title_of("no separator here"), "");
    }

    fn labels(kinds: &[BlockLabel]) -> Vec<BlockLabel> {
        kinds.to_vec()
    }

    #[test]
    fn assemble_extracts_domain_level_fields() {
        use BlockLabel::*;
        let lines = vec![
            "Registrar: eNom, Inc.",
            "Registrar WHOIS Server: whois.enom.com",
            "Creation Date: 2011-08-09T00:00:00Z",
            "Registry Expiry Date: 2016-08-09",
            "Updated Date: 2014-01-01",
            "Name Server: ns1.example.com",
            "Domain Status: clientTransferProhibited",
            "legal text",
        ];
        let blocks = labels(&[Registrar, Registrar, Date, Date, Date, Domain, Domain, Null]);
        let p = assemble("example.com", &lines, &blocks, &[]);
        assert_eq!(p.registrar.as_deref(), Some("eNom, Inc."));
        assert_eq!(p.whois_server.as_deref(), Some("whois.enom.com"));
        assert_eq!(p.created.as_deref(), Some("2011-08-09T00:00:00Z"));
        assert_eq!(p.expires.as_deref(), Some("2016-08-09"));
        assert_eq!(p.updated.as_deref(), Some("2014-01-01"));
        assert_eq!(p.name_servers, vec!["ns1.example.com"]);
        assert_eq!(p.statuses, vec!["clientTransferProhibited"]);
        assert_eq!(p.creation_year(), Some(2011));
        assert!(!p.has_registrant());
        assert_eq!(p.block_lines(Null), &["legal text".to_string()]);
    }

    #[test]
    fn assemble_builds_registrant_contact() {
        let reg = vec![
            (
                "Registrant Name: John Smith".to_string(),
                RegistrantLabel::Name,
            ),
            (
                "Registrant City: San Diego".to_string(),
                RegistrantLabel::City,
            ),
            (
                "Registrant Email: j@x.org".to_string(),
                RegistrantLabel::Email,
            ),
            ("Registrant:".to_string(), RegistrantLabel::Other),
        ];
        let p = assemble("x.com", &[], &[], &reg);
        let c = p.registrant.unwrap();
        assert_eq!(c.name.as_deref(), Some("John Smith"));
        assert_eq!(c.city.as_deref(), Some("San Diego"));
        assert_eq!(c.email.as_deref(), Some("j@x.org"));
    }

    #[test]
    fn bare_nameserver_lines_collected() {
        use BlockLabel::*;
        let lines = vec![
            "   Domain servers in listed order:",
            "      ns1.foo.com",
            "      ns2.foo.com",
        ];
        let blocks = labels(&[Domain, Domain, Domain]);
        let p = assemble("foo.com", &lines, &blocks, &[]);
        assert_eq!(p.name_servers, vec!["ns1.foo.com", "ns2.foo.com"]);
    }

    #[test]
    fn date_lines_without_years_ignored() {
        use BlockLabel::*;
        let lines = vec!["Created: pending"];
        let p = assemble("x.com", &lines, &labels(&[Date]), &[]);
        assert_eq!(p.created, None);
    }

    #[test]
    fn empty_registrant_block_yields_no_contact() {
        let reg = vec![("Registrant:".to_string(), RegistrantLabel::Other)];
        let p = assemble("x.com", &[], &[], &reg);
        assert!(p.registrant.is_none());
    }
}
