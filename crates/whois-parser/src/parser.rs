//! The two-level [`WhoisParser`] facade.

use crate::encoder::TrainExample;
use crate::extract;
use crate::level::{LevelParser, ParserConfig};
use serde::{Deserialize, Serialize};
use whois_model::{BlockLabel, ErrorStats, ParsedRecord, RawRecord, RegistrantLabel, WhoisError};

/// The complete statistical WHOIS parser: first-level block segmentation
/// plus second-level registrant sub-field parsing (§3.2 of the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WhoisParser {
    first: LevelParser<BlockLabel>,
    second: LevelParser<RegistrantLabel>,
}

impl WhoisParser {
    /// Train both levels.
    ///
    /// * `first_examples` — full record texts with block labels.
    /// * `second_examples` — registrant-block line runs with sub-field
    ///   labels (text = the block's lines joined by `\n`).
    pub fn train(
        first_examples: &[TrainExample<BlockLabel>],
        second_examples: &[TrainExample<RegistrantLabel>],
        cfg: &ParserConfig,
    ) -> Self {
        WhoisParser {
            first: LevelParser::train(first_examples, cfg),
            second: LevelParser::train(second_examples, cfg),
        }
    }

    /// Label every non-empty line of a record with its block.
    pub fn label_blocks(&self, text: &str) -> Vec<BlockLabel> {
        self.first.predict(text)
    }

    /// Parse a raw record into structured form.
    pub fn parse(&self, record: &RawRecord) -> ParsedRecord {
        let lines = record.lines();
        let blocks = self.first.predict(&record.text);
        debug_assert_eq!(lines.len(), blocks.len());

        // Second level over the registrant block.
        let reg_lines: Vec<&str> = lines
            .iter()
            .zip(&blocks)
            .filter(|(_, &b)| b == BlockLabel::Registrant)
            .map(|(&l, _)| l)
            .collect();
        let registrant: Vec<(String, RegistrantLabel)> = if reg_lines.is_empty() {
            Vec::new()
        } else {
            let block_text = reg_lines.join("\n");
            let sub = self.second.predict(&block_text);
            reg_lines.iter().map(|l| l.to_string()).zip(sub).collect()
        };

        extract::assemble(&record.domain, &lines, &blocks, &registrant)
    }

    /// First-level accuracy on held-out examples (Figures 2–3 metrics).
    pub fn evaluate_first_level(&self, examples: &[TrainExample<BlockLabel>]) -> ErrorStats {
        self.first.evaluate(examples)
    }

    /// Second-level accuracy on held-out registrant blocks.
    pub fn evaluate_second_level(&self, examples: &[TrainExample<RegistrantLabel>]) -> ErrorStats {
        self.second.evaluate(examples)
    }

    /// Retrain the first level on extended data (§5.3 adaptation).
    pub fn retrain_first_level(
        &mut self,
        examples: &[TrainExample<BlockLabel>],
        cfg: &ParserConfig,
    ) {
        self.first.retrain(examples, cfg);
    }

    /// Retrain the second level on extended data.
    pub fn retrain_second_level(
        &mut self,
        examples: &[TrainExample<RegistrantLabel>],
        cfg: &ParserConfig,
    ) {
        self.second.retrain(examples, cfg);
    }

    /// The first-level parser (for inspection).
    pub fn first_level(&self) -> &LevelParser<BlockLabel> {
        &self.first
    }

    /// The second-level parser (for inspection).
    pub fn second_level(&self) -> &LevelParser<RegistrantLabel> {
        &self.second
    }

    /// Serialize the trained model to JSON.
    pub fn to_json(&self) -> Result<String, WhoisError> {
        serde_json::to_string(self).map_err(|e| WhoisError::Serialization(e.to_string()))
    }

    /// Load a trained model from JSON.
    pub fn from_json(json: &str) -> Result<Self, WhoisError> {
        serde_json::from_str(json).map_err(|e| WhoisError::Serialization(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_gen::corpus::{generate_corpus, GenConfig};

    /// Train on a modest generated corpus and return parser + held-out set.
    fn trained() -> (WhoisParser, Vec<whois_gen::corpus::GeneratedDomain>) {
        let corpus = generate_corpus(GenConfig::new(101, 260));
        let (train_set, test_set) = corpus.split_at(200);
        let first: Vec<TrainExample<BlockLabel>> = train_set
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let second: Vec<TrainExample<RegistrantLabel>> = train_set
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                if reg.is_empty() {
                    return None;
                }
                Some(TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
        (parser, test_set.to_vec())
    }

    #[test]
    fn end_to_end_accuracy_on_held_out_generated_records() {
        let (parser, test) = trained();
        let examples: Vec<TrainExample<BlockLabel>> = test
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let stats = parser.evaluate_first_level(&examples);
        assert!(
            stats.line_error_rate() < 0.03,
            "first-level line error {} too high",
            stats.line_error_rate()
        );
    }

    #[test]
    fn parse_produces_structured_output() {
        let (parser, test) = trained();
        let mut extracted_registrars = 0;
        let mut extracted_created = 0;
        let mut extracted_registrant = 0;
        for d in &test {
            let parsed = parser.parse(&d.raw());
            if let Some(r) = &parsed.registrar {
                if r == &d.facts.registrar_name {
                    extracted_registrars += 1;
                }
            }
            if parsed.creation_year() == Some(d.facts.created.y) {
                extracted_created += 1;
            }
            if parsed.has_registrant() {
                extracted_registrant += 1;
            }
        }
        let n = test.len();
        assert!(
            extracted_registrars as f64 / n as f64 > 0.8,
            "registrar extraction {extracted_registrars}/{n}"
        );
        assert!(
            extracted_created as f64 / n as f64 > 0.8,
            "creation year {extracted_created}/{n}"
        );
        assert!(
            extracted_registrant as f64 / n as f64 > 0.9,
            "registrant presence {extracted_registrant}/{n}"
        );
    }

    #[test]
    fn model_save_load_roundtrip() {
        let (parser, test) = trained();
        let json = parser.to_json().unwrap();
        let back = WhoisParser::from_json(&json).unwrap();
        let raw = test[0].raw();
        assert_eq!(back.label_blocks(&raw.text), parser.label_blocks(&raw.text));
        assert_eq!(back.parse(&raw), parser.parse(&raw));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(WhoisParser::from_json("not json").is_err());
    }
}
