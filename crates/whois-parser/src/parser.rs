//! The two-level [`WhoisParser`] facade.

use crate::encoder::TrainExample;
use crate::engine::{DecodeCounters, ParseScratch};
use crate::extract;
use crate::fast::FastParser;
use crate::level::{LevelParser, ParserConfig};
use crate::line_cache::{LineCache, LEVEL1_SALT, LEVEL2_SALT};
use serde::{Deserialize, Serialize};
use whois_model::{BlockLabel, ErrorStats, ParsedRecord, RawRecord, RegistrantLabel, WhoisError};

/// The complete statistical WHOIS parser: first-level block segmentation
/// plus second-level registrant sub-field parsing (§3.2 of the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WhoisParser {
    first: LevelParser<BlockLabel>,
    second: LevelParser<RegistrantLabel>,
}

impl WhoisParser {
    /// Train both levels.
    ///
    /// * `first_examples` — full record texts with block labels.
    /// * `second_examples` — registrant-block line runs with sub-field
    ///   labels (text = the block's lines joined by `\n`).
    pub fn train(
        first_examples: &[TrainExample<BlockLabel>],
        second_examples: &[TrainExample<RegistrantLabel>],
        cfg: &ParserConfig,
    ) -> Self {
        WhoisParser {
            first: LevelParser::train(first_examples, cfg),
            second: LevelParser::train(second_examples, cfg),
        }
    }

    /// Label every non-empty line of a record with its block.
    pub fn label_blocks(&self, text: &str) -> Vec<BlockLabel> {
        self.first.predict(text)
    }

    /// Parse a raw record into structured form.
    pub fn parse(&self, record: &RawRecord) -> ParsedRecord {
        self.parse_with(record, &mut ParseScratch::new())
    }

    /// [`parse`](Self::parse) reusing a caller-owned [`ParseScratch`] —
    /// the steady-state path used by
    /// [`ParseEngine`](crate::engine::ParseEngine) workers.
    pub fn parse_with(&self, record: &RawRecord, scratch: &mut ParseScratch) -> ParsedRecord {
        self.parse_impl(record, scratch, None)
    }

    /// [`parse_with`](Self::parse_with) through a [`LineCache`] at
    /// `generation` — the memoized path used by
    /// [`ParseEngine`](crate::engine::ParseEngine) when its cache is
    /// enabled. Output is bit-identical to `parse_with` (see
    /// [`LevelParser::predict_cached`]).
    pub fn parse_cached(
        &self,
        record: &RawRecord,
        scratch: &mut ParseScratch,
        cache: &LineCache,
        generation: u64,
    ) -> ParsedRecord {
        self.parse_impl(record, scratch, Some((cache, generation)))
    }

    /// [`parse_with`](Self::parse_with) on the **fast decode tier**:
    /// both levels decode on `fast`'s pruned `f32` models
    /// ([`crate::fast`]); a level whose decode margin falls under
    /// `guard` transparently re-decodes on the exact engine, so the
    /// output is byte-identical to [`parse_with`](Self::parse_with).
    /// Each level decode is tallied into `counters`.
    pub fn parse_fast(
        &self,
        record: &RawRecord,
        scratch: &mut ParseScratch,
        fast: &FastParser,
        guard: f32,
        counters: &DecodeCounters,
    ) -> ParsedRecord {
        let lines = record.lines();
        let mut blocks =
            match fast
                .first
                .predict::<BlockLabel>(&record.text, &mut scratch.fast, guard)
            {
                Some(b) => {
                    counters.record(false);
                    b
                }
                None => {
                    counters.record(true);
                    self.first.predict_with(&record.text, scratch)
                }
            };
        align_blocks(lines.len(), &mut blocks);
        let registrant =
            self.second_level_pass(&lines, &blocks, scratch, Some((fast, guard, counters)));
        extract::assemble(&record.domain, &lines, &blocks, &registrant)
    }

    /// [`parse_fast`](Self::parse_fast) that also exports a per-record
    /// **confidence** in `[0, 1]` for the serving drift monitor. On a
    /// successful fast first-level decode the confidence is the decode
    /// margin mapped through `margin / (margin + 1)`; when the margin
    /// guard forces the exact engine, it is the mean of the first
    /// level's per-line posterior marginals (eq. 12). Both scales sit
    /// near 1 on schemas the model knows and sag on drifted ones, which
    /// is all a sustained-low-confidence detector needs.
    pub fn parse_fast_confident(
        &self,
        record: &RawRecord,
        scratch: &mut ParseScratch,
        fast: &FastParser,
        guard: f32,
        counters: &DecodeCounters,
    ) -> (ParsedRecord, f64) {
        let lines = record.lines();
        let (mut blocks, confidence) =
            match fast
                .first
                .predict_scored::<BlockLabel>(&record.text, &mut scratch.fast, guard)
            {
                Some((b, margin)) => {
                    counters.record(false);
                    (b, (margin as f64 / (margin as f64 + 1.0)).clamp(0.0, 1.0))
                }
                None => {
                    counters.record(true);
                    let scored = self
                        .first
                        .predict_with_confidence_with(&record.text, scratch);
                    let confidence = mean_confidence(&scored);
                    (scored.into_iter().map(|(l, _)| l).collect(), confidence)
                }
            };
        align_blocks(lines.len(), &mut blocks);
        let registrant =
            self.second_level_pass(&lines, &blocks, scratch, Some((fast, guard, counters)));
        (
            extract::assemble(&record.domain, &lines, &blocks, &registrant),
            confidence,
        )
    }

    /// Exact-tier parse that exports the same per-record confidence as
    /// [`parse_fast_confident`](Self::parse_fast_confident): the mean
    /// first-level posterior marginal along the decoded path.
    pub fn parse_with_confidence(
        &self,
        record: &RawRecord,
        scratch: &mut ParseScratch,
    ) -> (ParsedRecord, f64) {
        let lines = record.lines();
        let scored = self
            .first
            .predict_with_confidence_with(&record.text, scratch);
        let confidence = mean_confidence(&scored);
        let mut blocks: Vec<BlockLabel> = scored.into_iter().map(|(l, _)| l).collect();
        align_blocks(lines.len(), &mut blocks);
        let registrant = self.second_level_pass(&lines, &blocks, scratch, None);
        (
            extract::assemble(&record.domain, &lines, &blocks, &registrant),
            confidence,
        )
    }

    /// The shared second-level stage: collect the registrant block's
    /// lines and label them, on the fast tier when one is supplied
    /// (falling back under the margin guard) or the exact engine
    /// otherwise.
    fn second_level_pass(
        &self,
        lines: &[&str],
        blocks: &[BlockLabel],
        scratch: &mut ParseScratch,
        fast: Option<(&FastParser, f32, &DecodeCounters)>,
    ) -> Vec<(String, RegistrantLabel)> {
        let mut reg_idx = std::mem::take(&mut scratch.reg_idx);
        reg_idx.clear();
        reg_idx.extend(
            blocks
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == BlockLabel::Registrant)
                .map(|(i, _)| i),
        );
        let registrant: Vec<(String, RegistrantLabel)> = if reg_idx.is_empty() {
            Vec::new()
        } else {
            let mut block_text = std::mem::take(&mut scratch.block_text);
            block_text.clear();
            for (k, &i) in reg_idx.iter().enumerate() {
                if k > 0 {
                    block_text.push('\n');
                }
                block_text.push_str(lines[i]);
            }
            let sub = match fast {
                Some((f, guard, counters)) => {
                    match f
                        .second
                        .predict::<RegistrantLabel>(&block_text, &mut scratch.fast, guard)
                    {
                        Some(s) => {
                            counters.record(false);
                            s
                        }
                        None => {
                            counters.record(true);
                            self.second.predict_with(&block_text, scratch)
                        }
                    }
                }
                None => self.second.predict_with(&block_text, scratch),
            };
            scratch.block_text = block_text;
            reg_idx
                .iter()
                .map(|&i| lines[i].to_string())
                .zip(sub)
                .collect()
        };
        scratch.reg_idx = reg_idx;
        registrant
    }

    fn parse_impl(
        &self,
        record: &RawRecord,
        scratch: &mut ParseScratch,
        cache: Option<(&LineCache, u64)>,
    ) -> ParsedRecord {
        let lines = record.lines();
        let mut blocks = match cache {
            Some((c, generation)) => {
                self.first
                    .predict_cached(&record.text, scratch, c, LEVEL1_SALT, generation)
            }
            None => self.first.predict_with(&record.text, scratch),
        };
        align_blocks(lines.len(), &mut blocks);

        // Second level over the registrant block. The line indices and
        // the joined block text live in scratch-owned buffers — no
        // per-record `Vec`/`String` allocation.
        let mut reg_idx = std::mem::take(&mut scratch.reg_idx);
        reg_idx.clear();
        reg_idx.extend(
            blocks
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == BlockLabel::Registrant)
                .map(|(i, _)| i),
        );
        let registrant: Vec<(String, RegistrantLabel)> = if reg_idx.is_empty() {
            Vec::new()
        } else {
            let mut block_text = std::mem::take(&mut scratch.block_text);
            block_text.clear();
            for (k, &i) in reg_idx.iter().enumerate() {
                if k > 0 {
                    block_text.push('\n');
                }
                block_text.push_str(lines[i]);
            }
            let sub = match cache {
                Some((c, generation)) => {
                    self.second
                        .predict_cached(&block_text, scratch, c, LEVEL2_SALT, generation)
                }
                None => self.second.predict_with(&block_text, scratch),
            };
            scratch.block_text = block_text;
            reg_idx
                .iter()
                .map(|&i| lines[i].to_string())
                .zip(sub)
                .collect()
        };
        scratch.reg_idx = reg_idx;

        extract::assemble(&record.domain, &lines, &blocks, &registrant)
    }

    /// First-level accuracy on held-out examples (Figures 2–3 metrics).
    pub fn evaluate_first_level(&self, examples: &[TrainExample<BlockLabel>]) -> ErrorStats {
        self.first.evaluate(examples)
    }

    /// Second-level accuracy on held-out registrant blocks.
    pub fn evaluate_second_level(&self, examples: &[TrainExample<RegistrantLabel>]) -> ErrorStats {
        self.second.evaluate(examples)
    }

    /// Retrain the first level on extended data (§5.3 adaptation).
    pub fn retrain_first_level(
        &mut self,
        examples: &[TrainExample<BlockLabel>],
        cfg: &ParserConfig,
    ) {
        self.first.retrain(examples, cfg);
    }

    /// Retrain the second level on extended data.
    pub fn retrain_second_level(
        &mut self,
        examples: &[TrainExample<RegistrantLabel>],
        cfg: &ParserConfig,
    ) {
        self.second.retrain(examples, cfg);
    }

    /// The first-level parser (for inspection).
    pub fn first_level(&self) -> &LevelParser<BlockLabel> {
        &self.first
    }

    /// The second-level parser (for inspection).
    pub fn second_level(&self) -> &LevelParser<RegistrantLabel> {
        &self.second
    }

    /// Mutable first-level parser (weight surgery in tests and
    /// experiments).
    pub fn first_level_mut(&mut self) -> &mut LevelParser<BlockLabel> {
        &mut self.first
    }

    /// Mutable second-level parser.
    pub fn second_level_mut(&mut self) -> &mut LevelParser<RegistrantLabel> {
        &mut self.second
    }

    /// Serialize the trained model to JSON.
    pub fn to_json(&self) -> Result<String, WhoisError> {
        serde_json::to_string(self).map_err(|e| WhoisError::Serialization(e.to_string()))
    }

    /// Load a trained model from JSON.
    pub fn from_json(json: &str) -> Result<Self, WhoisError> {
        serde_json::from_str(json).map_err(|e| WhoisError::Serialization(e.to_string()))
    }
}

/// Force the block-label vector to cover exactly `num_lines` lines.
///
/// The first level labels the lines the annotator considers labelable
/// while `RawRecord::lines` keeps the lines `non_empty_lines` keeps; the
/// two filters agree, but the invariant spans two crates and used to be
/// guarded only by a `debug_assert!` that vanished in release builds —
/// any future drift would have silently misaligned every label after the
/// first disagreement. Missing labels are filled with
/// [`BlockLabel::Other`] (the catch-all block), surplus labels dropped,
/// so a drifted build degrades per-line instead of corrupting the whole
/// record.
/// Mean posterior marginal along a scored path; 1.0 for an empty record
/// (nothing to be unsure about).
fn mean_confidence<L>(scored: &[(L, f64)]) -> f64 {
    if scored.is_empty() {
        return 1.0;
    }
    scored.iter().map(|(_, c)| *c).sum::<f64>() / scored.len() as f64
}

fn align_blocks(num_lines: usize, blocks: &mut Vec<BlockLabel>) {
    debug_assert_eq!(
        num_lines,
        blocks.len(),
        "annotator and non_empty_lines disagree on labelable lines"
    );
    blocks.resize(num_lines, BlockLabel::Other);
}

#[cfg(test)]
mod tests {
    use super::*;
    use whois_gen::corpus::{generate_corpus, GenConfig};

    #[test]
    fn align_blocks_pads_and_truncates() {
        let mut short = vec![BlockLabel::Domain];
        // Suppress the debug assertion path: exercise the release-mode
        // behavior directly on intentionally mismatched inputs.
        if !cfg!(debug_assertions) {
            align_blocks(3, &mut short);
            assert_eq!(
                short,
                vec![BlockLabel::Domain, BlockLabel::Other, BlockLabel::Other]
            );
            let mut long = vec![BlockLabel::Domain, BlockLabel::Registrar];
            align_blocks(1, &mut long);
            assert_eq!(long, vec![BlockLabel::Domain]);
        }
        let mut exact = vec![BlockLabel::Domain, BlockLabel::Null];
        align_blocks(2, &mut exact);
        assert_eq!(exact.len(), 2);
    }

    #[test]
    fn parse_labels_every_line_on_awkward_records() {
        // Records mixing blank, symbol-only, and indented lines: the
        // regression surface for the line/label alignment contract.
        let (parser, _) = trained();
        for text in [
            "%% notice\nDomain Name: A.COM\n\n   indented: yes\n%%%\ntail line",
            "\n\n\nDomain Name: B.COM\n\t\nRegistrant Name: J\n",
            "only one line",
        ] {
            let record = RawRecord {
                domain: "x.com".into(),
                text: text.to_string(),
            };
            let parsed = parser.parse(&record);
            let labeled: usize = parsed.blocks.values().map(Vec::len).sum();
            assert_eq!(labeled, record.lines().len(), "{text:?}");
        }
    }

    /// Train on a modest generated corpus and return parser + held-out set.
    fn trained() -> (WhoisParser, Vec<whois_gen::corpus::GeneratedDomain>) {
        let corpus = generate_corpus(GenConfig::new(101, 260));
        let (train_set, test_set) = corpus.split_at(200);
        let first: Vec<TrainExample<BlockLabel>> = train_set
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let second: Vec<TrainExample<RegistrantLabel>> = train_set
            .iter()
            .filter_map(|d| {
                let reg = d.registrant_labels();
                if reg.is_empty() {
                    return None;
                }
                Some(TrainExample {
                    text: reg.texts().join("\n"),
                    labels: reg.labels(),
                })
            })
            .collect();
        let parser = WhoisParser::train(&first, &second, &ParserConfig::default());
        (parser, test_set.to_vec())
    }

    #[test]
    fn end_to_end_accuracy_on_held_out_generated_records() {
        let (parser, test) = trained();
        let examples: Vec<TrainExample<BlockLabel>> = test
            .iter()
            .map(|d| TrainExample {
                text: d.rendered.text(),
                labels: d.block_labels().labels(),
            })
            .collect();
        let stats = parser.evaluate_first_level(&examples);
        assert!(
            stats.line_error_rate() < 0.03,
            "first-level line error {} too high",
            stats.line_error_rate()
        );
    }

    #[test]
    fn parse_produces_structured_output() {
        let (parser, test) = trained();
        let mut extracted_registrars = 0;
        let mut extracted_created = 0;
        let mut extracted_registrant = 0;
        for d in &test {
            let parsed = parser.parse(&d.raw());
            if let Some(r) = &parsed.registrar {
                if r == &d.facts.registrar_name {
                    extracted_registrars += 1;
                }
            }
            if parsed.creation_year() == Some(d.facts.created.y) {
                extracted_created += 1;
            }
            if parsed.has_registrant() {
                extracted_registrant += 1;
            }
        }
        let n = test.len();
        assert!(
            extracted_registrars as f64 / n as f64 > 0.8,
            "registrar extraction {extracted_registrars}/{n}"
        );
        assert!(
            extracted_created as f64 / n as f64 > 0.8,
            "creation year {extracted_created}/{n}"
        );
        assert!(
            extracted_registrant as f64 / n as f64 > 0.9,
            "registrant presence {extracted_registrant}/{n}"
        );
    }

    #[test]
    fn model_save_load_roundtrip() {
        let (parser, test) = trained();
        let json = parser.to_json().unwrap();
        let back = WhoisParser::from_json(&json).unwrap();
        let raw = test[0].raw();
        assert_eq!(back.label_blocks(&raw.text), parser.label_blocks(&raw.text));
        assert_eq!(back.parse(&raw), parser.parse(&raw));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(WhoisParser::from_json("not json").is_err());
    }
}
